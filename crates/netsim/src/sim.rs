//! The discrete-event simulation engine.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{LinkConfig, SimDuration, SimTime};

/// Handle to a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Sentinel sender for messages injected from outside the simulation
    /// (e.g. the user device kicking a protocol off).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// Index into the simulation's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable numeric form, usable as a registry `host` id.
    pub fn as_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "n<ext>")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Hardware profile of a node: how slow its CPU is relative to a reference
/// device, and its battery level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    cpu_factor: f64,
    battery: f64,
}

impl DeviceProfile {
    /// A profile with the given CPU slowdown factor (`1.0` = reference
    /// machine, `4.0` = four times slower).
    ///
    /// # Panics
    ///
    /// Panics unless `cpu_factor` is finite and positive.
    pub fn new(cpu_factor: f64) -> Self {
        assert!(
            cpu_factor.is_finite() && cpu_factor > 0.0,
            "cpu factor must be finite and positive"
        );
        DeviceProfile {
            cpu_factor,
            battery: 1.0,
        }
    }

    /// A resource-constrained handheld (4× slower than the reference).
    pub fn constrained() -> Self {
        DeviceProfile::new(4.0)
    }

    /// Sets the battery level.
    ///
    /// # Panics
    ///
    /// Panics unless `battery` is in `[0, 1]`.
    pub fn with_battery(mut self, battery: f64) -> Self {
        assert!((0.0..=1.0).contains(&battery), "battery must be in [0, 1]");
        self.battery = battery;
        self
    }

    /// CPU slowdown factor relative to the reference device.
    pub fn cpu_factor(&self) -> f64 {
        self.cpu_factor
    }

    /// Battery level in `[0, 1]`.
    pub fn battery(&self) -> f64 {
        self.battery
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::new(1.0)
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to a live node.
    pub delivered: u64,
    /// Messages lost (link loss, partition, dead destination).
    pub dropped: u64,
    /// Sum of transit latencies of delivered messages (µs).
    pub latency_total_us: u64,
    /// Timers cancelled before firing (deadline/retry hygiene).
    pub timers_cancelled: u64,
}

impl NetworkStats {
    /// Mean transit latency of delivered messages, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_total_us as f64 / 1_000.0 / self.delivered as f64
        }
    }
}

/// The event cap was exhausted before the queue drained: the run stopped
/// with work still pending, so protocol state may be incomplete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCapExceeded {
    /// Events processed before the run gave up.
    pub processed: u64,
    /// The configured cap ([`Simulation::set_max_events`]).
    pub max_events: u64,
}

impl fmt::Display for EventCapExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation event cap exhausted after {} events (max {})",
            self.processed, self.max_events
        )
    }
}

impl std::error::Error for EventCapExceeded {}

/// Protocol logic attached to a node.
///
/// Handlers run to completion at a simulated instant; side effects (sends,
/// timers) are buffered in the [`NodeContext`] and applied afterwards.
/// Model local computation cost with [`NodeContext::compute`]: it delays
/// every *subsequent* effect of the same handler invocation by the work
/// duration scaled by the node's CPU factor.
pub trait NodeBehaviour<M> {
    /// Invoked once when the node joins the simulation.
    fn on_start(&mut self, _ctx: &mut NodeContext<'_, M>) {}

    /// Invoked for every delivered message.
    fn on_message(&mut self, ctx: &mut NodeContext<'_, M>, from: NodeId, msg: M);

    /// Invoked when a timer set via [`NodeContext::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut NodeContext<'_, M>, _timer: u64) {}
}

enum Effect<M> {
    Send {
        delay: SimDuration,
        to: NodeId,
        msg: M,
    },
    Timer {
        delay: SimDuration,
        key: u64,
    },
    CancelTimer {
        key: u64,
    },
}

/// Capabilities a behaviour can use while handling an event.
pub struct NodeContext<'a, M> {
    now: SimTime,
    node: NodeId,
    cpu_factor: f64,
    peers: &'a [NodeId],
    effects: &'a mut Vec<Effect<M>>,
    compute_debt: SimDuration,
}

impl<M> NodeContext<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// This node's CPU slowdown factor.
    pub fn cpu_factor(&self) -> f64 {
        self.cpu_factor
    }

    /// Live peers (excluding this node) at the time of the event.
    pub fn peers(&self) -> &[NodeId] {
        self.peers
    }

    /// Models `work` of local computation on the reference machine: the
    /// node spends `work × cpu_factor`, delaying all subsequent effects of
    /// this handler invocation.
    pub fn compute(&mut self, work: SimDuration) {
        self.compute_debt = self.compute_debt + work.scale(self.cpu_factor);
    }

    /// Accumulated computation delay of this handler invocation.
    pub fn compute_debt(&self) -> SimDuration {
        self.compute_debt
    }

    /// Sends a message (subject to the link model) after the current
    /// compute debt.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Sends a message after an explicit extra delay.
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) {
        self.effects.push(Effect::Send {
            delay: self.compute_debt + delay,
            to,
            msg,
        });
    }

    /// Sends a message to every live peer.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for &p in self.peers {
            self.send(p, msg.clone());
        }
    }

    /// Schedules [`NodeBehaviour::on_timer`] with `key` after `delay`
    /// (plus the current compute debt).
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) {
        self.effects.push(Effect::Timer {
            delay: self.compute_debt + delay,
            key,
        });
    }

    /// Cancels the earliest still-pending timer with `key` on this node:
    /// the queued event is discarded unprocessed (it neither advances
    /// simulated time nor counts towards the processed-event total).
    /// A cancellation with no matching pending timer is a no-op.
    pub fn cancel_timer(&mut self, key: u64) {
        self.effects.push(Effect::CancelTimer { key });
    }
}

enum EventKind<M> {
    Start(NodeId),
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        sent_at: SimTime,
    },
    Timer {
        node: NodeId,
        key: u64,
    },
    /// Environment dynamics: the default link profile changes (e.g. a
    /// transient outage clearing, the fleet moving out of interference).
    LinkChange(LinkConfig),
}

struct Entry<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Entry<M> {}

impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct NodeSlot<B> {
    behaviour: Option<B>,
    profile: DeviceProfile,
    alive: bool,
}

/// A deterministic discrete-event network simulation.
///
/// Generic over the protocol message type `M` and the (homogeneous)
/// behaviour type `B`; heterogeneous roles are typically an enum inside
/// `B`. See the crate-level example.
pub struct Simulation<M, B: NodeBehaviour<M>> {
    nodes: Vec<NodeSlot<B>>,
    default_link: LinkConfig,
    links: BTreeMap<(u32, u32), LinkConfig>,
    queue: BinaryHeap<Entry<M>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    stats: NetworkStats,
    max_events: u64,
    /// Pending timer cancellations: `(node, key)` → how many of the next
    /// matching timer pops to discard.
    cancelled: BTreeMap<(u32, u64), u64>,
    cap_exhausted: bool,
}

impl<M, B: NodeBehaviour<M>> Simulation<M, B> {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            nodes: Vec::new(),
            default_link: LinkConfig::default(),
            links: BTreeMap::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            stats: NetworkStats::default(),
            max_events: 50_000_000,
            cancelled: BTreeMap::new(),
            cap_exhausted: false,
        }
    }

    /// Caps the number of processed events (runaway-protocol guard).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Adds a node; its [`NodeBehaviour::on_start`] runs at the current
    /// simulated time.
    pub fn add_node(&mut self, profile: DeviceProfile, behaviour: B) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(NodeSlot {
            behaviour: Some(behaviour),
            profile,
            alive: true,
        });
        self.push(self.now, EventKind::Start(id));
        id
    }

    /// Marks a node dead (churn/crash): pending and future deliveries to
    /// it are dropped, its timers are discarded on fire.
    pub fn fail_node(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id.index()) {
            slot.alive = false;
        }
    }

    /// Whether a node is live.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|s| s.alive)
    }

    /// Live node ids.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.is_alive(n))
            .collect()
    }

    /// Immutable access to a node's behaviour (absent while the node is
    /// handling an event, which cannot be observed from outside `run`).
    pub fn node(&self, id: NodeId) -> &B {
        self.nodes[id.index()]
            .behaviour
            .as_ref()
            .expect("behaviour is only detached during dispatch")
    }

    /// Mutable access to a node's behaviour.
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        self.nodes[id.index()]
            .behaviour
            .as_mut()
            .expect("behaviour is only detached during dispatch")
    }

    /// A node's device profile.
    pub fn profile(&self, id: NodeId) -> DeviceProfile {
        self.nodes[id.index()].profile
    }

    /// Sets the link used for pairs without an explicit override.
    pub fn set_default_link(&mut self, link: LinkConfig) {
        self.default_link = link;
    }

    /// Schedules a default-link change `delay` from now (transient
    /// outages, interference clearing, fleet-wide mobility effects).
    /// Per-pair overrides set via [`Simulation::set_link`] are unaffected.
    pub fn set_default_link_at(&mut self, delay: SimDuration, link: LinkConfig) {
        self.push(self.now + delay, EventKind::LinkChange(link));
    }

    /// Overrides the (symmetric) link between two nodes.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, link: LinkConfig) {
        self.links.insert(link_key(a, b), link);
    }

    /// The effective link between two nodes.
    pub fn link(&self, a: NodeId, b: NodeId) -> LinkConfig {
        self.links
            .get(&link_key(a, b))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Injects a message from [`NodeId::EXTERNAL`], delivered immediately.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.stats.sent += 1;
        self.push(
            self.now,
            EventKind::Deliver {
                from,
                to,
                msg,
                sent_at: self.now,
            },
        );
    }

    /// Schedules a timer on a node from outside the simulation.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, key: u64) {
        self.push(self.now + delay, EventKind::Timer { node, key });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Runs until the event queue drains (or the event cap is hit),
    /// returning the number of processed events. Prefer
    /// [`Simulation::run_checked`] when cap exhaustion must not pass
    /// silently; this variant reports it only via
    /// [`Simulation::cap_exhausted`].
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Like [`Simulation::run`], but surfaces event-cap exhaustion as an
    /// error instead of stopping silently with the protocol incomplete.
    pub fn run_checked(&mut self) -> Result<u64, EventCapExceeded> {
        self.run_until_checked(SimTime::MAX)
    }

    /// Runs until the queue drains or simulated time would pass `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.cap_exhausted = false;
        let mut processed = 0;
        while let Some(entry) = self.queue.peek() {
            if entry.at > deadline {
                break;
            }
            if processed >= self.max_events {
                // Undrained work remains within the deadline: the run is
                // being cut short, not finishing.
                self.cap_exhausted = true;
                break;
            }
            let entry = self.queue.pop().expect("peeked");
            if let EventKind::Timer { node, key } = &entry.kind {
                // A cancelled timer is discarded unprocessed: simulated
                // time does not advance to its instant and it does not
                // count towards the processed total.
                if let Some(pending) = self.cancelled.get_mut(&(node.0, *key)) {
                    *pending -= 1;
                    if *pending == 0 {
                        self.cancelled.remove(&(node.0, *key));
                    }
                    continue;
                }
            }
            self.now = entry.at;
            processed += 1;
            self.dispatch(entry.kind);
        }
        processed
    }

    /// Like [`Simulation::run_until`], but surfaces event-cap exhaustion
    /// as an error.
    pub fn run_until_checked(&mut self, deadline: SimTime) -> Result<u64, EventCapExceeded> {
        let processed = self.run_until(deadline);
        if self.cap_exhausted {
            Err(EventCapExceeded {
                processed,
                max_events: self.max_events,
            })
        } else {
            Ok(processed)
        }
    }

    /// Whether the most recent run stopped on the event cap with work
    /// still pending.
    pub fn cap_exhausted(&self) -> bool {
        self.cap_exhausted
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { at, seq, kind });
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Start(node) => {
                self.with_behaviour(node, |b, ctx| b.on_start(ctx));
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                sent_at,
            } => {
                if !self.is_alive(to) {
                    self.stats.dropped += 1;
                    return;
                }
                self.stats.delivered += 1;
                self.stats.latency_total_us += self.now.since(sent_at).as_micros();
                self.with_behaviour(to, |b, ctx| b.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, key } => {
                if self.is_alive(node) {
                    self.with_behaviour(node, |b, ctx| b.on_timer(ctx, key));
                }
            }
            EventKind::LinkChange(link) => {
                self.default_link = link;
            }
        }
    }

    fn with_behaviour(&mut self, node: NodeId, f: impl FnOnce(&mut B, &mut NodeContext<'_, M>)) {
        let Some(slot) = self.nodes.get_mut(node.index()) else {
            return;
        };
        if !slot.alive {
            return;
        }
        let mut behaviour = slot.behaviour.take().expect("no reentrant dispatch");
        let cpu_factor = slot.profile.cpu_factor;
        let peers: Vec<NodeId> = (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| n != node && self.is_alive(n))
            .collect();
        let mut effects = Vec::new();
        let mut ctx = NodeContext {
            now: self.now,
            node,
            cpu_factor,
            peers: &peers,
            effects: &mut effects,
            compute_debt: SimDuration::ZERO,
        };
        f(&mut behaviour, &mut ctx);
        self.nodes[node.index()].behaviour = Some(behaviour);
        self.apply_effects(node, effects);
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect<M>>) {
        for effect in effects {
            match effect {
                Effect::Send { delay, to, msg } => {
                    self.stats.sent += 1;
                    let departure = self.now + delay;
                    match self.link(node, to).sample_delivery(&mut self.rng) {
                        Some(transit) => {
                            self.push(
                                departure + transit,
                                EventKind::Deliver {
                                    from: node,
                                    to,
                                    msg,
                                    sent_at: departure,
                                },
                            );
                        }
                        None => self.stats.dropped += 1,
                    }
                }
                Effect::Timer { delay, key } => {
                    self.push(self.now + delay, EventKind::Timer { node, key });
                }
                Effect::CancelTimer { key } => {
                    // Only record the cancellation if an uncancelled
                    // matching timer is actually pending, so a spurious
                    // cancel can never swallow a future timer.
                    let pending = self
                        .queue
                        .iter()
                        .filter(|e| matches!(e.kind, EventKind::Timer { node: n, key: k } if n == node && k == key))
                        .count() as u64;
                    let already = self.cancelled.get(&(node.0, key)).copied().unwrap_or(0);
                    if already < pending {
                        self.cancelled.insert((node.0, key), already + 1);
                        self.stats.timers_cancelled += 1;
                    }
                }
            }
        }
    }
}

fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
    let (x, y) = (a.0, b.0);
    (x.min(y), x.max(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collector {
        received: Vec<(NodeId, String)>,
        timers: Vec<u64>,
        started: bool,
    }

    impl NodeBehaviour<String> for Collector {
        fn on_start(&mut self, _ctx: &mut NodeContext<'_, String>) {
            self.started = true;
        }

        fn on_message(&mut self, ctx: &mut NodeContext<'_, String>, from: NodeId, msg: String) {
            if msg == "ping" {
                ctx.send(from, "pong".to_owned());
            }
            self.received.push((from, msg));
        }

        fn on_timer(&mut self, _ctx: &mut NodeContext<'_, String>, timer: u64) {
            self.timers.push(timer);
        }
    }

    fn two_nodes() -> (Simulation<String, Collector>, NodeId, NodeId) {
        let mut sim = Simulation::new(7);
        sim.set_default_link(LinkConfig::new(10.0, 0.0));
        let a = sim.add_node(DeviceProfile::default(), Collector::default());
        let b = sim.add_node(DeviceProfile::default(), Collector::default());
        (sim, a, b)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, a, b) = two_nodes();
        sim.send_external(a, b, "ping".to_owned());
        sim.run();
        assert_eq!(sim.node(b).received, vec![(a, "ping".to_owned())]);
        assert_eq!(sim.node(a).received, vec![(b, "pong".to_owned())]);
        // external deliver at t=0, pong takes one 10 ms hop.
        assert_eq!(sim.now().as_millis_f64(), 10.0);
    }

    #[test]
    fn on_start_runs_for_every_node() {
        let (mut sim, a, b) = two_nodes();
        sim.run();
        assert!(sim.node(a).started && sim.node(b).started);
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, a, _) = two_nodes();
        sim.schedule_timer(a, SimDuration::from_millis(5), 2);
        sim.schedule_timer(a, SimDuration::from_millis(1), 1);
        sim.run();
        assert_eq!(sim.node(a).timers, vec![1, 2]);
    }

    #[test]
    fn dead_nodes_drop_messages() {
        let (mut sim, a, b) = two_nodes();
        sim.fail_node(b);
        sim.send_external(a, b, "ping".to_owned());
        sim.run();
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn partition_blocks_traffic() {
        let (mut sim, a, b) = two_nodes();
        sim.set_link(a, b, LinkConfig::disconnected());
        sim.send_external(a, b, "ping".to_owned());
        sim.run();
        // External injection is delivered, but the pong is partitioned.
        assert_eq!(sim.node(a).received.len(), 0);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn compute_scales_with_cpu_factor() {
        struct Worker;
        impl NodeBehaviour<String> for Worker {
            fn on_message(&mut self, ctx: &mut NodeContext<'_, String>, from: NodeId, _m: String) {
                ctx.compute(SimDuration::from_millis(10));
                ctx.send(from, "done".to_owned());
            }
        }
        let mut sim: Simulation<String, Worker> = Simulation::new(1);
        sim.set_default_link(LinkConfig::new(0.0, 0.0));
        let fast = sim.add_node(DeviceProfile::new(1.0), Worker);
        let slow = sim.add_node(DeviceProfile::new(4.0), Worker);
        sim.send_external(NodeId::EXTERNAL, fast, "go".to_owned());
        sim.run();
        assert_eq!(sim.now().as_millis_f64(), 10.0);

        let mut sim2: Simulation<String, Worker> = Simulation::new(1);
        sim2.set_default_link(LinkConfig::new(0.0, 0.0));
        let _ = sim2.add_node(DeviceProfile::new(1.0), Worker);
        let slow2 = sim2.add_node(DeviceProfile::new(4.0), Worker);
        sim2.send_external(NodeId::EXTERNAL, slow2, "go".to_owned());
        sim2.run();
        assert_eq!(sim2.now().as_millis_f64(), 40.0);
        let _ = (slow, fast);
    }

    #[test]
    fn broadcast_reaches_all_live_peers() {
        struct Caster {
            casted: bool,
            got: usize,
        }
        impl NodeBehaviour<u32> for Caster {
            fn on_message(&mut self, ctx: &mut NodeContext<'_, u32>, _from: NodeId, m: u32) {
                if m == 0 && !self.casted {
                    self.casted = true;
                    ctx.broadcast(1);
                } else {
                    self.got += 1;
                }
            }
        }
        let mk = || Caster {
            casted: false,
            got: 0,
        };
        let mut sim: Simulation<u32, Caster> = Simulation::new(3);
        let a = sim.add_node(DeviceProfile::default(), mk());
        let b = sim.add_node(DeviceProfile::default(), mk());
        let c = sim.add_node(DeviceProfile::default(), mk());
        let d = sim.add_node(DeviceProfile::default(), mk());
        sim.fail_node(d);
        sim.send_external(NodeId::EXTERNAL, a, 0);
        sim.run();
        assert_eq!(sim.node(b).got + sim.node(c).got, 2);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, a, _) = two_nodes();
        sim.schedule_timer(a, SimDuration::from_millis(100), 9);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(50));
        assert!(sim.node(a).timers.is_empty());
        sim.run();
        assert_eq!(sim.node(a).timers, vec![9]);
    }

    #[test]
    fn max_events_caps_runaway_protocols() {
        // Two nodes ping-pong forever; the cap must stop the run.
        struct Forever;
        impl NodeBehaviour<u32> for Forever {
            fn on_message(&mut self, ctx: &mut NodeContext<'_, u32>, from: NodeId, m: u32) {
                ctx.send(from, m + 1);
            }
        }
        let mut sim: Simulation<u32, Forever> = Simulation::new(1);
        sim.set_max_events(500);
        let a = sim.add_node(DeviceProfile::default(), Forever);
        let b = sim.add_node(DeviceProfile::default(), Forever);
        sim.send_external(a, b, 0);
        let processed = sim.run();
        assert_eq!(processed, 500);
    }

    #[test]
    fn cancelled_timer_never_fires_and_is_not_processed() {
        struct Canceller {
            fired: Vec<u64>,
        }
        impl NodeBehaviour<String> for Canceller {
            fn on_start(&mut self, ctx: &mut NodeContext<'_, String>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _c: &mut NodeContext<'_, String>, _f: NodeId, _m: String) {}
            fn on_timer(&mut self, ctx: &mut NodeContext<'_, String>, timer: u64) {
                self.fired.push(timer);
                if timer == 1 {
                    ctx.cancel_timer(2);
                }
            }
        }
        let mut sim: Simulation<String, Canceller> = Simulation::new(1);
        let a = sim.add_node(DeviceProfile::default(), Canceller { fired: Vec::new() });
        let processed = sim.run();
        assert_eq!(sim.node(a).fired, vec![1]);
        // Start + timer 1 only: the cancelled timer 2 is not processed and
        // does not advance simulated time to its instant.
        assert_eq!(processed, 2);
        assert_eq!(sim.now().as_millis_f64(), 10.0);
        assert_eq!(sim.stats().timers_cancelled, 1);
    }

    #[test]
    fn spurious_cancel_does_not_swallow_future_timers() {
        struct Spurious {
            fired: Vec<u64>,
        }
        impl NodeBehaviour<String> for Spurious {
            fn on_start(&mut self, ctx: &mut NodeContext<'_, String>) {
                ctx.cancel_timer(7); // nothing pending: must be a no-op
                ctx.set_timer(SimDuration::from_millis(5), 7);
            }
            fn on_message(&mut self, _c: &mut NodeContext<'_, String>, _f: NodeId, _m: String) {}
            fn on_timer(&mut self, _ctx: &mut NodeContext<'_, String>, timer: u64) {
                self.fired.push(timer);
            }
        }
        let mut sim: Simulation<String, Spurious> = Simulation::new(1);
        let a = sim.add_node(DeviceProfile::default(), Spurious { fired: Vec::new() });
        sim.run();
        assert_eq!(sim.node(a).fired, vec![7]);
        assert_eq!(sim.stats().timers_cancelled, 0);
    }

    #[test]
    fn run_checked_reports_cap_exhaustion() {
        struct Forever;
        impl NodeBehaviour<u32> for Forever {
            fn on_message(&mut self, ctx: &mut NodeContext<'_, u32>, from: NodeId, m: u32) {
                ctx.send(from, m + 1);
            }
        }
        let mut sim: Simulation<u32, Forever> = Simulation::new(1);
        sim.set_max_events(100);
        let a = sim.add_node(DeviceProfile::default(), Forever);
        let b = sim.add_node(DeviceProfile::default(), Forever);
        sim.send_external(a, b, 0);
        let err = sim.run_checked().expect_err("must hit the cap");
        assert_eq!(err.max_events, 100);
        assert_eq!(err.processed, 100);
        assert!(sim.cap_exhausted());
    }

    #[test]
    fn run_checked_is_ok_on_clean_drain() {
        let (mut sim, a, b) = two_nodes();
        sim.send_external(a, b, "ping".to_owned());
        assert!(sim.run_checked().is_ok());
        assert!(!sim.cap_exhausted());
    }

    #[test]
    fn scheduled_link_change_takes_effect() {
        // Loss 1.0 until t=50 ms, perfect afterwards: a ping at t=0 is
        // lost, a ping sent after the change gets through.
        let mut sim = Simulation::new(5);
        sim.set_default_link(LinkConfig::new(5.0, 0.0).with_loss(1.0));
        sim.set_default_link_at(SimDuration::from_millis(50), LinkConfig::new(5.0, 0.0));
        let a = sim.add_node(DeviceProfile::default(), Collector::default());
        let b = sim.add_node(DeviceProfile::default(), Collector::default());
        sim.send_external(a, b, "ping".to_owned());
        sim.run();
        // The external injection is delivered; the pong was lost.
        assert_eq!(sim.node(a).received.len(), 0);
        assert_eq!(sim.stats().dropped, 1);
        sim.send_external(a, b, "ping".to_owned());
        sim.run();
        assert_eq!(sim.node(a).received, vec![(b, "pong".to_owned())]);
    }

    #[test]
    fn nodes_can_join_mid_run() {
        let (mut sim, a, _) = two_nodes();
        sim.run();
        // A latecomer joins after the initial quiescence…
        let late = sim.add_node(DeviceProfile::default(), Collector::default());
        sim.send_external(a, late, "ping".to_owned());
        sim.run();
        // …receives traffic and its on_start ran.
        assert!(sim.node(late).started);
        assert_eq!(sim.node(late).received.len(), 1);
    }

    #[test]
    fn alive_nodes_tracks_churn() {
        let (mut sim, a, b) = two_nodes();
        assert_eq!(sim.alive_nodes(), vec![a, b]);
        sim.fail_node(a);
        assert_eq!(sim.alive_nodes(), vec![b]);
        assert!(!sim.is_alive(a));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut sim, a, b) = two_nodes();
            sim.set_default_link(LinkConfig::new(5.0, 2.0).with_loss(0.1));
            for _ in 0..50 {
                sim.send_external(a, b, "ping".to_owned());
            }
            sim.run();
            (sim.stats(), sim.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_track_latency() {
        let (mut sim, a, b) = two_nodes();
        sim.send_external(a, b, "ping".to_owned());
        sim.run();
        // Only the pong transits a link (external inject has 0 latency).
        assert_eq!(sim.stats().delivered, 2);
        assert_eq!(sim.stats().mean_latency_ms(), 5.0);
    }
}
