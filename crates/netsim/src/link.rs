//! Wireless link model.

use rand::Rng;

use crate::dist::Normal;
use crate::SimDuration;

/// Configuration of a (directed pair of) wireless link(s): latency law,
/// jitter and loss.
///
/// # Examples
///
/// ```
/// use qasom_netsim::LinkConfig;
///
/// let lossy = LinkConfig::new(20.0, 5.0).with_loss(0.05);
/// assert_eq!(lossy.loss(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    latency_ms: f64,
    jitter_ms: f64,
    loss: f64,
    connected: bool,
}

impl LinkConfig {
    /// A link with normally distributed latency `N(latency_ms, jitter_ms²)`
    /// and no loss.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite parameters.
    pub fn new(latency_ms: f64, jitter_ms: f64) -> Self {
        assert!(
            latency_ms.is_finite() && latency_ms >= 0.0,
            "latency must be finite and non-negative"
        );
        assert!(
            jitter_ms.is_finite() && jitter_ms >= 0.0,
            "jitter must be finite and non-negative"
        );
        LinkConfig {
            latency_ms,
            jitter_ms,
            loss: 0.0,
            connected: true,
        }
    }

    /// Sets the message-loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `loss` is in `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        self.loss = loss;
        self
    }

    /// A severed link: every message is dropped (network partition).
    pub fn disconnected() -> Self {
        LinkConfig {
            latency_ms: 0.0,
            jitter_ms: 0.0,
            loss: 1.0,
            connected: false,
        }
    }

    /// Mean latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_ms
    }

    /// Latency standard deviation in milliseconds.
    pub fn jitter_ms(&self) -> f64 {
        self.jitter_ms
    }

    /// Message-loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Whether the endpoints can talk at all.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Samples one delivery: `None` when the message is lost, otherwise
    /// the transit delay.
    pub fn sample_delivery(&self, rng: &mut impl Rng) -> Option<SimDuration> {
        if !self.connected || (self.loss > 0.0 && rng.gen::<f64>() < self.loss) {
            return None;
        }
        let latency =
            Normal::new(self.latency_ms, self.jitter_ms).sample_clamped(rng, 0.0, f64::INFINITY);
        Some(SimDuration::from_millis_f64(latency))
    }
}

impl Default for LinkConfig {
    /// An ad hoc Wi-Fi-like default: 5 ms ± 1 ms, no loss.
    fn default() -> Self {
        LinkConfig::new(5.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_link_always_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = LinkConfig::new(10.0, 0.0);
        for _ in 0..100 {
            let d = link.sample_delivery(&mut rng).unwrap();
            assert_eq!(d.as_millis_f64(), 10.0);
        }
    }

    #[test]
    fn disconnected_link_never_delivers() {
        let mut rng = StdRng::seed_from_u64(2);
        let link = LinkConfig::disconnected();
        assert!(!link.is_connected());
        for _ in 0..10 {
            assert!(link.sample_delivery(&mut rng).is_none());
        }
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let link = LinkConfig::new(5.0, 0.0).with_loss(0.3);
        let delivered = (0..10_000)
            .filter(|_| link.sample_delivery(&mut rng).is_some())
            .count();
        let rate = delivered as f64 / 10_000.0;
        assert!((rate - 0.7).abs() < 0.02, "delivery rate {rate}");
    }

    #[test]
    fn jitter_never_goes_negative() {
        let mut rng = StdRng::seed_from_u64(4);
        let link = LinkConfig::new(1.0, 10.0);
        for _ in 0..1000 {
            let d = link.sample_delivery(&mut rng).unwrap();
            assert!(d.as_millis_f64() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "loss must be in [0, 1]")]
    fn rejects_bad_loss() {
        let _ = LinkConfig::new(1.0, 0.0).with_loss(1.5);
    }
}
