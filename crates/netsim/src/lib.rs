//! Discrete-event simulation of ad hoc pervasive environments.
//!
//! The original system was evaluated on a physical testbed of mobile
//! devices on an ad hoc Wi-Fi network. This crate is the substitute
//! substrate: a deterministic (seeded) discrete-event simulator capturing
//! the two properties the evaluation depends on —
//!
//! 1. **message cost** — wireless links with configurable latency
//!    distributions, jitter and loss ([`LinkConfig`]), full-mesh by default
//!    with per-pair overrides and partitions;
//! 2. **heterogeneous compute** — per-node [`DeviceProfile`]s whose CPU
//!    factor scales local computation time, modelling resource-constrained
//!    devices.
//!
//! Protocols are written as [`NodeBehaviour`] implementations exchanging a
//! user-defined message type; [`Simulation::run`] drives the event queue.
//! Node churn (join/leave/crash) can be injected at any point.
//!
//! The [`runtime`] module adds the *synthetic service runtime*: services
//! whose per-invocation QoS is drawn from seeded distributions with drift
//! and failure injection — the observable world the monitoring and
//! adaptation layers react to.
//!
//! # Examples
//!
//! ```
//! use qasom_netsim::{
//!     DeviceProfile, LinkConfig, NodeBehaviour, NodeContext, NodeId, Simulation,
//! };
//!
//! struct Echo;
//! impl NodeBehaviour<String> for Echo {
//!     fn on_message(&mut self, ctx: &mut NodeContext<'_, String>, from: NodeId, msg: String) {
//!         if msg == "ping" {
//!             ctx.send(from, "pong".to_owned());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let a = sim.add_node(DeviceProfile::default(), Echo);
//! let b = sim.add_node(DeviceProfile::default(), Echo);
//! sim.send_external(a, b, "ping".to_owned());
//! sim.run();
//! assert_eq!(sim.stats().delivered, 2); // ping + pong
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod link;
pub mod mobility;
pub mod runtime;
mod sim;
mod time;

pub use link::LinkConfig;
pub use sim::{
    DeviceProfile, EventCapExceeded, NetworkStats, NodeBehaviour, NodeContext, NodeId, Simulation,
};
pub use time::{SimDuration, SimTime};
