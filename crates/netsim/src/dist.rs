//! Seeded sampling distributions.
//!
//! The evaluation draws QoS values and link latencies from normal and
//! exponential laws. `rand` only ships uniform sampling in its core, so the
//! two laws are implemented here (Box–Muller and inverse CDF) rather than
//! pulling in an extra dependency.

use rand::Rng;

/// Normal distribution `N(mean, std_dev²)` sampled via Box–Muller.
///
/// # Examples
///
/// ```
/// use qasom_netsim::dist::Normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let n = Normal::new(100.0, 15.0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal law.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "normal law needs finite mean and non-negative std dev"
        );
        Normal { mean, std_dev }
    }

    /// The mean `m`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation `σ`.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        // Box–Muller: u1 in (0, 1] to keep ln finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Draws one sample clamped to `[lo, hi]` (truncated law).
    pub fn sample_clamped(&self, rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

/// Exponential distribution with the given rate `λ`, sampled by inverse
/// CDF. Mean is `1/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential law.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential law needs a positive rate"
        );
        Exponential { rate }
    }

    /// An exponential law with the given mean (`rate = 1/mean`).
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential law needs a positive mean"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sample_mean_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(50.0, 10.0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 10.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn degenerate_normal_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = Normal::new(7.0, 0.0);
        assert_eq!(n.sample(&mut rng), 7.0);
    }

    #[test]
    fn clamped_sample_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = Normal::new(0.0, 100.0);
        for _ in 0..1000 {
            let x = n.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = Exponential::with_mean(20.0);
        let mean: f64 = (0..20_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn exponential_samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Exponential::new(0.5);
        for _ in 0..1000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let n = Normal::new(10.0, 2.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-negative std dev")]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
