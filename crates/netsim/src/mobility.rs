//! Node mobility and distance-based radio quality.
//!
//! Pervasive scenarios degrade because people *move*: a streaming peer
//! that was one tent away is suddenly across the camp. This module
//! provides the classic random-waypoint mobility model plus a radio
//! profile mapping node distance onto link quality ([`LinkConfig`]) and
//! onto the infrastructure-layer QoS vector (network latency, packet
//! loss, signal strength, bandwidth) that the end-to-end QoS model
//! consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qasom_qos::{QosModel, QosVector};

use crate::LinkConfig;

/// A point in the simulation plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Distance → radio-quality mapping for an ad hoc wireless technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioProfile {
    /// Hard connectivity range (m); beyond it nodes are partitioned.
    pub range_m: f64,
    /// Latency at zero distance (ms).
    pub base_latency_ms: f64,
    /// Additional latency per metre (retransmissions as SNR drops).
    pub latency_per_m_ms: f64,
    /// Latency jitter (ms).
    pub jitter_ms: f64,
    /// Loss probability reached at the edge of the range (grows
    /// quadratically from 0 at distance 0).
    pub loss_at_edge: f64,
    /// Nominal link bandwidth at zero distance (kbit/s).
    pub max_bandwidth_kbps: f64,
}

impl RadioProfile {
    /// An 802.11-ad-hoc-like profile: 100 m range, 2 ms + 0.05 ms/m
    /// latency, 1 ms jitter, 20 % loss at the edge, 20 Mbit/s nominal.
    pub fn wifi_adhoc() -> Self {
        RadioProfile {
            range_m: 100.0,
            base_latency_ms: 2.0,
            latency_per_m_ms: 0.05,
            jitter_ms: 1.0,
            loss_at_edge: 0.2,
            max_bandwidth_kbps: 20_000.0,
        }
    }

    /// The link configuration for two nodes `distance_m` apart.
    pub fn link_for(&self, distance_m: f64) -> LinkConfig {
        if distance_m >= self.range_m {
            return LinkConfig::disconnected();
        }
        let latency = self.base_latency_ms + self.latency_per_m_ms * distance_m;
        let loss = self.loss_at_edge * (distance_m / self.range_m).powi(2);
        LinkConfig::new(latency, self.jitter_ms).with_loss(loss.clamp(0.0, 1.0))
    }

    /// The infrastructure-layer QoS vector (standard-model properties:
    /// `NetworkLatency`, `PacketLoss`, `SignalStrength`, `Bandwidth`) for
    /// a path of the given length. Properties absent from `model` are
    /// skipped.
    pub fn infra_qos(&self, model: &QosModel, distance_m: f64) -> QosVector {
        let mut v = QosVector::new();
        let in_range = distance_m < self.range_m;
        if let Some(p) = model.property("NetworkLatency") {
            let latency = if in_range {
                self.base_latency_ms + self.latency_per_m_ms * distance_m
            } else {
                f64::INFINITY
            };
            v.set(p, latency);
        }
        if let Some(p) = model.property("PacketLoss") {
            let loss = if in_range {
                (self.loss_at_edge * (distance_m / self.range_m).powi(2)).clamp(0.0, 1.0)
            } else {
                1.0
            };
            v.set(p, loss);
        }
        if let Some(p) = model.property("SignalStrength") {
            // Log-distance path loss: −40 dBm at 1 m, −25 dB per decade.
            let d = distance_m.max(1.0);
            v.set(p, -40.0 - 25.0 * d.log10());
        }
        if let Some(p) = model.property("Bandwidth") {
            let bw = if in_range {
                self.max_bandwidth_kbps * (1.0 - distance_m / self.range_m)
            } else {
                0.0
            };
            v.set(p, bw.max(0.0));
        }
        v
    }
}

/// The random-waypoint mobility model: every node walks towards a random
/// waypoint at a random speed, picks a new one on arrival.
///
/// # Examples
///
/// ```
/// use qasom_netsim::mobility::{RadioProfile, RandomWaypoint};
///
/// let mut mob = RandomWaypoint::new(4, (100.0, 100.0), (0.5, 2.0), 42);
/// mob.step(10.0); // ten seconds of movement
/// let d = mob.distance(0, 1);
/// let link = RadioProfile::wifi_adhoc().link_for(d);
/// assert!(link.latency_ms() >= 2.0 || !link.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: (f64, f64),
    speed_range: (f64, f64),
    positions: Vec<Position>,
    targets: Vec<Position>,
    speeds: Vec<f64>,
    rng: StdRng,
}

impl RandomWaypoint {
    /// Places `nodes` uniformly in an `area` (width, height in metres)
    /// with node speeds drawn from `speed_range` (m/s), deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive area or an empty/negative speed range.
    pub fn new(nodes: usize, area: (f64, f64), speed_range: (f64, f64), seed: u64) -> Self {
        assert!(area.0 > 0.0 && area.1 > 0.0, "area must be positive");
        assert!(
            speed_range.0 > 0.0 && speed_range.1 >= speed_range.0,
            "speed range must be positive and ordered"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let random_pos =
            |rng: &mut StdRng| Position::new(rng.gen::<f64>() * area.0, rng.gen::<f64>() * area.1);
        let positions: Vec<Position> = (0..nodes).map(|_| random_pos(&mut rng)).collect();
        let targets: Vec<Position> = (0..nodes).map(|_| random_pos(&mut rng)).collect();
        let speeds: Vec<f64> = (0..nodes)
            .map(|_| rng.gen_range(speed_range.0..=speed_range.1))
            .collect();
        RandomWaypoint {
            area,
            speed_range,
            positions,
            targets,
            speeds,
            rng,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the model tracks no node.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current position of node `i`.
    pub fn position(&self, i: usize) -> Position {
        self.positions[i]
    }

    /// Pins node `i` to a fixed spot (e.g. the user standing still).
    pub fn set_position(&mut self, i: usize, position: Position) {
        self.positions[i] = position;
        self.targets[i] = position;
    }

    /// Distance between two nodes, in metres.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.positions[i].distance(&self.positions[j])
    }

    /// Advances every node by `dt_s` seconds of movement.
    pub fn step(&mut self, dt_s: f64) {
        for i in 0..self.positions.len() {
            let mut remaining = self.speeds[i] * dt_s;
            while remaining > 0.0 {
                let to_target = self.positions[i].distance(&self.targets[i]);
                if to_target == 0.0 {
                    // Already at the target: the node is pinned (target ==
                    // position is only reachable via `set_position`).
                    break;
                }
                if to_target <= remaining {
                    self.positions[i] = self.targets[i];
                    remaining -= to_target;
                    // New waypoint and speed.
                    self.targets[i] = Position::new(
                        self.rng.gen::<f64>() * self.area.0,
                        self.rng.gen::<f64>() * self.area.1,
                    );
                    self.speeds[i] = self.rng.gen_range(self.speed_range.0..=self.speed_range.1);
                } else {
                    let f = remaining / to_target;
                    self.positions[i].x += (self.targets[i].x - self.positions[i].x) * f;
                    self.positions[i].y += (self.targets[i].y - self.positions[i].y) * f;
                    remaining = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_stay_inside_the_area() {
        let mut m = RandomWaypoint::new(10, (50.0, 30.0), (1.0, 3.0), 1);
        for _ in 0..200 {
            m.step(1.0);
        }
        for i in 0..m.len() {
            let p = m.position(i);
            assert!((0.0..=50.0).contains(&p.x), "x = {}", p.x);
            assert!((0.0..=30.0).contains(&p.y), "y = {}", p.y);
        }
    }

    #[test]
    fn movement_is_deterministic_per_seed() {
        let run = || {
            let mut m = RandomWaypoint::new(5, (100.0, 100.0), (0.5, 2.0), 9);
            for _ in 0..50 {
                m.step(2.0);
            }
            (0..5).map(|i| m.position(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_moves_at_most_speed_times_dt() {
        let mut m = RandomWaypoint::new(3, (1000.0, 1000.0), (1.0, 1.0), 4);
        let before: Vec<Position> = (0..3).map(|i| m.position(i)).collect();
        m.step(5.0);
        for (i, b) in before.iter().enumerate() {
            let moved = b.distance(&m.position(i));
            // Waypoint turns can shorten the displacement, never extend it.
            assert!(moved <= 5.0 + 1e-9, "moved {moved}");
        }
    }

    #[test]
    fn pinned_nodes_do_not_move() {
        let mut m = RandomWaypoint::new(2, (100.0, 100.0), (1.0, 2.0), 5);
        m.set_position(0, Position::new(10.0, 10.0));
        for _ in 0..20 {
            m.step(1.0);
        }
        assert_eq!(m.position(0), Position::new(10.0, 10.0));
    }

    #[test]
    fn link_quality_degrades_with_distance() {
        let radio = RadioProfile::wifi_adhoc();
        let near = radio.link_for(5.0);
        let far = radio.link_for(90.0);
        assert!(near.latency_ms() < far.latency_ms());
        assert!(near.loss() < far.loss());
        assert!(!radio.link_for(150.0).is_connected());
    }

    #[test]
    fn infra_qos_reflects_distance() {
        let model = QosModel::standard();
        let radio = RadioProfile::wifi_adhoc();
        let lat = model.property("NetworkLatency").unwrap();
        let loss = model.property("PacketLoss").unwrap();
        let sig = model.property("SignalStrength").unwrap();
        let bw = model.property("Bandwidth").unwrap();

        let near = radio.infra_qos(&model, 5.0);
        let far = radio.infra_qos(&model, 90.0);
        assert!(near.get(lat).unwrap() < far.get(lat).unwrap());
        assert!(near.get(loss).unwrap() < far.get(loss).unwrap());
        assert!(near.get(sig).unwrap() > far.get(sig).unwrap());
        assert!(near.get(bw).unwrap() > far.get(bw).unwrap());

        let out = radio.infra_qos(&model, 200.0);
        assert_eq!(out.get(loss), Some(1.0));
        assert_eq!(out.get(bw), Some(0.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let m = RandomWaypoint::new(4, (100.0, 100.0), (1.0, 2.0), 6);
        assert_eq!(m.distance(1, 3), m.distance(3, 1));
        assert_eq!(m.distance(2, 2), 0.0);
    }
}
