//! Synthetic service runtime: the observable, fluctuating world the
//! monitoring and adaptation layers react to.
//!
//! The original evaluation ran against live services whose delivered QoS
//! drifted away from the advertised one (load, mobility, failures). The
//! synthetic runtime reproduces those phenomena deterministically:
//! per-invocation QoS is the advertised (nominal) value perturbed by
//! multiplicative Gaussian noise, optionally *drifting* after a configured
//! number of invocations, with both transient failures (per-invocation
//! probability) and permanent crashes (after N invocations).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qasom_qos::{PropertyId, QosVector};

use crate::dist::Normal;

/// Outcome of one service invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum InvocationOutcome {
    /// The invocation succeeded with the observed QoS.
    Success(QosVector),
    /// The invocation failed (transient fault or crashed service).
    Failure,
}

impl InvocationOutcome {
    /// The observed QoS of a successful invocation.
    pub fn qos(&self) -> Option<&QosVector> {
        match self {
            InvocationOutcome::Success(q) => Some(q),
            InvocationOutcome::Failure => None,
        }
    }

    /// Whether the invocation succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, InvocationOutcome::Success(_))
    }
}

/// A QoS drift: from invocation `after` onwards, `property` is multiplied
/// by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Drift {
    after: u64,
    property: PropertyId,
    factor: f64,
}

/// A synthetic service with parametrised QoS behaviour.
///
/// # Examples
///
/// ```
/// use qasom_netsim::runtime::SyntheticService;
/// use qasom_qos::{QosModel, QosVector};
/// use rand::SeedableRng;
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let mut nominal = QosVector::new();
/// nominal.set(rt, 100.0);
///
/// let mut svc = SyntheticService::new(nominal).with_noise(0.05);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = svc.invoke(&mut rng);
/// assert!(outcome.is_success());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticService {
    nominal: QosVector,
    noise: f64,
    failure_rate: f64,
    crash_after: Option<u64>,
    drifts: Vec<Drift>,
    invocations: u64,
}

impl SyntheticService {
    /// A service delivering exactly its advertised (nominal) QoS.
    pub fn new(nominal: QosVector) -> Self {
        SyntheticService {
            nominal,
            noise: 0.0,
            failure_rate: 0.0,
            crash_after: None,
            drifts: Vec::new(),
            invocations: 0,
        }
    }

    /// Relative standard deviation of the multiplicative per-invocation
    /// noise (`0.05` = ±5 % typical deviation).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite value.
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        self.noise = noise;
        self
    }

    /// Per-invocation transient-failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is in `[0, 1]`.
    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "failure rate must be in [0,1]");
        self.failure_rate = rate;
        self
    }

    /// The service crashes permanently after `n` successful invocations.
    pub fn with_crash_after(mut self, n: u64) -> Self {
        self.crash_after = Some(n);
        self
    }

    /// From invocation `after` onwards, multiplies `property` by `factor`
    /// (e.g. `2.0` on response time models growing load).
    pub fn with_drift(mut self, after: u64, property: PropertyId, factor: f64) -> Self {
        self.drifts.push(Drift {
            after,
            property,
            factor,
        });
        self
    }

    /// The advertised QoS.
    pub fn nominal(&self) -> &QosVector {
        &self.nominal
    }

    /// Number of invocations so far (including failures).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Whether the service has permanently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crash_after.is_some_and(|n| self.invocations >= n)
    }

    /// Invokes the service once.
    pub fn invoke(&mut self, rng: &mut impl Rng) -> InvocationOutcome {
        if self.is_crashed() {
            self.invocations += 1;
            return InvocationOutcome::Failure;
        }
        self.invocations += 1;
        if self.failure_rate > 0.0 && rng.gen::<f64>() < self.failure_rate {
            return InvocationOutcome::Failure;
        }
        let mut observed = QosVector::new();
        for (p, nominal) in self.nominal.iter() {
            let mut value = nominal;
            for d in &self.drifts {
                if d.property == p && self.invocations > d.after {
                    value *= d.factor;
                }
            }
            if self.noise > 0.0 {
                let factor = Normal::new(1.0, self.noise).sample_clamped(rng, 0.0, f64::MAX);
                value *= factor;
            }
            // Values that are ratios by construction stay ratios.
            if (0.0..=1.0).contains(&nominal) {
                value = value.clamp(0.0, 1.0);
            }
            observed.set(p, value);
        }
        InvocationOutcome::Success(observed)
    }
}

/// A keyed collection of synthetic services with a shared deterministic
/// RNG — the "environment side" of the middleware's execution engine.
#[derive(Debug)]
pub struct ServiceRuntime<K> {
    services: BTreeMap<K, SyntheticService>,
    rng: StdRng,
}

impl<K: Ord + Clone> ServiceRuntime<K> {
    /// Creates an empty runtime with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        ServiceRuntime {
            services: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Deploys (or replaces) a service under `key`.
    pub fn deploy(&mut self, key: K, service: SyntheticService) {
        self.services.insert(key, service);
    }

    /// Removes a service (provider departure).
    pub fn undeploy(&mut self, key: &K) -> Option<SyntheticService> {
        self.services.remove(key)
    }

    /// Invokes the service under `key`; `None` when no such service is
    /// deployed.
    pub fn invoke(&mut self, key: &K) -> Option<InvocationOutcome> {
        let svc = self.services.get_mut(key)?;
        Some(svc.invoke(&mut self.rng))
    }

    /// The deployed service under `key`.
    pub fn get(&self, key: &K) -> Option<&SyntheticService> {
        self.services.get(key)
    }

    /// Mutable access (inject drift/crash mid-run).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut SyntheticService> {
        self.services.get_mut(key)
    }

    /// Number of deployed services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether no service is deployed.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::QosModel;

    fn nominal(rt_val: f64) -> (QosVector, PropertyId) {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let mut v = QosVector::new();
        v.set(rt, rt_val);
        (v, rt)
    }

    #[test]
    fn noiseless_service_delivers_nominal() {
        let (v, rt) = nominal(100.0);
        let mut svc = SyntheticService::new(v);
        let mut rng = StdRng::seed_from_u64(1);
        let out = svc.invoke(&mut rng);
        assert_eq!(out.qos().unwrap().get(rt), Some(100.0));
    }

    #[test]
    fn noise_perturbs_but_stays_close() {
        let (v, rt) = nominal(100.0);
        let mut svc = SyntheticService::new(v).with_noise(0.05);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            sum += svc.invoke(&mut rng).qos().unwrap().get(rt).unwrap();
        }
        let mean = sum / 1000.0;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn drift_kicks_in_after_threshold() {
        let (v, rt) = nominal(100.0);
        let mut svc = SyntheticService::new(v).with_drift(5, rt, 3.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            assert_eq!(svc.invoke(&mut rng).qos().unwrap().get(rt), Some(100.0));
        }
        assert_eq!(svc.invoke(&mut rng).qos().unwrap().get(rt), Some(300.0));
    }

    #[test]
    fn crash_is_permanent() {
        let (v, _) = nominal(10.0);
        let mut svc = SyntheticService::new(v).with_crash_after(2);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(svc.invoke(&mut rng).is_success());
        assert!(svc.invoke(&mut rng).is_success());
        assert!(!svc.invoke(&mut rng).is_success());
        assert!(!svc.invoke(&mut rng).is_success());
        assert!(svc.is_crashed());
    }

    #[test]
    fn failure_rate_is_roughly_respected() {
        let (v, _) = nominal(10.0);
        let mut svc = SyntheticService::new(v).with_failure_rate(0.25);
        let mut rng = StdRng::seed_from_u64(5);
        let fails = (0..10_000)
            .filter(|_| !svc.invoke(&mut rng).is_success())
            .count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "failure rate {rate}");
    }

    #[test]
    fn ratio_values_stay_in_unit_interval() {
        let m = QosModel::standard();
        let av = m.property("Availability").unwrap();
        let mut v = QosVector::new();
        v.set(av, 0.98);
        let mut svc = SyntheticService::new(v).with_noise(0.5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            let q = svc.invoke(&mut rng);
            let val = q.qos().unwrap().get(av).unwrap();
            assert!((0.0..=1.0).contains(&val));
        }
    }

    #[test]
    fn runtime_routes_by_key() {
        let (v, rt) = nominal(42.0);
        let mut runtime: ServiceRuntime<&str> = ServiceRuntime::new(9);
        runtime.deploy("a", SyntheticService::new(v));
        assert!(runtime.invoke(&"missing").is_none());
        let out = runtime.invoke(&"a").unwrap();
        assert_eq!(out.qos().unwrap().get(rt), Some(42.0));
        assert!(runtime.undeploy(&"a").is_some());
        assert!(runtime.invoke(&"a").is_none());
    }
}
