//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The farthest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, fractional.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Elapsed duration since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Builds a span from fractional milliseconds (negative clamps to 0).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// The span in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Scales the span by a non-negative factor.
    pub fn scale(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.as_millis_f64(), 5.0);
    }

    #[test]
    fn since_is_saturating() {
        let early = SimTime::ZERO + SimDuration::from_millis(1);
        let late = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(late.since(early).as_micros(), 2_000);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn scale_multiplies() {
        let d = SimDuration::from_millis(10).scale(2.5);
        assert_eq!(d.as_micros(), 25_000);
        assert_eq!(SimDuration::from_millis(10).scale(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(SimTime::ZERO.to_string(), "0.000ms");
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
    }
}
