//! QASSA phase 1 — local selection.
//!
//! Per abstract activity, candidate services are clustered per QoS
//! property into ranked quality bands (1-D K-means), the band memberships
//! are combined into **QoS levels** and **QoS classes**, and candidates
//! are ordered best-first:
//!
//! * the *level* of a candidate is its worst band rank across the
//!   requested properties (`QL_r` — a service can only guarantee its worst
//!   band);
//! * within a level, its *class* is the number of properties stuck at that
//!   worst rank (`QC_{r,e}` — the fewer, the closer the candidate is to
//!   the better level);
//! * within a class, candidates are ordered by SAW utility.
//!
//! A candidate missing a requested property is ranked below every band
//! (its quality is unknown, which an open environment must treat as
//! worst).

use qasom_qos::utility::utility;
use qasom_qos::{Normalizer, Preferences, PropertyId, QosModel, Tendency};

use crate::{kmeans_1d_with, KmeansScratch, ServiceCandidate};

/// A candidate annotated with its local-selection rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    candidate: ServiceCandidate,
    level: usize,
    class: usize,
    utility: f64,
}

impl RankedCandidate {
    /// The underlying candidate.
    pub fn candidate(&self) -> &ServiceCandidate {
        &self.candidate
    }

    /// QoS level (`0` = best band).
    pub fn level(&self) -> usize {
        self.level
    }

    /// QoS class within the level (`1` = closest to the better level).
    pub fn class(&self) -> usize {
        self.class
    }

    /// SAW utility among the activity's candidates (`f_{s_{i,k}}`).
    pub fn utility(&self) -> f64 {
        self.utility
    }
}

/// Configuration of the local selection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalRank {
    /// Number of K-means bands per property (the `k` of QASSA).
    pub bands: usize,
    /// Lloyd-iteration cap.
    pub kmeans_iters: usize,
}

impl Default for LocalRank {
    /// Four bands, as in the original evaluation set-up.
    fn default() -> Self {
        LocalRank {
            bands: 4,
            kmeans_iters: 50,
        }
    }
}

/// Reusable buffers for [`LocalRank::rank_with`].
///
/// One arena holds the per-property value column, the present-candidate
/// index column, the flat `|properties| × |candidates|` rank matrix and
/// the K-means scratch. Ranking every activity of a task through one
/// arena keeps the selection hot path allocation-free after the first
/// activity.
#[derive(Debug, Clone, Default)]
pub struct LocalScratch {
    values: Vec<f64>,
    present: Vec<usize>,
    ranks: Vec<usize>,
    kmeans: KmeansScratch,
}

impl LocalScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        LocalScratch::default()
    }
}

impl LocalRank {
    /// Runs local selection for one activity's candidate set over the
    /// requested properties.
    pub fn rank(
        &self,
        model: &QosModel,
        candidates: &[ServiceCandidate],
        properties: &[PropertyId],
        preferences: &Preferences,
    ) -> QosLevels {
        self.rank_with(
            model,
            candidates,
            properties,
            preferences,
            &mut LocalScratch::new(),
        )
    }

    /// [`LocalRank::rank`] into caller-owned buffers: the hot-path
    /// variant. Identical output; the scratch arena is reused across
    /// calls so repeated rankings stop allocating once the buffers have
    /// grown to the workload's size.
    pub fn rank_with(
        &self,
        model: &QosModel,
        candidates: &[ServiceCandidate],
        properties: &[PropertyId],
        preferences: &Preferences,
        scratch: &mut LocalScratch,
    ) -> QosLevels {
        if candidates.is_empty() {
            return QosLevels {
                levels: Vec::new(),
                bounds: Vec::new(),
            };
        }
        let n = candidates.len();

        // Worst possible rank: below the deepest band (missing values).
        let missing_rank = self.bands;

        // Destructure for disjoint &mut borrows inside the column loop.
        let LocalScratch {
            values,
            present,
            ranks,
            kmeans,
        } = scratch;

        // Per property: gather the flat value column, cluster it, and
        // scatter band ranks into the flat rank matrix (column-major by
        // property). The same pass feeds the min–max normaliser, so the
        // candidate pool is traversed once per property instead of once
        // for clustering plus once for normalisation.
        ranks.clear();
        ranks.resize(properties.len() * n, missing_rank);
        let mut normalizer = Normalizer::default();
        let mut bounds: Vec<(PropertyId, f64, f64)> = Vec::with_capacity(properties.len());
        for (pi, &p) in properties.iter().enumerate() {
            let tendency = model.tendency(p);
            values.clear();
            present.clear();
            // Non-finite values (e.g. an unreachable host's perceived
            // response time) count as missing: unknown or unusable
            // quality sinks below every band.
            for (i, c) in candidates.iter().enumerate() {
                if let Some(v) = c.qos().get(p).filter(|v| v.is_finite()) {
                    present.push(i);
                    values.push(v);
                    normalizer.include(model, p, v);
                }
            }
            // The same pass caches the column's raw value bounds: the
            // global phase fits its composition-level normaliser from
            // these instead of re-scanning every candidate.
            if let (Some(lo), Some(hi)) = (
                values.iter().copied().reduce(f64::min),
                values.iter().copied().reduce(f64::max),
            ) {
                bounds.push((p, lo, hi));
            }
            let k = kmeans_1d_with(values, self.bands, self.kmeans_iters, kmeans);
            let column = &mut ranks[pi * n..(pi + 1) * n];
            for (j, &i) in present.iter().enumerate() {
                let label = kmeans.assignments()[j];
                column[i] = match tendency {
                    Tendency::LowerBetter => label,
                    Tendency::HigherBetter => k - 1 - label,
                };
            }
        }

        // Preference properties outside the requested set still need
        // normalisation bounds for the utility term.
        for p in preferences.properties() {
            if !properties.contains(&p) {
                for c in candidates {
                    if let Some(v) = c.qos().get(p) {
                        normalizer.include(model, p, v);
                    }
                }
            }
        }

        let prefs_owned;
        let prefs = if preferences.is_empty() {
            prefs_owned = Preferences::uniform(properties.iter().copied());
            &prefs_owned
        } else {
            preferences
        };

        let mut ranked: Vec<RankedCandidate> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (level, class) = if properties.is_empty() {
                    (0, 0)
                } else {
                    let mut worst = 0;
                    let mut class = 0;
                    for pi in 0..properties.len() {
                        let r = ranks[pi * n + i];
                        match r.cmp(&worst) {
                            std::cmp::Ordering::Greater => {
                                worst = r;
                                class = 1;
                            }
                            std::cmp::Ordering::Equal => class += 1,
                            std::cmp::Ordering::Less => {}
                        }
                    }
                    (worst, class)
                };
                RankedCandidate {
                    candidate: c.clone(),
                    level,
                    class,
                    utility: utility(c.qos(), &normalizer, prefs),
                }
            })
            .collect();

        ranked.sort_by(|a, b| {
            a.level
                .cmp(&b.level)
                .then(a.class.cmp(&b.class))
                .then(b.utility.total_cmp(&a.utility))
                .then(a.candidate.id().cmp(&b.candidate.id()))
        });

        let level_count = ranked.iter().map(|r| r.level + 1).max().unwrap_or(0);
        let mut levels: Vec<Vec<RankedCandidate>> = vec![Vec::new(); level_count];
        for r in ranked {
            levels[r.level].push(r);
        }
        bounds.sort_by_key(|&(p, ..)| p);
        QosLevels { levels, bounds }
    }
}

/// The ranked candidate hierarchy of one activity: candidates grouped by
/// QoS level, best level first, each level internally sorted by class then
/// utility.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QosLevels {
    levels: Vec<Vec<RankedCandidate>>,
    /// Raw `(property, min, max)` value bounds over the finite values the
    /// ranking saw, sorted by property — cached so composition-level
    /// normalisation never re-scans the candidate pool.
    bounds: Vec<(PropertyId, f64, f64)>,
}

impl QosLevels {
    /// Number of levels (including empty intermediate ones).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Candidates of one level (best-first within the level).
    pub fn level(&self, r: usize) -> &[RankedCandidate] {
        self.levels.get(r).map_or(&[], Vec::as_slice)
    }

    /// Candidates of levels `0..=r`, best-first.
    pub fn up_to_level(&self, r: usize) -> impl Iterator<Item = &RankedCandidate> {
        self.levels.iter().take(r + 1).flatten()
    }

    /// All candidates, best-first across levels.
    pub fn iter_best_first(&self) -> impl Iterator<Item = &RankedCandidate> {
        self.levels.iter().flatten()
    }

    /// The single best-ranked candidate.
    pub fn best(&self) -> Option<&RankedCandidate> {
        self.iter_best_first().next()
    }

    /// Total number of candidates.
    pub fn total(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether there is no candidate at all.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The cached raw `(min, max)` of the finite values the ranking saw
    /// for `property` — `None` when no candidate offered a finite value.
    pub fn bound(&self, property: PropertyId) -> Option<(f64, f64)> {
        self.bounds
            .binary_search_by_key(&property, |&(p, ..)| p)
            .ok()
            .map(|i| (self.bounds[i].1, self.bounds[i].2))
    }

    /// Merges another hierarchy into this one (distributed QASSA: the
    /// coordinator unions provider-side digests). Levels are concatenated
    /// pairwise and re-sorted by (class, utility); value bounds widen to
    /// cover both sides.
    pub fn merge(&mut self, other: QosLevels) {
        if other.levels.len() > self.levels.len() {
            self.levels.resize(other.levels.len(), Vec::new());
        }
        for (r, mut level) in other.levels.into_iter().enumerate() {
            self.levels[r].append(&mut level);
            self.levels[r].sort_by(|a, b| {
                a.class
                    .cmp(&b.class)
                    .then(b.utility.total_cmp(&a.utility))
                    .then(a.candidate.id().cmp(&b.candidate.id()))
            });
        }
        for (p, lo, hi) in other.bounds {
            match self.bounds.binary_search_by_key(&p, |&(q, ..)| q) {
                Ok(i) => {
                    self.bounds[i].1 = self.bounds[i].1.min(lo);
                    self.bounds[i].2 = self.bounds[i].2.max(hi);
                }
                Err(i) => self.bounds.insert(i, (p, lo, hi)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::QosVector;
    use qasom_registry::{ServiceDescription, ServiceRegistry};

    fn candidates(model: &QosModel, specs: &[(f64, f64)]) -> Vec<ServiceCandidate> {
        // specs: (response_time, availability)
        let rt = model.property("ResponseTime").unwrap();
        let av = model.property("Availability").unwrap();
        let mut reg = ServiceRegistry::new();
        specs
            .iter()
            .map(|&(t, a)| {
                let id = reg.register(ServiceDescription::new("s", "d#F"));
                let mut q = QosVector::new();
                q.set(rt, t);
                q.set(av, a);
                ServiceCandidate::new(id, q)
            })
            .collect()
    }

    fn props(model: &QosModel) -> Vec<PropertyId> {
        vec![
            model.property("ResponseTime").unwrap(),
            model.property("Availability").unwrap(),
        ]
    }

    #[test]
    fn best_candidates_land_in_level_zero() {
        let m = QosModel::standard();
        let cands = candidates(
            &m,
            &[
                (10.0, 0.99), // uniformly excellent
                (500.0, 0.5), // uniformly terrible
                (10.0, 0.5),  // mixed
            ],
        );
        let levels = LocalRank::default().rank(&m, &cands, &props(&m), &Preferences::default());
        let best = levels.best().unwrap();
        assert_eq!(best.candidate().id(), cands[0].id());
        assert_eq!(best.level(), 0);
        // The uniformly terrible one sits in a deeper level.
        let worst_level = levels
            .iter_best_first()
            .find(|r| r.candidate().id() == cands[1].id())
            .unwrap()
            .level();
        assert!(worst_level > 0);
    }

    #[test]
    fn class_counts_properties_at_worst_rank() {
        let m = QosModel::standard();
        let cands = candidates(
            &m,
            &[
                (10.0, 0.99), // uniformly good: level 0
                (10.0, 0.5),  // one property drags it down
                (500.0, 0.5), // both properties at the bottom
            ],
        );
        let levels = LocalRank::default().rank(&m, &cands, &props(&m), &Preferences::default());
        let by_id = |id| {
            levels
                .iter_best_first()
                .find(|r| r.candidate().id() == id)
                .unwrap()
        };
        let mixed = by_id(cands[1].id());
        let bad = by_id(cands[2].id());
        assert_eq!(mixed.level(), bad.level());
        assert!(mixed.class() < bad.class());
        // And the mixed one is therefore ranked first within the level.
        assert_eq!(
            levels.level(mixed.level())[0].candidate().id(),
            cands[1].id()
        );
    }

    #[test]
    fn missing_property_sinks_below_all_bands() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let mut reg = ServiceRegistry::new();
        let full = {
            let id = reg.register(ServiceDescription::new("a", "d#F"));
            let mut q = QosVector::new();
            q.set(rt, 10.0);
            ServiceCandidate::new(id, q)
        };
        let empty = {
            let id = reg.register(ServiceDescription::new("b", "d#F"));
            ServiceCandidate::new(id, QosVector::new())
        };
        let cfg = LocalRank::default();
        let levels = cfg.rank(
            &m,
            &[full.clone(), empty.clone()],
            &[rt],
            &Preferences::default(),
        );
        let empty_rank = levels
            .iter_best_first()
            .find(|r| r.candidate().id() == empty.id())
            .unwrap();
        assert_eq!(empty_rank.level(), cfg.bands);
        assert_eq!(levels.best().unwrap().candidate().id(), full.id());
    }

    #[test]
    fn up_to_level_grows_monotonically() {
        let m = QosModel::standard();
        let specs: Vec<(f64, f64)> = (0..40)
            .map(|i| (10.0 + f64::from(i) * 20.0, 0.99 - f64::from(i) * 0.01))
            .collect();
        let cands = candidates(&m, &specs);
        let levels = LocalRank::default().rank(&m, &cands, &props(&m), &Preferences::default());
        let mut prev = 0;
        for r in 0..levels.level_count() {
            let n = levels.up_to_level(r).count();
            assert!(n >= prev);
            prev = n;
        }
        assert_eq!(prev, 40);
    }

    #[test]
    fn empty_candidates_give_empty_levels() {
        let m = QosModel::standard();
        let levels = LocalRank::default().rank(&m, &[], &props(&m), &Preferences::default());
        assert!(levels.is_empty());
        assert!(levels.best().is_none());
    }

    #[test]
    fn merge_unions_levels() {
        let m = QosModel::standard();
        let a = candidates(&m, &[(10.0, 0.99), (500.0, 0.5)]);
        let b = candidates(&m, &[(12.0, 0.98), (480.0, 0.55)]);
        let cfg = LocalRank::default();
        let mut la = cfg.rank(&m, &a, &props(&m), &Preferences::default());
        let lb = cfg.rank(&m, &b, &props(&m), &Preferences::default());
        let total = la.total() + lb.total();
        la.merge(lb);
        assert_eq!(la.total(), total);
    }

    #[test]
    fn utilities_are_in_unit_interval() {
        let m = QosModel::standard();
        let specs: Vec<(f64, f64)> = (0..25)
            .map(|i| {
                (
                    10.0 + f64::from(i * 13 % 7) * 30.0,
                    0.5 + f64::from(i % 5) * 0.1,
                )
            })
            .collect();
        let cands = candidates(&m, &specs);
        let levels = LocalRank::default().rank(&m, &cands, &props(&m), &Preferences::default());
        for r in levels.iter_best_first() {
            assert!((0.0..=1.0).contains(&r.utility()), "{}", r.utility());
        }
    }
}
