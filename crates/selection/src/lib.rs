//! QASSA — the QoS-aware service selection algorithm of QASOM — together
//! with its aggregation engine, baselines, workload generators and the
//! distributed variant for ad hoc environments.
//!
//! Selecting one concrete service per abstract activity such that the
//! *aggregated* QoS of the whole composition meets the user's global QoS
//! constraints is NP-hard. QASSA is the efficient heuristic the original
//! middleware contributes; it runs in two phases:
//!
//! 1. **Local selection** ([`local`]): per activity, candidate services
//!    are clustered per QoS property with 1-D K-means into ranked quality
//!    bands; band memberships are combined into **QoS levels** and **QoS
//!    classes**, producing a ranked hierarchy of candidates
//!    ([`QosLevels`]).
//! 2. **Global selection** ([`Qassa`]): a level-wise search assembles one
//!    service per activity starting from the best QoS level, checks the
//!    aggregated QoS ([`Aggregator`]) against the global constraints,
//!    repairs violations by utility-aware swaps, and descends to broader
//!    levels only when needed.
//!
//! The crate also provides:
//!
//! * [`baseline`] — exhaustive (exact optimum), greedy and random
//!   selectors, used for the optimality measurements of the evaluation;
//! * [`workload`] — the normally-distributed synthetic QoS workloads the
//!   figures are generated from;
//! * [`distributed`] — QASSA split across the nodes of a simulated ad hoc
//!   network (local selection on providers, global selection on the
//!   requesting device).
//!
//! # Examples
//!
//! ```
//! use qasom_qos::QosModel;
//! use qasom_selection::workload::WorkloadSpec;
//! use qasom_selection::{AggregationApproach, Qassa};
//!
//! let model = QosModel::standard();
//! let workload = WorkloadSpec::evaluation_default().build(&model, 42);
//! let qassa = Qassa::new(&model);
//! let outcome = qassa.select(&workload.problem()).unwrap();
//! assert!(outcome.feasible);
//! # let _ = AggregationApproach::MeanValue;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
pub mod baseline;
mod candidate;
pub mod distributed;
mod global;
mod kmeans;
pub mod local;
pub mod workload;

pub use aggregate::{AggregationApproach, Aggregator};
pub use candidate::{SelectionProblem, ServiceCandidate};
pub use global::{Qassa, QassaConfig, SelectionError, SelectionOutcome};
pub use kmeans::{kmeans_1d, kmeans_1d_with, Clustering, KmeansScratch};
pub use local::{LocalRank, LocalScratch, QosLevels, RankedCandidate};
