//! QoS aggregation across composition patterns (Table IV.1).

use qasom_qos::{AggregationOp, Dimension, PropertyId, QosModel, QosVector, Tendency};
use qasom_task::{TaskNode, UserTask};

/// How non-deterministic patterns (choice, loop) are folded into one
/// number.
///
/// * **Pessimistic** — assume the worst branch / the maximum iteration
///   count: the aggregate is a guarantee.
/// * **Optimistic** — assume the best branch / a single iteration: the
///   aggregate is a best case.
/// * **MeanValue** — probability-weighted branches and expected iteration
///   counts: the aggregate is an expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationApproach {
    /// Worst-case folding.
    Pessimistic,
    /// Best-case folding.
    Optimistic,
    /// Expected-value folding.
    MeanValue,
}

/// Aggregates per-activity QoS vectors into the QoS of a whole task
/// (the `Q_j` of a composition `C_v`).
///
/// Per-pattern rules, following Table IV.1 of the original evaluation
/// (`op` is the property's sequence-aggregation operator):
///
/// | op \ pattern | sequence | parallel | choice | loop (n iterations) |
/// |---|---|---|---|---|
/// | Sum (time) | Σ | max | approach | n·v |
/// | Sum (other) | Σ | Σ | approach | n·v |
/// | Product | Π | Π | approach | vⁿ |
/// | Min | min | min | approach | v |
/// | Max | max | max | approach | v |
/// | Average | mean | mean | approach | v |
///
/// "approach" picks the worst branch (pessimistic), the best branch
/// (optimistic) or the probability-weighted mean (mean-value); the loop
/// iteration count `n` is likewise the maximum, `1`, or the expected
/// count.
///
/// A property missing from **any** involved activity is missing from the
/// aggregate: unknown quality cannot be vouched for.
///
/// # Examples
///
/// ```
/// use qasom_qos::{QosModel, QosVector};
/// use qasom_selection::{AggregationApproach, Aggregator};
/// use qasom_task::{Activity, TaskNode, UserTask};
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
/// let task = UserTask::new(
///     "t",
///     TaskNode::sequence([
///         TaskNode::activity(Activity::new("a", "x#A")),
///         TaskNode::activity(Activity::new("b", "x#B")),
///     ]),
/// )
/// .unwrap();
///
/// let mut qa = QosVector::new();
/// qa.set(rt, 100.0);
/// let mut qb = QosVector::new();
/// qb.set(rt, 50.0);
///
/// let agg = Aggregator::new(&model, AggregationApproach::MeanValue);
/// let total = agg.aggregate(&task, &[qa, qb], &[rt]);
/// assert_eq!(total.get(rt), Some(150.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Aggregator<'a> {
    model: &'a QosModel,
    approach: AggregationApproach,
}

impl<'a> Aggregator<'a> {
    /// Creates an aggregator using `approach` for non-deterministic
    /// patterns.
    pub fn new(model: &'a QosModel, approach: AggregationApproach) -> Self {
        Aggregator { model, approach }
    }

    /// The configured approach.
    pub fn approach(&self) -> AggregationApproach {
        self.approach
    }

    /// Aggregates the QoS of a task given one QoS vector per activity
    /// (`assignments[i]` belongs to the activity with DFS index `i`) over
    /// the given properties.
    ///
    /// # Panics
    ///
    /// Panics when `assignments.len()` differs from the task's activity
    /// count.
    pub fn aggregate(
        &self,
        task: &UserTask,
        assignments: &[QosVector],
        properties: &[PropertyId],
    ) -> QosVector {
        let refs: Vec<&QosVector> = assignments.iter().collect();
        self.aggregate_refs(task, &refs, properties)
    }

    /// [`Aggregator::aggregate`] over borrowed vectors — the hot-path
    /// variant: the global phase scores thousands of assignments per
    /// selection, and borrowing spares one deep vector clone per
    /// activity per evaluation.
    ///
    /// # Panics
    ///
    /// Panics when `assignments.len()` differs from the task's activity
    /// count.
    pub fn aggregate_refs(
        &self,
        task: &UserTask,
        assignments: &[&QosVector],
        properties: &[PropertyId],
    ) -> QosVector {
        assert_eq!(
            assignments.len(),
            task.activity_count(),
            "one QoS vector per activity is required"
        );
        let mut out = QosVector::new();
        for &p in properties {
            let mut idx = 0;
            if let Some(v) = self.fold(task.root(), assignments, p, &mut idx) {
                out.set(p, v);
            }
        }
        out
    }

    /// Aggregates a single property; `idx` is the DFS activity cursor.
    fn fold(
        &self,
        node: &TaskNode,
        assignments: &[&QosVector],
        property: PropertyId,
        idx: &mut usize,
    ) -> Option<f64> {
        let def = self.model.def(property);
        let op = def.aggregation();
        match node {
            TaskNode::Activity(_) => {
                let v = assignments[*idx].get(property);
                *idx += 1;
                v
            }
            TaskNode::Sequence(cs) => {
                let vals = self.fold_children(cs.iter(), assignments, property, idx)?;
                Some(combine_sequence(op, &vals))
            }
            TaskNode::Parallel(cs) => {
                let vals = self.fold_children(cs.iter(), assignments, property, idx)?;
                Some(combine_parallel(op, def.unit().dimension(), &vals))
            }
            TaskNode::Choice(bs) => {
                let mut vals = Vec::with_capacity(bs.len());
                let mut missing = false;
                for (prob, c) in bs {
                    match self.fold(c, assignments, property, idx) {
                        Some(v) => vals.push((*prob, v)),
                        None => missing = true,
                    }
                }
                if missing || vals.is_empty() {
                    return None;
                }
                self.combine_choice(def.tendency(), &vals)
            }
            TaskNode::Loop { body, bound } => {
                let v = self.fold(body, assignments, property, idx)?;
                let n = match self.approach {
                    AggregationApproach::Pessimistic => f64::from(bound.max()),
                    AggregationApproach::Optimistic => 1.0,
                    AggregationApproach::MeanValue => bound.expected().max(1.0),
                };
                Some(scale_loop(op, v, n))
            }
        }
    }

    fn fold_children<'n>(
        &self,
        children: impl Iterator<Item = &'n TaskNode>,
        assignments: &[&QosVector],
        property: PropertyId,
        idx: &mut usize,
    ) -> Option<Vec<f64>> {
        let mut vals = Vec::new();
        let mut missing = false;
        for c in children {
            match self.fold(c, assignments, property, idx) {
                Some(v) => vals.push(v),
                None => missing = true,
            }
        }
        (!missing && !vals.is_empty()).then_some(vals)
    }

    /// Folds the branch values of a choice; `None` only for an empty
    /// slice (which the caller already screens out), so the reduce-based
    /// arms need no panicking unwrap.
    fn combine_choice(&self, tendency: Tendency, vals: &[(f64, f64)]) -> Option<f64> {
        match self.approach {
            AggregationApproach::Pessimistic => vals
                .iter()
                .map(|&(_, v)| v)
                .reduce(|a, b| tendency.worse(a, b)),
            AggregationApproach::Optimistic => vals
                .iter()
                .map(|&(_, v)| v)
                .reduce(|a, b| tendency.better(a, b)),
            AggregationApproach::MeanValue => {
                let total_p: f64 = vals.iter().map(|&(p, _)| p).sum();
                (!vals.is_empty()).then(|| vals.iter().map(|&(p, v)| p * v).sum::<f64>() / total_p)
            }
        }
    }
}

fn combine_sequence(op: AggregationOp, vals: &[f64]) -> f64 {
    match op {
        AggregationOp::Sum => vals.iter().sum(),
        AggregationOp::Product => vals.iter().product(),
        AggregationOp::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
        AggregationOp::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggregationOp::Average => vals.iter().sum::<f64>() / vals.len() as f64,
    }
}

fn combine_parallel(op: AggregationOp, dimension: Dimension, vals: &[f64]) -> f64 {
    match op {
        // Time-like additive properties overlap in parallel: the slowest
        // branch dominates. Money/energy still add up.
        AggregationOp::Sum if dimension == Dimension::Time => {
            vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
        other => combine_sequence(other, vals),
    }
}

fn scale_loop(op: AggregationOp, v: f64, n: f64) -> f64 {
    match op {
        AggregationOp::Sum => v * n,
        AggregationOp::Product => v.powf(n),
        AggregationOp::Min | AggregationOp::Max | AggregationOp::Average => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_task::{Activity, LoopBound};

    struct Fx {
        model: QosModel,
        rt: PropertyId,
        av: PropertyId,
        price: PropertyId,
        thr: PropertyId,
    }

    fn fx() -> Fx {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let av = model.property("Availability").unwrap();
        let price = model.property("Price").unwrap();
        let thr = model.property("Throughput").unwrap();
        Fx {
            model,
            rt,
            av,
            price,
            thr,
        }
    }

    fn act(name: &str) -> TaskNode {
        TaskNode::activity(Activity::new(name, "t#F"))
    }

    fn qv(pairs: &[(PropertyId, f64)]) -> QosVector {
        pairs.iter().copied().collect()
    }

    fn agg(
        f: &Fx,
        approach: AggregationApproach,
        node: TaskNode,
        assignments: &[QosVector],
        p: PropertyId,
    ) -> Option<f64> {
        let task = UserTask::new("t", node).unwrap();
        Aggregator::new(&f.model, approach)
            .aggregate(&task, assignments, &[p])
            .get(p)
    }

    #[test]
    fn table_iv1_sequence_rules() {
        let f = fx();
        let node = TaskNode::sequence([act("a"), act("b")]);
        let a = qv(&[(f.rt, 100.0), (f.av, 0.9), (f.price, 2.0), (f.thr, 10.0)]);
        let b = qv(&[(f.rt, 50.0), (f.av, 0.8), (f.price, 3.0), (f.thr, 4.0)]);
        let m = AggregationApproach::MeanValue;
        assert_eq!(
            agg(&f, m, node.clone(), &[a.clone(), b.clone()], f.rt),
            Some(150.0)
        );
        assert_eq!(
            agg(&f, m, node.clone(), &[a.clone(), b.clone()], f.av),
            Some(0.9 * 0.8)
        );
        assert_eq!(
            agg(&f, m, node.clone(), &[a.clone(), b.clone()], f.price),
            Some(5.0)
        );
        assert_eq!(agg(&f, m, node, &[a, b], f.thr), Some(4.0));
    }

    #[test]
    fn table_iv1_parallel_rules() {
        let f = fx();
        let node = TaskNode::parallel([act("a"), act("b")]);
        let a = qv(&[(f.rt, 100.0), (f.av, 0.9), (f.price, 2.0), (f.thr, 10.0)]);
        let b = qv(&[(f.rt, 50.0), (f.av, 0.8), (f.price, 3.0), (f.thr, 4.0)]);
        let m = AggregationApproach::MeanValue;
        // Parallel response time = max, price still adds up.
        assert_eq!(
            agg(&f, m, node.clone(), &[a.clone(), b.clone()], f.rt),
            Some(100.0)
        );
        assert_eq!(
            agg(&f, m, node.clone(), &[a.clone(), b.clone()], f.price),
            Some(5.0)
        );
        assert_eq!(
            agg(&f, m, node.clone(), &[a.clone(), b.clone()], f.av),
            Some(0.9 * 0.8)
        );
        assert_eq!(agg(&f, m, node, &[a, b], f.thr), Some(4.0));
    }

    #[test]
    fn choice_depends_on_approach() {
        let f = fx();
        let node = TaskNode::choice([(0.25, act("a")), (0.75, act("b"))]);
        let a = qv(&[(f.rt, 100.0)]);
        let b = qv(&[(f.rt, 200.0)]);
        assert_eq!(
            agg(
                &f,
                AggregationApproach::Pessimistic,
                node.clone(),
                &[a.clone(), b.clone()],
                f.rt
            ),
            Some(200.0)
        );
        assert_eq!(
            agg(
                &f,
                AggregationApproach::Optimistic,
                node.clone(),
                &[a.clone(), b.clone()],
                f.rt
            ),
            Some(100.0)
        );
        assert_eq!(
            agg(&f, AggregationApproach::MeanValue, node, &[a, b], f.rt),
            Some(175.0)
        );
    }

    #[test]
    fn choice_pessimism_respects_tendency() {
        let f = fx();
        let node = TaskNode::choice([(0.5, act("a")), (0.5, act("b"))]);
        let a = qv(&[(f.av, 0.99)]);
        let b = qv(&[(f.av, 0.8)]);
        // For higher-is-better the worst branch is the *lower* value.
        assert_eq!(
            agg(&f, AggregationApproach::Pessimistic, node, &[a, b], f.av),
            Some(0.8)
        );
    }

    #[test]
    fn loop_scaling_per_approach() {
        let f = fx();
        let node = TaskNode::repeat(act("a"), LoopBound::new(3.0, 10));
        let a = qv(&[(f.rt, 10.0), (f.av, 0.9)]);
        assert_eq!(
            agg(
                &f,
                AggregationApproach::Pessimistic,
                node.clone(),
                std::slice::from_ref(&a),
                f.rt
            ),
            Some(100.0)
        );
        assert_eq!(
            agg(
                &f,
                AggregationApproach::Optimistic,
                node.clone(),
                std::slice::from_ref(&a),
                f.rt
            ),
            Some(10.0)
        );
        assert_eq!(
            agg(
                &f,
                AggregationApproach::MeanValue,
                node.clone(),
                std::slice::from_ref(&a),
                f.rt
            ),
            Some(30.0)
        );
        // Product ops use powers.
        let av_pess = agg(&f, AggregationApproach::Pessimistic, node, &[a], f.av).unwrap();
        assert!((av_pess - 0.9f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn missing_value_makes_aggregate_missing() {
        let f = fx();
        let node = TaskNode::sequence([act("a"), act("b")]);
        let a = qv(&[(f.rt, 100.0)]);
        let b = qv(&[]);
        assert_eq!(
            agg(&f, AggregationApproach::MeanValue, node, &[a, b], f.rt),
            None
        );
    }

    #[test]
    fn nested_structure_aggregates_inside_out() {
        let f = fx();
        // seq(a, par(b, c)) on response time: 10 + max(20, 30) = 40.
        let node = TaskNode::sequence([act("a"), TaskNode::parallel([act("b"), act("c")])]);
        let vecs = [
            qv(&[(f.rt, 10.0)]),
            qv(&[(f.rt, 20.0)]),
            qv(&[(f.rt, 30.0)]),
        ];
        assert_eq!(
            agg(&f, AggregationApproach::MeanValue, node, &vecs, f.rt),
            Some(40.0)
        );
    }

    #[test]
    fn activity_cursor_advances_through_skipped_branches() {
        let f = fx();
        // Choice with a missing branch must not desynchronise later
        // activities.
        let node = TaskNode::sequence([
            TaskNode::choice([(0.5, act("a")), (0.5, act("b"))]),
            act("c"),
        ]);
        let vecs = [
            qv(&[(f.rt, 1.0)]),
            qv(&[]), // b missing rt
            qv(&[(f.rt, 7.0)]),
        ];
        // rt missing overall (choice has a missing branch), but the fold
        // must still consume all three activity slots without panicking.
        assert_eq!(
            agg(&f, AggregationApproach::MeanValue, node, &vecs, f.rt),
            None
        );
    }

    #[test]
    #[should_panic(expected = "one QoS vector per activity")]
    fn wrong_assignment_count_panics() {
        let f = fx();
        let task = UserTask::new("t", act("a")).unwrap();
        let _ = Aggregator::new(&f.model, AggregationApproach::MeanValue).aggregate(
            &task,
            &[],
            &[f.rt],
        );
    }

    #[test]
    fn average_op_means_over_children() {
        let f = fx();
        let rep = f.model.property("Reputation").unwrap();
        let node = TaskNode::sequence([act("a"), act("b")]);
        let a = qv(&[(rep, 4.0)]);
        let b = qv(&[(rep, 2.0)]);
        assert_eq!(
            agg(&f, AggregationApproach::MeanValue, node, &[a, b], rep),
            Some(3.0)
        );
    }
}
