//! QASSA phase 2 — global selection under global QoS constraints.

use std::fmt;
use std::sync::Arc;

use qasom_obs::{keys, Recorder};
use qasom_qos::utility::utility;
use qasom_qos::{Normalizer, Preferences, PropertyId, QosVector, Tendency};
use qasom_task::UserTask;

use crate::{
    Aggregator, LocalRank, LocalScratch, QosLevels, RankedCandidate, SelectionProblem,
    ServiceCandidate,
};

/// Configuration of the QASSA selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QassaConfig {
    /// Local-selection (clustering) parameters.
    pub local: LocalRank,
    /// Repair-swap budget per explored level.
    pub max_repairs_per_level: usize,
    /// When the level-wise search finds no feasible composition and the
    /// full candidate space spans at most this many compositions, fall
    /// back to an exact scan — small problems become complete while the
    /// heuristic's bounded cost at scale is preserved.
    pub exact_fallback_cap: u128,
}

impl Default for QassaConfig {
    fn default() -> Self {
        QassaConfig {
            local: LocalRank::default(),
            max_repairs_per_level: 64,
            exact_fallback_cap: 50_000,
        }
    }
}

/// Structural errors of a selection problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// An activity has no candidate service at all (discovery failed).
    NoCandidates {
        /// DFS index of the uncovered activity.
        activity: usize,
    },
    /// The candidate matrix does not line up with the task's activities.
    ArityMismatch {
        /// Number of activities in the task.
        expected: usize,
        /// Number of candidate sets provided.
        found: usize,
    },
    /// A distributed run was cut short: the simulator exhausted its event
    /// cap before the protocol completed, so no outcome was produced.
    ProtocolAborted {
        /// Events the simulator processed before giving up.
        processed_events: u64,
    },
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::NoCandidates { activity } => {
                write!(f, "activity #{activity} has no candidate service")
            }
            SelectionError::ArityMismatch { expected, found } => write!(
                f,
                "expected {expected} candidate sets (one per activity), found {found}"
            ),
            SelectionError::ProtocolAborted { processed_events } => write!(
                f,
                "distributed protocol aborted: simulation event cap exhausted \
                 after {processed_events} events"
            ),
        }
    }
}

impl std::error::Error for SelectionError {}

/// Result of a QASSA run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// The selected service per activity (DFS order).
    pub assignment: Vec<ServiceCandidate>,
    /// Aggregated QoS of the selected composition (`QoS_{C_v}`).
    pub aggregated: QosVector,
    /// SAW utility of the composition (`F_{C_v}`), in `[0, 1]`.
    pub utility: f64,
    /// Whether every global constraint is satisfied.
    pub feasible: bool,
    /// Number of QoS levels the search had to open.
    pub levels_explored: usize,
    /// Per-activity candidates ranked best-first — the alternates kept for
    /// dynamic binding and service substitution.
    pub ranked: Vec<Vec<ServiceCandidate>>,
    /// The local-phase hierarchies the global phase ran over, one per
    /// activity, shared so delta re-selection can reuse unaffected
    /// activities without re-ranking (or even re-discovering) them.
    /// Empty when the caller supplied plain borrowed levels
    /// ([`Qassa::select_with_levels`]) or no levels exist (baselines).
    pub levels: Vec<Arc<QosLevels>>,
}

/// The QASSA selector: clustering-based local selection + level-wise
/// global selection.
///
/// # Examples
///
/// ```
/// use qasom_qos::QosModel;
/// use qasom_selection::workload::WorkloadSpec;
/// use qasom_selection::Qassa;
///
/// let model = QosModel::standard();
/// let w = WorkloadSpec::evaluation_default().build(&model, 7);
/// let outcome = Qassa::new(&model).select(&w.problem()).unwrap();
/// assert!(outcome.utility >= 0.0 && outcome.utility <= 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Qassa<'a> {
    model: &'a qasom_qos::QosModel,
    config: QassaConfig,
    recorder: Option<&'a dyn Recorder>,
}

/// Work counters of one global-phase run, flushed to the recorder (if
/// any) once the run finishes — instrumentation never touches the
/// search itself.
#[derive(Debug, Default, Clone, Copy)]
struct GlobalTally {
    utility_evals: u64,
    repair_swaps: u64,
    pruned: u64,
    exact_fallback: bool,
}

impl<'a> Qassa<'a> {
    /// Creates a selector with the default configuration.
    pub fn new(model: &'a qasom_qos::QosModel) -> Self {
        Qassa {
            model,
            config: QassaConfig::default(),
            recorder: None,
        }
    }

    /// Creates a selector with an explicit configuration.
    pub fn with_config(model: &'a qasom_qos::QosModel, config: QassaConfig) -> Self {
        Qassa {
            model,
            config,
            recorder: None,
        }
    }

    /// Routes per-run counters (utility evaluations, repair swaps,
    /// levels explored, exact fallbacks) through `recorder`. Observation
    /// only: outcomes are identical with or without one.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &QassaConfig {
        &self.config
    }

    /// Runs only the local selection phase, returning one ranked hierarchy
    /// per activity.
    ///
    /// # Errors
    ///
    /// Fails when the candidate matrix is malformed (see
    /// [`SelectionError`]).
    pub fn local_phase(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<Vec<QosLevels>, SelectionError> {
        self.validate(problem)?;
        let properties = problem.properties();
        // One scratch arena across the whole task: every activity after
        // the first ranks into already-warm buffers.
        let mut scratch = LocalScratch::new();
        let levels: Vec<QosLevels> = problem
            .candidates()
            .iter()
            .map(|cands| {
                self.config.local.rank_with(
                    self.model,
                    cands,
                    &properties,
                    problem.preferences(),
                    &mut scratch,
                )
            })
            .collect();
        self.record_hotpath(levels.len(), properties.len());
        Ok(levels)
    }

    /// Like [`Qassa::local_phase`] but ranks the activities' candidate
    /// sets on parallel threads — local selection is embarrassingly
    /// parallel across activities, which is also what makes the
    /// [distributed variant](crate::distributed) work.
    ///
    /// Results are identical to [`Qassa::local_phase`]: ranking one
    /// activity reads only that activity's candidates, and the output
    /// order mirrors the input order. Without the `parallel` feature
    /// this *is* the sequential local phase.
    ///
    /// # Errors
    ///
    /// Fails when the candidate matrix is malformed.
    pub fn local_phase_parallel(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<Vec<QosLevels>, SelectionError> {
        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            self.validate(problem)?;
            let properties = problem.properties();
            let levels: Vec<QosLevels> = problem
                .candidates()
                .par_iter()
                .map(|cands| {
                    self.config
                        .local
                        .rank(self.model, cands, &properties, problem.preferences())
                })
                .collect();
            // Same counter values as the serial phase (each worker owns a
            // scratch, so the reuse opportunities are identical) — the
            // feature matrix must not change observed counters.
            self.record_hotpath(levels.len(), properties.len());
            Ok(levels)
        }
        #[cfg(not(feature = "parallel"))]
        self.local_phase(problem)
    }

    /// Flushes hot-path totals of one local phase: flat value columns
    /// materialised and rankings that hit a warm scratch arena.
    fn record_hotpath(&self, activities: usize, properties: usize) {
        if let Some(rec) = self.recorder {
            rec.incr(
                keys::SELECTION_HOTPATH_COLUMNS,
                (activities * properties) as u64,
            );
            rec.incr(
                keys::SELECTION_HOTPATH_SCRATCH_REUSES,
                activities.saturating_sub(1) as u64,
            );
        }
    }

    /// Runs the full algorithm.
    ///
    /// # Errors
    ///
    /// Fails when the candidate matrix is malformed; an *infeasible*
    /// problem is not an error — the outcome's `feasible` flag is `false`
    /// and the assignment is the least-violating composition found.
    pub fn select(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<SelectionOutcome, SelectionError> {
        let levels = self.local_phase(problem)?;
        self.record_local(&levels);
        let shared: Vec<Arc<QosLevels>> = levels.into_iter().map(Arc::new).collect();
        self.select_with_shared_levels(problem, &shared)
    }

    /// [`Qassa::select`] with the parallel local phase — the right choice
    /// on multi-core devices with many services per activity.
    ///
    /// # Errors
    ///
    /// Fails when the candidate matrix is malformed.
    pub fn select_parallel(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<SelectionOutcome, SelectionError> {
        let levels = self.local_phase_parallel(problem)?;
        self.record_local(&levels);
        let shared: Vec<Arc<QosLevels>> = levels.into_iter().map(Arc::new).collect();
        self.select_with_shared_levels(problem, &shared)
    }

    /// Flushes local-phase totals (activities ranked, clusters produced,
    /// candidates ranked) after the fan-out has joined, so emission
    /// order stays deterministic even under the `parallel` feature.
    fn record_local(&self, levels: &[QosLevels]) {
        if let Some(rec) = self.recorder {
            rec.incr(keys::SELECTION_LOCAL_RANKS, levels.len() as u64);
            rec.incr(
                keys::SELECTION_LOCAL_LEVELS,
                levels.iter().map(|l| l.level_count() as u64).sum(),
            );
            rec.incr(
                keys::SELECTION_LOCAL_CANDIDATES,
                levels.iter().map(|l| l.total() as u64).sum(),
            );
        }
    }

    /// Runs the global phase over precomputed local hierarchies
    /// (distributed QASSA merges provider-side hierarchies first).
    ///
    /// The global phase is driven entirely by `levels` — the problem
    /// contributes task, constraints, preferences and approach, so the
    /// candidate matrix may be left empty. The outcome's `levels` field
    /// stays empty here; use [`Qassa::select_with_shared_levels`] to
    /// carry the hierarchies forward for delta re-selection.
    ///
    /// # Errors
    ///
    /// Fails when the hierarchies do not line up with the task.
    pub fn select_with_levels(
        &self,
        problem: &SelectionProblem<'_>,
        levels: &[QosLevels],
    ) -> Result<SelectionOutcome, SelectionError> {
        let refs: Vec<&QosLevels> = levels.iter().collect();
        self.select_with_level_refs(problem, &refs)
    }

    /// [`Qassa::select_with_levels`] over shared hierarchies: the
    /// returned outcome holds clones of the `Arc`s, so a later delta
    /// re-selection reuses unaffected activities at pointer cost.
    ///
    /// # Errors
    ///
    /// Fails when the hierarchies do not line up with the task.
    pub fn select_with_shared_levels(
        &self,
        problem: &SelectionProblem<'_>,
        levels: &[Arc<QosLevels>],
    ) -> Result<SelectionOutcome, SelectionError> {
        let refs: Vec<&QosLevels> = levels.iter().map(Arc::as_ref).collect();
        let mut outcome = self.select_with_level_refs(problem, &refs)?;
        outcome.levels = levels.to_vec();
        Ok(outcome)
    }

    fn select_with_level_refs(
        &self,
        problem: &SelectionProblem<'_>,
        levels: &[&QosLevels],
    ) -> Result<SelectionOutcome, SelectionError> {
        let mut tally = GlobalTally::default();
        let result = self.global_phase(problem, levels, &mut tally);
        if let Some(rec) = self.recorder {
            rec.incr(keys::SELECTION_RUNS, 1);
            rec.incr(keys::SELECTION_UTILITY_EVALS, tally.utility_evals);
            rec.incr(keys::SELECTION_REPAIR_SWAPS, tally.repair_swaps);
            rec.incr(keys::SELECTION_PRUNED, tally.pruned);
            if tally.exact_fallback {
                rec.incr(keys::SELECTION_EXACT_FALLBACKS, 1);
            }
            if let Ok(out) = &result {
                rec.incr(keys::SELECTION_LEVELS_EXPLORED, out.levels_explored as u64);
            }
            // A span on the run's own logical clock: one tick per full
            // assignment evaluated.
            rec.span(keys::SPAN_SELECT, 0, tally.utility_evals);
        }
        result
    }

    fn global_phase(
        &self,
        problem: &SelectionProblem<'_>,
        levels: &[&QosLevels],
        tally: &mut GlobalTally,
    ) -> Result<SelectionOutcome, SelectionError> {
        self.validate_levels(problem, levels)?;
        let properties = problem.properties();
        let aggregator = Aggregator::new(self.model, problem.approach());
        let normalizer = self.composition_normalizer_from_levels(
            problem.task(),
            &properties,
            &aggregator,
            levels,
        );

        // Per-activity candidates, best-first (levels flattened).
        let all: Vec<Vec<&RankedCandidate>> = levels
            .iter()
            .map(|l| l.iter_best_first().collect())
            .collect();
        let max_levels = levels.iter().map(|l| l.level_count()).max().unwrap_or(0);

        let mut best_infeasible: Option<(usize, f64, Vec<usize>, QosVector)> = None;

        // Prefix length of each activity's list at the current level,
        // grown incrementally from the hierarchies' per-level sizes (the
        // flattened lists are level-grouped, so the prefix of candidates
        // with `level <= r` is exactly the cumulative level size).
        let mut pools: Vec<usize> = vec![0; levels.len()];
        for r in 0..max_levels {
            for (pool, l) in pools.iter_mut().zip(levels) {
                *pool += l.level(r).len();
            }
            if pools.contains(&0) {
                continue;
            }

            let mut current: Vec<usize> = vec![0; all.len()];
            for _ in 0..=self.config.max_repairs_per_level {
                let aggregated =
                    self.aggregate_assignment(problem, &aggregator, &all, &current, &properties);
                tally.utility_evals += 1;
                let violations: Vec<_> = problem
                    .constraints()
                    .violations(&aggregated)
                    .copied()
                    .collect();
                if violations.is_empty() {
                    // Candidates outside every admitted prefix were
                    // pruned: the search never had to look at them.
                    tally.pruned = all
                        .iter()
                        .zip(&pools)
                        .map(|(cands, &used)| (cands.len() - used) as u64)
                        .sum();
                    return Ok(self.outcome(
                        problem,
                        &all,
                        &current,
                        aggregated,
                        &normalizer,
                        true,
                        r + 1,
                    ));
                }
                // Track the least-violating assignment seen anywhere.
                let severity = violation_severity(&violations, &aggregated);
                if best_infeasible
                    .as_ref()
                    .is_none_or(|(n, s, ..)| severity < (*n, *s))
                {
                    best_infeasible =
                        Some((severity.0, severity.1, current.clone(), aggregated.clone()));
                }
                // Repair the worst violation with the most improving swap.
                let Some(worst) = violations.iter().max_by(|a, b| {
                    relative_violation(a, &aggregated)
                        .total_cmp(&relative_violation(b, &aggregated))
                }) else {
                    break; // violations is non-empty, but widen over panicking
                };
                match self.best_swap(&all, &pools, &current, worst.property(), worst.tendency()) {
                    Some((activity, j)) => {
                        tally.repair_swaps += 1;
                        current[activity] = j;
                    }
                    None => break, // unfixable at this level: widen
                }
            }
        }

        // The level-wise heuristic found nothing feasible. On small
        // problems, scan the whole space exactly before giving up.
        let combinations: u128 = all.iter().map(|c| c.len() as u128).product();
        if combinations <= self.config.exact_fallback_cap {
            tally.exact_fallback = true;
            tally.utility_evals += u64::try_from(combinations).unwrap_or(u64::MAX);
            if let Some(current) =
                self.exact_scan(problem, &aggregator, &all, &properties, &normalizer)
            {
                let aggregated =
                    self.aggregate_assignment(problem, &aggregator, &all, &current, &properties);
                return Ok(self.outcome(
                    problem,
                    &all,
                    &current,
                    aggregated,
                    &normalizer,
                    true,
                    max_levels,
                ));
            }
        }

        // No feasible composition: return the least-violating one.
        let (_, _, current, aggregated) =
            best_infeasible.ok_or(SelectionError::NoCandidates { activity: 0 })?;
        Ok(self.outcome(
            problem,
            &all,
            &current,
            aggregated,
            &normalizer,
            false,
            max_levels,
        ))
    }

    /// Aggregated QoS and SAW utility of an arbitrary assignment — the
    /// exact scoring QASSA itself uses, exposed so baselines compare
    /// apples to apples.
    pub fn evaluate(
        &self,
        problem: &SelectionProblem<'_>,
        assignment: &[ServiceCandidate],
    ) -> (QosVector, f64) {
        let properties = problem.properties();
        let aggregator = Aggregator::new(self.model, problem.approach());
        let pools: Vec<Vec<&QosVector>> = problem
            .candidates()
            .iter()
            .map(|cands| cands.iter().map(ServiceCandidate::qos).collect())
            .collect();
        let normalizer =
            self.composition_normalizer(problem.task(), &properties, &aggregator, &pools);
        let vectors: Vec<&QosVector> = assignment.iter().map(ServiceCandidate::qos).collect();
        let aggregated = aggregator.aggregate_refs(problem.task(), &vectors, &properties);
        let u = utility(
            &aggregated,
            &normalizer,
            &self.effective_preferences(problem, &properties),
        );
        (aggregated, u)
    }

    fn validate(&self, problem: &SelectionProblem<'_>) -> Result<(), SelectionError> {
        let expected = problem.task().activity_count();
        let found = problem.candidates().len();
        if expected != found {
            return Err(SelectionError::ArityMismatch { expected, found });
        }
        if let Some(activity) = problem.candidates().iter().position(Vec::is_empty) {
            return Err(SelectionError::NoCandidates { activity });
        }
        Ok(())
    }

    /// The global phase's own validation: hierarchies, not the problem's
    /// candidate matrix, must line up with the task — a delta re-selection
    /// hands over cached hierarchies with an intentionally empty matrix.
    fn validate_levels(
        &self,
        problem: &SelectionProblem<'_>,
        levels: &[&QosLevels],
    ) -> Result<(), SelectionError> {
        let expected = problem.task().activity_count();
        let found = levels.len();
        if expected != found {
            return Err(SelectionError::ArityMismatch { expected, found });
        }
        if let Some(activity) = levels.iter().position(|l| l.is_empty()) {
            return Err(SelectionError::NoCandidates { activity });
        }
        Ok(())
    }

    fn effective_preferences(
        &self,
        problem: &SelectionProblem<'_>,
        properties: &[PropertyId],
    ) -> Preferences {
        if problem.preferences().is_empty() {
            Preferences::uniform(properties.iter().copied())
        } else {
            problem.preferences().clone()
        }
    }

    /// [`Qassa::composition_normalizer`] from the hierarchies' cached
    /// per-property value bounds (recorded during the local phase's
    /// single column pass): `O(activities × properties)` instead of a
    /// re-scan of every candidate. Non-finite advertised values never
    /// enter the cached bounds, so an unreachable host's infinite
    /// perceived response time cannot stretch the normalisation range
    /// and flatten every utility to the same score.
    fn composition_normalizer_from_levels(
        &self,
        task: &UserTask,
        properties: &[PropertyId],
        aggregator: &Aggregator<'_>,
        levels: &[&QosLevels],
    ) -> Normalizer {
        let mut best = Vec::with_capacity(levels.len());
        let mut worst = Vec::with_capacity(levels.len());
        for l in levels {
            let mut b = QosVector::new();
            let mut w = QosVector::new();
            for &p in properties {
                if let Some((lo, hi)) = l.bound(p) {
                    let (bv, wv) = match self.model.tendency(p) {
                        Tendency::LowerBetter => (lo, hi),
                        Tendency::HigherBetter => (hi, lo),
                    };
                    b.set(p, bv);
                    w.set(p, wv);
                }
            }
            best.push(b);
            worst.push(w);
        }
        let mut normalizer = Normalizer::default();
        for bound in [
            aggregator.aggregate(task, &best, properties),
            aggregator.aggregate(task, &worst, properties),
        ] {
            for (p, v) in bound.iter() {
                normalizer.include(self.model, p, v);
            }
        }
        normalizer
    }

    /// Fits composition-level normalisation bounds by aggregating the
    /// per-activity best and worst values (aggregation is monotone per
    /// argument, so these are true bounds of the composition space).
    /// Order-independent in each pool, so candidate-matrix order and
    /// level-hierarchy order fit identical bounds.
    fn composition_normalizer(
        &self,
        task: &UserTask,
        properties: &[PropertyId],
        aggregator: &Aggregator<'_>,
        pools: &[Vec<&QosVector>],
    ) -> Normalizer {
        let mut best = Vec::with_capacity(pools.len());
        let mut worst = Vec::with_capacity(pools.len());
        for cands in pools {
            let mut b = QosVector::new();
            let mut w = QosVector::new();
            for &p in properties {
                let tendency = self.model.tendency(p);
                let mut b_val: Option<f64> = None;
                let mut w_val: Option<f64> = None;
                for qos in cands {
                    if let Some(v) = qos.get(p) {
                        b_val = Some(b_val.map_or(v, |cur| tendency.better(cur, v)));
                        w_val = Some(w_val.map_or(v, |cur| tendency.worse(cur, v)));
                    }
                }
                if let (Some(bv), Some(wv)) = (b_val, w_val) {
                    b.set(p, bv);
                    w.set(p, wv);
                }
            }
            best.push(b);
            worst.push(w);
        }
        let mut normalizer = Normalizer::default();
        for bound in [
            aggregator.aggregate(task, &best, properties),
            aggregator.aggregate(task, &worst, properties),
        ] {
            for (p, v) in bound.iter() {
                normalizer.include(self.model, p, v);
            }
        }
        normalizer
    }

    /// Exhaustively scans the (small) full space, returning the
    /// best-utility feasible assignment's indices, if any.
    fn exact_scan(
        &self,
        problem: &SelectionProblem<'_>,
        aggregator: &Aggregator<'_>,
        all: &[Vec<&RankedCandidate>],
        properties: &[PropertyId],
        normalizer: &Normalizer,
    ) -> Option<Vec<usize>> {
        let n = all.len();
        let prefs = self.effective_preferences(problem, properties);
        let mut indices = vec![0usize; n];
        let mut best: Option<(f64, Vec<usize>)> = None;
        loop {
            let aggregated =
                self.aggregate_assignment(problem, aggregator, all, &indices, properties);
            if problem.constraints().satisfied_by(&aggregated) {
                let u = utility(&aggregated, normalizer, &prefs);
                if best.as_ref().is_none_or(|(bu, _)| u > *bu) {
                    best = Some((u, indices.clone()));
                }
            }
            // Odometer increment.
            let mut k = n;
            loop {
                if k == 0 {
                    return best.map(|(_, idx)| idx);
                }
                k -= 1;
                indices[k] += 1;
                if indices[k] < all[k].len() {
                    break;
                }
                indices[k] = 0;
                if k == 0 {
                    return best.map(|(_, idx)| idx);
                }
            }
        }
    }

    fn aggregate_assignment(
        &self,
        problem: &SelectionProblem<'_>,
        aggregator: &Aggregator<'_>,
        all: &[Vec<&RankedCandidate>],
        current: &[usize],
        properties: &[PropertyId],
    ) -> QosVector {
        let vectors: Vec<&QosVector> = current
            .iter()
            .enumerate()
            .map(|(i, &j)| all[i][j].candidate().qos())
            .collect();
        aggregator.aggregate_refs(problem.task(), &vectors, properties)
    }

    /// The swap most improving `property`: for each activity, the
    /// pool candidate strictly better than the current choice on the
    /// property; across activities, the largest improvement wins (ties:
    /// smallest utility loss).
    fn best_swap(
        &self,
        all: &[Vec<&RankedCandidate>],
        pools: &[usize],
        current: &[usize],
        property: PropertyId,
        tendency: Tendency,
    ) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, f64, f64)> = None; // (i, j, gain, util_delta)
        for (i, cands) in all.iter().enumerate() {
            let cur = cands[current[i]];
            let cur_val = cur.candidate().qos().get(property);
            for (j, cand) in cands.iter().enumerate().take(pools[i]) {
                if j == current[i] {
                    continue;
                }
                let Some(v) = cand.candidate().qos().get(property) else {
                    continue;
                };
                let better = match cur_val {
                    Some(c) => tendency.at_least_as_good(v, c) && v != c,
                    None => true,
                };
                if !better {
                    continue;
                }
                let gain = match cur_val {
                    Some(c) => (v - c).abs(),
                    None => f64::INFINITY,
                };
                let util_delta = cand.utility() - cur.utility();
                let candidate_key = (gain, util_delta);
                if best.is_none_or(|(_, _, g, u)| candidate_key > (g, u)) {
                    best = Some((i, j, gain, util_delta));
                }
            }
        }
        best.map(|(i, j, ..)| (i, j))
    }

    #[allow(clippy::too_many_arguments)]
    fn outcome(
        &self,
        problem: &SelectionProblem<'_>,
        all: &[Vec<&RankedCandidate>],
        current: &[usize],
        aggregated: QosVector,
        normalizer: &Normalizer,
        feasible: bool,
        levels_explored: usize,
    ) -> SelectionOutcome {
        let properties = problem.properties();
        let assignment: Vec<ServiceCandidate> = current
            .iter()
            .enumerate()
            .map(|(i, &j)| all[i][j].candidate().clone())
            .collect();
        let ranked: Vec<Vec<ServiceCandidate>> = all
            .iter()
            .map(|cands| cands.iter().map(|c| c.candidate().clone()).collect())
            .collect();
        let u = utility(
            &aggregated,
            normalizer,
            &self.effective_preferences(problem, &properties),
        );
        SelectionOutcome {
            assignment,
            aggregated,
            utility: u,
            feasible,
            levels_explored,
            ranked,
            levels: Vec::new(),
        }
    }
}

fn relative_violation(c: &qasom_qos::Constraint, aggregated: &QosVector) -> f64 {
    let value = aggregated.get(c.property());
    match value {
        Some(v) => {
            let slack = c.slack(v);
            let scale = c.bound().abs().max(1e-9);
            (-slack / scale).max(0.0)
        }
        None => f64::INFINITY,
    }
}

fn violation_severity(
    violations: &[qasom_qos::Constraint],
    aggregated: &QosVector,
) -> (usize, f64) {
    let total: f64 = violations
        .iter()
        .map(|c| {
            let rv = relative_violation(c, aggregated);
            if rv.is_finite() {
                rv
            } else {
                1e6
            }
        })
        .sum();
    (violations.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::{Constraint, ConstraintSet, QosModel};
    use qasom_registry::{ServiceDescription, ServiceRegistry};
    use qasom_task::{Activity, TaskNode, UserTask};

    struct Fx {
        model: QosModel,
        rt: PropertyId,
        av: PropertyId,
    }

    fn fx() -> Fx {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let av = model.property("Availability").unwrap();
        Fx { model, rt, av }
    }

    fn seq_task(n: usize) -> UserTask {
        UserTask::new(
            "t",
            TaskNode::sequence(
                (0..n).map(|i| TaskNode::activity(Activity::new(format!("a{i}"), "x#F"))),
            ),
        )
        .unwrap()
    }

    /// Builds candidate sets: `specs[i]` lists `(rt, av)` pairs.
    fn candidates(f: &Fx, specs: &[Vec<(f64, f64)>]) -> Vec<Vec<ServiceCandidate>> {
        let mut reg = ServiceRegistry::new();
        specs
            .iter()
            .map(|acts| {
                acts.iter()
                    .map(|&(t, a)| {
                        let id = reg.register(ServiceDescription::new("s", "x#F"));
                        let mut q = QosVector::new();
                        q.set(f.rt, t);
                        q.set(f.av, a);
                        ServiceCandidate::new(id, q)
                    })
                    .collect()
            })
            .collect()
    }

    fn constraints(f: &Fx, rt_bound: f64, av_bound: f64) -> ConstraintSet {
        [
            Constraint::new(f.rt, Tendency::LowerBetter, rt_bound),
            Constraint::new(f.av, Tendency::HigherBetter, av_bound),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn selects_feasible_composition_at_best_level() {
        let f = fx();
        let task = seq_task(2);
        let cands = candidates(
            &f,
            &[
                vec![(50.0, 0.99), (500.0, 0.5)],
                vec![(60.0, 0.98), (400.0, 0.6)],
            ],
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 200.0, 0.9));
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert!(out.feasible);
        assert_eq!(out.levels_explored, 1);
        assert_eq!(out.aggregated.get(f.rt), Some(110.0));
        assert!(out.aggregated.get(f.av).unwrap() > 0.9);
    }

    #[test]
    fn never_returns_violating_composition_as_feasible() {
        let f = fx();
        let task = seq_task(3);
        // Only tight compositions exist; constraint is impossible.
        let cands = candidates(
            &f,
            &[
                vec![(100.0, 0.9), (120.0, 0.95)],
                vec![(100.0, 0.9), (110.0, 0.92)],
                vec![(100.0, 0.9)],
            ],
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 50.0, 0.99));
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert!(!out.feasible);
        assert!(!problem.constraints().satisfied_by(&out.aggregated));
    }

    #[test]
    fn repairs_find_constraint_compatible_mix() {
        let f = fx();
        let task = seq_task(2);
        // Per activity: one fast/unavailable and one slow/available
        // service. Only fast+available mixes across activities work.
        let cands = candidates(
            &f,
            &[
                vec![(10.0, 0.7), (100.0, 0.99)],
                vec![(10.0, 0.7), (100.0, 0.99)],
            ],
        );
        // Need total rt <= 120 and availability >= 0.69: mixing one fast
        // and one available service is required.
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 120.0, 0.69));
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert!(out.feasible, "aggregated = {}", out.aggregated);
    }

    #[test]
    fn descends_levels_when_top_band_is_infeasible() {
        let f = fx();
        let task = seq_task(1);
        // The "excellent" candidates are expensive on availability; only a
        // clearly-worse-band candidate satisfies the availability bound.
        let cands = candidates(
            &f,
            &[vec![(10.0, 0.5), (11.0, 0.51), (12.0, 0.52), (400.0, 0.99)]],
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 1000.0, 0.95));
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert!(out.feasible);
        assert!(out.levels_explored >= 1);
        assert_eq!(out.aggregated.get(f.av), Some(0.99));
    }

    #[test]
    fn errors_on_empty_candidate_set() {
        let f = fx();
        let task = seq_task(2);
        let cands = candidates(&f, &[vec![(10.0, 0.9)], vec![]]);
        let problem = SelectionProblem::new(&task).with_candidates(cands);
        assert_eq!(
            Qassa::new(&f.model).select(&problem),
            Err(SelectionError::NoCandidates { activity: 1 })
        );
    }

    #[test]
    fn errors_on_arity_mismatch() {
        let f = fx();
        let task = seq_task(2);
        let problem =
            SelectionProblem::new(&task).with_candidates(vec![vec![ServiceCandidate::new(
                ServiceRegistry::new().register(ServiceDescription::new("s", "x#F")),
                QosVector::new(),
            )]]);
        assert!(matches!(
            Qassa::new(&f.model).select(&problem),
            Err(SelectionError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn ranked_lists_cover_all_candidates() {
        let f = fx();
        let task = seq_task(2);
        let cands = candidates(
            &f,
            &[
                vec![(50.0, 0.99), (500.0, 0.5), (70.0, 0.9)],
                vec![(60.0, 0.98), (400.0, 0.6)],
            ],
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 10_000.0, 0.0));
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert_eq!(out.ranked[0].len(), 3);
        assert_eq!(out.ranked[1].len(), 2);
        // The chosen service per activity is among its ranked list.
        for (i, chosen) in out.assignment.iter().enumerate() {
            assert!(out.ranked[i].iter().any(|c| c.id() == chosen.id()));
        }
    }

    #[test]
    fn evaluate_matches_selected_outcome() {
        let f = fx();
        let task = seq_task(2);
        let cands = candidates(
            &f,
            &[
                vec![(50.0, 0.99), (500.0, 0.5)],
                vec![(60.0, 0.98), (400.0, 0.6)],
            ],
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 200.0, 0.9));
        let qassa = Qassa::new(&f.model);
        let out = qassa.select(&problem).unwrap();
        let (agg, u) = qassa.evaluate(&problem, &out.assignment);
        assert_eq!(agg, out.aggregated);
        assert!((u - out.utility).abs() < 1e-12);
    }

    #[test]
    fn parallel_selection_matches_serial() {
        let f = fx();
        let task = seq_task(4);
        let cands = candidates(
            &f,
            &(0..4)
                .map(|a| {
                    (0..40)
                        .map(|s| {
                            (
                                10.0 + f64::from(a * 40 + s) * 3.0,
                                0.9 + f64::from(s % 10) * 0.009,
                            )
                        })
                        .collect()
                })
                .collect::<Vec<_>>(),
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 100_000.0, 0.0));
        let qassa = Qassa::new(&f.model);
        let serial = qassa.select(&problem).unwrap();
        let parallel = qassa.select_parallel(&problem).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn exact_fallback_rescues_repair_dead_ends() {
        let f = fx();
        let task = seq_task(2);
        // Candidates engineered so that (i) greedy initialisation picks a
        // violating pair, (ii) the repair heuristic's "most improving
        // swap" loops between the two properties without finding the
        // unique feasible combination, unless the exact fallback scans.
        let cands = candidates(
            &f,
            &[
                vec![(10.0, 0.60), (95.0, 0.97)],
                vec![(10.0, 0.60), (95.0, 0.97)],
            ],
        );
        // Feasible only as (fast, available) or (available, fast)?
        // rt <= 120 and av >= 0.55: mixed pairs give rt 105 / av 0.582
        // (violates av), uniform-fast gives av 0.36, uniform-available
        // gives rt 190. Actually make the bound exactly satisfiable by
        // one combination: rt <= 190, av >= 0.94 → only (95, 95).
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_constraints(constraints(&f, 190.0, 0.94));
        // With no repairs and no fallback the level search fails…
        let strict = QassaConfig {
            max_repairs_per_level: 0,
            exact_fallback_cap: 0,
            ..QassaConfig::default()
        };
        let out = Qassa::with_config(&f.model, strict)
            .select(&problem)
            .unwrap();
        let strict_feasible = out.feasible;
        // …but the (default) bounded fallback finds the single solution.
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert!(out.feasible);
        assert_eq!(out.aggregated.get(f.rt), Some(190.0));
        // Sanity: the strict configuration genuinely needed help or got
        // lucky via level ordering; either way the fallback never hurts.
        let _ = strict_feasible;
    }

    #[test]
    fn recorder_observes_without_changing_outcomes() {
        use qasom_obs::MemoryRecorder;
        let f = fx();
        let task = seq_task(2);
        let build = || {
            candidates(
                &f,
                &[
                    vec![(10.0, 0.7), (100.0, 0.99)],
                    vec![(10.0, 0.7), (100.0, 0.99)],
                ],
            )
        };
        let problem = SelectionProblem::new(&task)
            .with_candidates(build())
            .with_constraints(constraints(&f, 120.0, 0.69));
        let plain = Qassa::new(&f.model).select(&problem).unwrap();
        let rec = MemoryRecorder::new();
        let observed = Qassa::new(&f.model)
            .with_recorder(&rec)
            .select(&problem)
            .unwrap();
        assert_eq!(plain, observed);
        let snap = rec.snapshot().expect("memory recorder snapshots");
        assert_eq!(snap.counter(keys::SELECTION_RUNS), 1);
        assert_eq!(snap.counter(keys::SELECTION_LOCAL_RANKS), 2);
        assert_eq!(snap.counter(keys::SELECTION_LOCAL_CANDIDATES), 4);
        assert!(snap.counter(keys::SELECTION_UTILITY_EVALS) >= 1);
        // This fixture needs repair swaps to mix fast and available
        // services (see repairs_find_constraint_compatible_mix).
        assert!(snap.counter(keys::SELECTION_REPAIR_SWAPS) >= 1);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, keys::SPAN_SELECT);
    }

    #[test]
    fn unconstrained_problem_is_feasible_immediately() {
        let f = fx();
        let task = seq_task(3);
        let cands = candidates(
            &f,
            &[vec![(50.0, 0.99)], vec![(60.0, 0.98)], vec![(70.0, 0.97)]],
        );
        let problem = SelectionProblem::new(&task)
            .with_candidates(cands)
            .with_preferences(Preferences::uniform([f.rt, f.av]));
        let out = Qassa::new(&f.model).select(&problem).unwrap();
        assert!(out.feasible);
        assert_eq!(out.levels_explored, 1);
    }
}
