//! Synthetic evaluation workloads.
//!
//! The original experiments generate per-service QoS values from normal
//! laws `N(m, σ)` (Fig. VI.9) and derive global QoS requirements from the
//! same statistics — fixed at `m` (tight: about half of the services meet
//! the per-activity bound) or at one standard deviation looser (Fig.
//! VI.10/VI.11). This module reproduces that methodology deterministically.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qasom_netsim::dist::Normal;
use qasom_ontology::{Ontology, OntologyBuilder};
use qasom_qos::{Constraint, ConstraintSet, Preferences, PropertyId, QosModel, QosVector};
use qasom_registry::{ServiceDescription, ServiceRegistry};
use qasom_task::{Activity, LoopBound, TaskNode, UserTask};

use crate::{AggregationApproach, SelectionProblem, ServiceCandidate};

/// Task shapes used by the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskShape {
    /// All activities in sequence.
    Sequence,
    /// A sequence with a parallel block in the middle.
    Mixed,
    /// Sequence + parallel + choice + loop (exercises every aggregation
    /// rule; used by the aggregation-approach figures).
    Full,
}

/// How tight the generated global constraints are relative to the QoS
/// value distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tightness {
    /// No constraints at all.
    Unconstrained,
    /// Per-activity bound at the distribution mean `m` (tight — Fig.
    /// VI.10a/VI.11a).
    AtMean,
    /// Per-activity bound one σ *looser* than the mean (Fig.
    /// VI.10b/VI.11b).
    AtMeanPlusSigma,
    /// Per-activity bound `k` standard deviations looser than the mean.
    LooserBySigmas(f64),
}

/// Statistical profile of one generated property.
#[derive(Debug, Clone)]
struct PropertyProfile {
    property: PropertyId,
    mean: f64,
    std_dev: f64,
    clamp: (f64, f64),
}

/// Declarative description of a synthetic selection workload.
///
/// # Examples
///
/// ```
/// use qasom_qos::QosModel;
/// use qasom_selection::workload::WorkloadSpec;
///
/// let model = QosModel::standard();
/// let w = WorkloadSpec::evaluation_default()
///     .services_per_activity(50)
///     .build(&model, 123);
/// assert_eq!(w.problem().candidates()[0].len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    activities: usize,
    services_per_activity: usize,
    properties: Vec<String>,
    shape: TaskShape,
    tightness: Tightness,
    approach: AggregationApproach,
}

impl WorkloadSpec {
    /// The default set-up of the original evaluation: 5 activities, 100
    /// services per activity, 4 QoS properties (response time,
    /// availability, price, throughput), sequential task, constraints one
    /// σ looser than the mean, mean-value aggregation.
    pub fn evaluation_default() -> Self {
        WorkloadSpec {
            activities: 5,
            services_per_activity: 100,
            properties: vec![
                "ResponseTime".to_owned(),
                "Availability".to_owned(),
                "Price".to_owned(),
                "Throughput".to_owned(),
            ],
            shape: TaskShape::Sequence,
            tightness: Tightness::AtMeanPlusSigma,
            approach: AggregationApproach::MeanValue,
        }
    }

    /// Sets the number of abstract activities.
    pub fn activities(mut self, n: usize) -> Self {
        assert!(n > 0, "a task needs at least one activity");
        self.activities = n;
        self
    }

    /// Sets the number of candidate services per activity.
    pub fn services_per_activity(mut self, n: usize) -> Self {
        assert!(n > 0, "each activity needs at least one candidate");
        self.services_per_activity = n;
        self
    }

    /// Restricts the generated QoS properties (names from the standard
    /// model); the order controls which are kept when trimming.
    pub fn properties(mut self, names: &[&str]) -> Self {
        assert!(!names.is_empty(), "at least one property is required");
        self.properties = names.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Keeps only the first `n` of the configured properties (the
    /// "#QoS constraints" axis of Fig. VI.5b/VI.6b).
    pub fn property_count(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one property is required");
        while self.properties.len() < n {
            // Extend with further standard properties when more axes are
            // requested than the default four.
            for extra in [
                "Reliability",
                "Reputation",
                "EnergyCost",
                "SecurityLevel",
                "Accuracy",
                "EncodingQuality",
            ] {
                if !self.properties.iter().any(|p| p == extra) {
                    self.properties.push(extra.to_owned());
                    break;
                }
            }
        }
        self.properties.truncate(n);
        self
    }

    /// Sets the task shape.
    pub fn shape(mut self, shape: TaskShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the constraint tightness.
    pub fn tightness(mut self, tightness: Tightness) -> Self {
        self.tightness = tightness;
        self
    }

    /// Sets the aggregation approach.
    pub fn approach(mut self, approach: AggregationApproach) -> Self {
        self.approach = approach;
        self
    }

    /// Materialises the workload deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a property name is unknown to `model`.
    pub fn build(&self, model: &QosModel, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let profiles: Vec<PropertyProfile> = self
            .properties
            .iter()
            .map(|name| profile_for(model, name))
            .collect();

        let task = build_task(self.shape, self.activities);

        // One capability concept per abstract activity so the registry's
        // inverted index (and hence provider-side indexed discovery in
        // the distributed protocol) can be exercised on workloads.
        let mut taxonomy = OntologyBuilder::new("wl");
        for a in 0..self.activities {
            taxonomy.concept(&format!("Activity{a}"));
        }
        let ontology = Arc::new(
            taxonomy
                .build()
                .unwrap_or_else(|e| panic!("generated taxonomy is well-formed: {e}")),
        );

        let mut registry = ServiceRegistry::with_ontology(Arc::clone(&ontology));
        let candidates: Vec<Vec<ServiceCandidate>> = (0..self.activities)
            .map(|a| {
                (0..self.services_per_activity)
                    .map(|s| {
                        let mut qos = QosVector::new();
                        for p in &profiles {
                            let v = Normal::new(p.mean, p.std_dev)
                                .sample_clamped(&mut rng, p.clamp.0, p.clamp.1);
                            qos.set(p.property, v);
                        }
                        let id = registry.register(
                            ServiceDescription::new(
                                format!("svc-{a}-{s}"),
                                &format!("wl#Activity{a}"),
                            )
                            .with_qos_vector(qos.clone()),
                        );
                        ServiceCandidate::new(id, qos)
                    })
                    .collect()
            })
            .collect();

        let constraints = self.build_constraints(model, &task, &profiles);
        let preferences = Preferences::uniform(profiles.iter().map(|p| p.property));

        Workload {
            task,
            candidates,
            constraints,
            preferences,
            approach: self.approach,
            registry,
            ontology,
        }
    }

    /// Derives global constraints by aggregating the per-activity bound
    /// over the task structure (e.g. a per-activity response-time bound of
    /// `b` over `n` sequential activities yields a global bound of `n·b`).
    fn build_constraints(
        &self,
        model: &QosModel,
        task: &UserTask,
        profiles: &[PropertyProfile],
    ) -> ConstraintSet {
        let sigmas = match self.tightness {
            Tightness::Unconstrained => return ConstraintSet::new(),
            Tightness::AtMean => 0.0,
            Tightness::AtMeanPlusSigma => 1.0,
            Tightness::LooserBySigmas(k) => k,
        };
        let aggregator = crate::Aggregator::new(model, self.approach);
        let n = task.activity_count();
        profiles
            .iter()
            .map(|p| {
                let tendency = model.tendency(p.property);
                let per_activity = match tendency {
                    qasom_qos::Tendency::LowerBetter => p.mean + sigmas * p.std_dev,
                    qasom_qos::Tendency::HigherBetter => p.mean - sigmas * p.std_dev,
                };
                let per_activity = per_activity.clamp(p.clamp.0, p.clamp.1);
                let uniform: Vec<QosVector> = (0..n)
                    .map(|_| {
                        let mut v = QosVector::new();
                        v.set(p.property, per_activity);
                        v
                    })
                    .collect();
                let bound = aggregator
                    .aggregate(task, &uniform, &[p.property])
                    .get(p.property)
                    .unwrap_or_else(|| {
                        panic!("uniform assignment always aggregates the constrained property")
                    });
                Constraint::new(p.property, tendency, bound)
            })
            .collect()
    }
}

/// The QoS statistics each standard property is generated with (the
/// `N(m, σ)` of Fig. VI.9).
fn profile_for(model: &QosModel, name: &str) -> PropertyProfile {
    let property = model
        .property(name)
        .unwrap_or_else(|| panic!("unknown workload property {name:?}"));
    let (mean, std_dev, clamp) = match name {
        "ResponseTime" => (100.0, 30.0, (1.0, f64::MAX)),
        "Availability" | "Reliability" | "Accuracy" => (0.95, 0.03, (0.0, 1.0)),
        "Price" => (5.0, 2.0, (0.01, f64::MAX)),
        "Throughput" => (50.0, 15.0, (1.0, f64::MAX)),
        "Reputation" | "SecurityLevel" | "EncodingQuality" => (3.5, 1.0, (0.0, 5.0)),
        "EnergyCost" => (200.0, 60.0, (1.0, f64::MAX)),
        _ => (50.0, 10.0, (0.0, f64::MAX)),
    };
    PropertyProfile {
        property,
        mean,
        std_dev,
        clamp,
    }
}

fn build_task(shape: TaskShape, n: usize) -> UserTask {
    let act =
        |i: usize| TaskNode::activity(Activity::new(format!("a{i}"), &format!("wl#Activity{i}")));
    let root = match shape {
        TaskShape::Sequence => TaskNode::sequence((0..n).map(act)),
        TaskShape::Mixed => {
            if n < 3 {
                TaskNode::sequence((0..n).map(act))
            } else {
                // a0 ; (a1 || … || a_{n-2}) ; a_{n-1}
                let mut nodes = vec![act(0)];
                nodes.push(TaskNode::parallel((1..n - 1).map(act)));
                nodes.push(act(n - 1));
                TaskNode::sequence(nodes)
            }
        }
        TaskShape::Full => {
            if n < 4 {
                TaskNode::sequence((0..n).map(act))
            } else {
                // a0 ; (a1 ? a2) ; loop(a3) ; a4… — exercises every rule.
                let mut nodes = vec![act(0)];
                nodes.push(TaskNode::choice([(0.6, act(1)), (0.4, act(2))]));
                nodes.push(TaskNode::repeat(act(3), LoopBound::new(2.0, 4)));
                if n > 4 {
                    nodes.push(TaskNode::parallel((4..n).map(act)));
                }
                TaskNode::sequence(nodes)
            }
        }
    };
    UserTask::new("workload", root)
        .unwrap_or_else(|e| panic!("generated tasks are well-formed: {e}"))
}

/// A materialised workload: owns the task, candidate sets, constraints and
/// the registry the candidates came from.
#[derive(Debug, Clone)]
pub struct Workload {
    task: UserTask,
    candidates: Vec<Vec<ServiceCandidate>>,
    constraints: ConstraintSet,
    preferences: Preferences,
    approach: AggregationApproach,
    registry: ServiceRegistry,
    ontology: Arc<Ontology>,
}

impl Workload {
    /// The generated user task.
    pub fn task(&self) -> &UserTask {
        &self.task
    }

    /// The generated per-activity candidate sets.
    pub fn candidates(&self) -> &[Vec<ServiceCandidate>] {
        &self.candidates
    }

    /// The derived global constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The registry the candidate services are registered in. It is
    /// bound to [`Workload::ontology`], so indexed discovery works
    /// against it out of the box.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// The per-activity capability taxonomy the workload was generated
    /// under (one concept per abstract activity).
    pub fn ontology(&self) -> &Arc<Ontology> {
        &self.ontology
    }

    /// Assembles the [`SelectionProblem`] view of this workload.
    pub fn problem(&self) -> SelectionProblem<'_> {
        SelectionProblem::new(&self.task)
            .with_candidates(self.candidates.clone())
            .with_constraints(self.constraints.clone())
            .with_preferences(self.preferences.clone())
            .with_approach(self.approach)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workload_has_expected_dimensions() {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default().build(&m, 1);
        assert_eq!(w.task().activity_count(), 5);
        assert_eq!(w.candidates().len(), 5);
        assert_eq!(w.candidates()[0].len(), 100);
        assert_eq!(w.constraints().len(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let m = QosModel::standard();
        let a = WorkloadSpec::evaluation_default().build(&m, 9);
        let b = WorkloadSpec::evaluation_default().build(&m, 9);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    fn seeds_change_the_values() {
        let m = QosModel::standard();
        let a = WorkloadSpec::evaluation_default().build(&m, 1);
        let b = WorkloadSpec::evaluation_default().build(&m, 2);
        assert_ne!(a.candidates(), b.candidates());
    }

    #[test]
    fn sampled_means_match_the_profile() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let w = WorkloadSpec::evaluation_default()
            .services_per_activity(2000)
            .activities(1)
            .build(&m, 5);
        let mean: f64 = w.candidates()[0]
            .iter()
            .map(|c| c.qos().get(rt).unwrap())
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn availability_stays_in_unit_interval() {
        let m = QosModel::standard();
        let av = m.property("Availability").unwrap();
        let w = WorkloadSpec::evaluation_default().build(&m, 3);
        for cands in w.candidates() {
            for c in cands {
                let v = c.qos().get(av).unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn constraints_scale_with_task_size() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let small = WorkloadSpec::evaluation_default()
            .activities(2)
            .tightness(Tightness::AtMean)
            .build(&m, 1);
        let large = WorkloadSpec::evaluation_default()
            .activities(8)
            .tightness(Tightness::AtMean)
            .build(&m, 1);
        let b_small = small.constraints().get(rt).unwrap().bound();
        let b_large = large.constraints().get(rt).unwrap().bound();
        assert_eq!(b_small, 200.0);
        assert_eq!(b_large, 800.0);
    }

    #[test]
    fn mean_plus_sigma_is_looser_than_mean() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let tight = WorkloadSpec::evaluation_default()
            .tightness(Tightness::AtMean)
            .build(&m, 1);
        let loose = WorkloadSpec::evaluation_default()
            .tightness(Tightness::AtMeanPlusSigma)
            .build(&m, 1);
        // Lower-better: looser bound is larger.
        assert!(
            loose.constraints().get(rt).unwrap().bound()
                > tight.constraints().get(rt).unwrap().bound()
        );
        // Higher-better: looser bound is smaller.
        assert!(
            loose.constraints().get(av).unwrap().bound()
                < tight.constraints().get(av).unwrap().bound()
        );
    }

    #[test]
    fn property_count_extends_beyond_default_four() {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .property_count(7)
            .build(&m, 1);
        assert_eq!(w.constraints().len(), 7);
    }

    #[test]
    fn full_shape_contains_choice_and_loop() {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .shape(TaskShape::Full)
            .build(&m, 1);
        let mut has_choice = false;
        let mut has_loop = false;
        fn walk(n: &TaskNode, c: &mut bool, l: &mut bool) {
            match n {
                TaskNode::Choice(bs) => {
                    *c = true;
                    bs.iter().for_each(|(_, b)| walk(b, c, l));
                }
                TaskNode::Loop { body, .. } => {
                    *l = true;
                    walk(body, c, l);
                }
                TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
                    cs.iter().for_each(|x| walk(x, c, l))
                }
                TaskNode::Activity(_) => {}
            }
        }
        walk(w.task().root(), &mut has_choice, &mut has_loop);
        assert!(has_choice && has_loop);
    }

    #[test]
    fn workload_registry_supports_indexed_discovery() {
        use qasom_registry::{Discovery, DiscoveryQuery};

        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .activities(3)
            .services_per_activity(10)
            .build(&m, 7);
        let discovery = Discovery::new(w.ontology(), &m);
        for r in w.task().activities() {
            let indexed = discovery.discover(w.registry(), &DiscoveryQuery::new(r.activity()));
            assert_eq!(indexed.len(), 10, "each activity has its own concept");
            let linear = discovery.discover(
                w.registry(),
                &DiscoveryQuery::new(r.activity()).linear_scan(true),
            );
            assert_eq!(indexed, linear, "index and scan must agree");
        }
    }

    #[test]
    fn unconstrained_workload_has_no_constraints() {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .tightness(Tightness::Unconstrained)
            .build(&m, 1);
        assert!(w.constraints().is_empty());
    }
}
