//! Distributed QASSA: local selection on provider nodes, global selection
//! on the requesting device — the ad hoc variant of the algorithm
//! (Fig. VI.12 of the original evaluation).
//!
//! The protocol, over the [`qasom_netsim`] simulator:
//!
//! 1. the coordinator (user device) broadcasts a `SelectRequest`;
//! 2. every provider node runs the *local selection* phase over the
//!    candidates it hosts (cost modelled as
//!    `candidates × properties × per_candidate_cost`, scaled by the
//!    node's CPU factor) and replies with per-activity ranked digests;
//! 3. once all replies arrived, the coordinator merges the digests
//!    ([`QosLevels::merge`]) and runs the *global selection* phase
//!    locally.
//!
//! The report separates the local phase (request → last digest, dominated
//! by the slowest provider + messaging) from the global phase (coordinator
//! compute), which is exactly the split the original figure plots.

use qasom_netsim::{
    DeviceProfile, LinkConfig, NodeBehaviour, NodeContext, NodeId, SimDuration, SimTime, Simulation,
};
use qasom_qos::{ConstraintSet, Preferences, PropertyId, QosModel};
use qasom_task::UserTask;

use crate::workload::Workload;
use crate::{
    AggregationApproach, LocalRank, Qassa, QassaConfig, QosLevels, SelectionOutcome,
    SelectionProblem, ServiceCandidate,
};

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → providers: run local selection.
    SelectRequest {
        /// Properties to rank on.
        properties: Vec<PropertyId>,
        /// User preference weights.
        preferences: Preferences,
    },
    /// Provider → coordinator: ranked digests, one per hosted activity,
    /// plus the raw candidates (the coordinator needs them to rebuild a
    /// complete problem for the global phase).
    LocalDigest {
        /// Per-activity `(activity index, hierarchy, candidates)`.
        digests: Vec<(usize, QosLevels, Vec<ServiceCandidate>)>,
    },
}

/// Deployment parameters of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistributedSetup {
    /// Number of provider nodes the candidates are spread over.
    pub providers: usize,
    /// Wireless link profile.
    pub link: LinkConfig,
    /// Device profile of provider nodes.
    pub provider_profile: DeviceProfile,
    /// Device profile of the coordinator (user device).
    pub coordinator_profile: DeviceProfile,
    /// Modelled local-selection cost per (candidate × property), in
    /// microseconds on the reference machine.
    pub per_candidate_cost_us: u64,
    /// How long the coordinator waits for provider digests before
    /// proceeding with whatever arrived (provider churn tolerance), in
    /// simulated milliseconds.
    pub reply_timeout_ms: u64,
}

impl Default for DistributedSetup {
    /// Ten constrained handhelds on a 5 ms ± 1 ms ad hoc network; 10 µs
    /// of ranking work per candidate-property.
    fn default() -> Self {
        DistributedSetup {
            providers: 10,
            link: LinkConfig::default(),
            provider_profile: DeviceProfile::constrained(),
            coordinator_profile: DeviceProfile::constrained(),
            per_candidate_cost_us: 10,
            reply_timeout_ms: 5_000,
        }
    }
}

/// Result of a distributed QASSA run.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// The selection outcome computed by the coordinator.
    pub outcome: SelectionOutcome,
    /// Simulated duration of the local phase (request → last digest).
    pub local_phase: SimDuration,
    /// Simulated duration of the global phase (coordinator compute).
    pub global_phase: SimDuration,
    /// Total protocol messages sent.
    pub messages: u64,
}

impl DistributedReport {
    /// Total simulated selection latency.
    pub fn total(&self) -> SimDuration {
        self.local_phase + self.global_phase
    }
}

struct ProviderState {
    model: QosModel,
    local: LocalRank,
    /// `(activity, candidates)` hosted by this provider.
    shard: Vec<(usize, Vec<ServiceCandidate>)>,
    per_candidate_cost_us: u64,
}

struct CoordinatorState {
    model: QosModel,
    config: QassaConfig,
    task: UserTask,
    constraints: ConstraintSet,
    preferences: Preferences,
    approach: AggregationApproach,
    expected_replies: usize,
    received: usize,
    merged: Vec<QosLevels>,
    candidates: Vec<Vec<ServiceCandidate>>,
    per_candidate_cost_us: u64,
    reply_timeout_ms: u64,
    started_at: SimTime,
    local_done_at: Option<SimTime>,
    global_done_at: Option<SimTime>,
    outcome: Option<Result<SelectionOutcome, crate::SelectionError>>,
}

impl CoordinatorState {
    /// Runs the global phase over whatever digests arrived.
    fn finish(&mut self, ctx: &mut NodeContext<'_, Message>) {
        self.local_done_at = Some(ctx.now());

        // Global phase on the user device.
        let total: u64 = self.candidates.iter().map(|c| c.len() as u64).sum();
        let props = self.constraints.len().max(self.preferences.len()).max(1) as u64;
        let work = SimDuration::from_micros(total * props * self.per_candidate_cost_us / 4);
        ctx.compute(work);

        let problem = SelectionProblem::new(&self.task)
            .with_candidates(self.candidates.clone())
            .with_constraints(self.constraints.clone())
            .with_preferences(self.preferences.clone())
            .with_approach(self.approach);
        let qassa = Qassa::with_config(&self.model, self.config);
        let result = qassa.select_with_levels(&problem, &self.merged);
        self.global_done_at = Some(ctx.now() + ctx.compute_debt());
        self.outcome = Some(result);
    }
}

enum Role {
    Provider(Box<ProviderState>),
    Coordinator(Box<CoordinatorState>),
}

impl NodeBehaviour<Message> for Role {
    fn on_start(&mut self, ctx: &mut NodeContext<'_, Message>) {
        if let Role::Coordinator(state) = self {
            // Churn tolerance: proceed with whatever digests arrived once
            // the reply deadline passes.
            ctx.set_timer(SimDuration::from_millis(state.reply_timeout_ms), 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_, Message>, _timer: u64) {
        if let Role::Coordinator(state) = self {
            if state.outcome.is_none() {
                state.finish(ctx);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut NodeContext<'_, Message>, from: NodeId, msg: Message) {
        match (self, msg) {
            (
                Role::Provider(state),
                Message::SelectRequest {
                    properties,
                    preferences,
                },
            ) => {
                let mut digests = Vec::with_capacity(state.shard.len());
                let mut work_units = 0u64;
                for (activity, cands) in &state.shard {
                    let levels = state
                        .local
                        .rank(&state.model, cands, &properties, &preferences);
                    work_units += (cands.len() * properties.len()) as u64;
                    digests.push((*activity, levels, cands.clone()));
                }
                ctx.compute(SimDuration::from_micros(
                    work_units * state.per_candidate_cost_us,
                ));
                ctx.send(from, Message::LocalDigest { digests });
            }
            (Role::Coordinator(state), Message::LocalDigest { digests }) => {
                if state.outcome.is_some() {
                    return; // a digest arriving after the reply deadline
                }
                for (activity, levels, cands) in digests {
                    state.merged[activity].merge(levels);
                    state.candidates[activity].extend(cands);
                }
                state.received += 1;
                if state.received == state.expected_replies {
                    state.finish(ctx);
                }
            }
            _ => {}
        }
    }
}

/// Drives distributed QASSA runs over the network simulator.
#[derive(Debug, Clone, Copy)]
pub struct DistributedQassa<'a> {
    model: &'a QosModel,
    config: QassaConfig,
}

impl<'a> DistributedQassa<'a> {
    /// Creates a driver with the default QASSA configuration.
    pub fn new(model: &'a QosModel) -> Self {
        DistributedQassa {
            model,
            config: QassaConfig::default(),
        }
    }

    /// Overrides the QASSA configuration.
    pub fn with_config(mut self, config: QassaConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the protocol for `workload` under `setup`, deterministically
    /// from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates structural selection errors (e.g. an activity whose
    /// candidates ended up on no provider).
    ///
    /// # Panics
    ///
    /// Panics if `setup.providers == 0`.
    pub fn run(
        &self,
        workload: &Workload,
        setup: &DistributedSetup,
        seed: u64,
    ) -> Result<DistributedReport, crate::SelectionError> {
        assert!(setup.providers > 0, "at least one provider is required");
        let n_activities = workload.task().activity_count();

        // Shard candidates round-robin over providers.
        let mut shards: Vec<Vec<(usize, Vec<ServiceCandidate>)>> =
            vec![(0..n_activities).map(|a| (a, Vec::new())).collect(); setup.providers];
        for (activity, cands) in workload.candidates().iter().enumerate() {
            for (i, c) in cands.iter().enumerate() {
                shards[i % setup.providers][activity].1.push(c.clone());
            }
        }
        for shard in &mut shards {
            shard.retain(|(_, cands)| !cands.is_empty());
        }
        let expected_replies = setup.providers;

        let problem = workload.problem();
        let properties = problem.properties();

        let mut sim: Simulation<Message, Role> = Simulation::new(seed);
        sim.set_default_link(setup.link);

        let coordinator = sim.add_node(
            setup.coordinator_profile,
            Role::Coordinator(Box::new(CoordinatorState {
                model: self.model.clone(),
                config: self.config,
                task: workload.task().clone(),
                constraints: problem.constraints().clone(),
                preferences: problem.preferences().clone(),
                approach: problem.approach(),
                expected_replies,
                received: 0,
                merged: vec![QosLevels::default(); n_activities],
                candidates: vec![Vec::new(); n_activities],
                per_candidate_cost_us: setup.per_candidate_cost_us,
                reply_timeout_ms: setup.reply_timeout_ms,
                started_at: SimTime::ZERO,
                local_done_at: None,
                global_done_at: None,
                outcome: None,
            })),
        );
        let providers: Vec<NodeId> = shards
            .into_iter()
            .map(|shard| {
                sim.add_node(
                    setup.provider_profile,
                    Role::Provider(Box::new(ProviderState {
                        model: self.model.clone(),
                        local: self.config.local,
                        shard,
                        per_candidate_cost_us: setup.per_candidate_cost_us,
                    })),
                )
            })
            .collect();

        // Kick off: the coordinator broadcasts the request. Injected from
        // outside so the broadcast transits real links.
        for &p in &providers {
            sim.send_external(
                coordinator,
                p,
                Message::SelectRequest {
                    properties: properties.clone(),
                    preferences: problem.preferences().clone(),
                },
            );
        }
        // External injection models the local hand-off to the radio; give
        // each request one coordinator-side link transit by re-sending
        // through the provider loopback — simpler: requests above arrive
        // instantly; digests pay the return trip, which dominates.
        sim.run();

        let Role::Coordinator(state) = sim.node(coordinator) else {
            unreachable!("coordinator role is fixed");
        };
        let outcome = state.outcome.clone().expect("protocol completed")?;
        let local_done = state.local_done_at.expect("local phase completed");
        let global_done = state.global_done_at.expect("global phase completed");
        Ok(DistributedReport {
            outcome,
            local_phase: local_done.since(state.started_at),
            global_phase: global_done.since(local_done),
            messages: sim.stats().sent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn small() -> (QosModel, Workload) {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .activities(3)
            .services_per_activity(30)
            .build(&m, 5);
        (m, w)
    }

    #[test]
    fn distributed_matches_centralised_feasibility() {
        let (m, w) = small();
        let central = Qassa::new(&m).select(&w.problem()).unwrap();
        let report = DistributedQassa::new(&m)
            .run(&w, &DistributedSetup::default(), 1)
            .unwrap();
        assert_eq!(report.outcome.feasible, central.feasible);
        assert_eq!(report.outcome.assignment.len(), 3);
    }

    #[test]
    fn local_phase_shrinks_with_more_providers() {
        let (m, w) = small();
        let few = DistributedSetup {
            providers: 2,
            ..DistributedSetup::default()
        };
        let many = DistributedSetup {
            providers: 10,
            ..DistributedSetup::default()
        };
        let d = DistributedQassa::new(&m);
        let t_few = d.run(&w, &few, 1).unwrap().local_phase;
        let t_many = d.run(&w, &many, 1).unwrap().local_phase;
        assert!(
            t_many < t_few,
            "local phase with 10 providers ({t_many}) should beat 2 ({t_few})"
        );
    }

    #[test]
    fn all_candidates_reach_the_coordinator() {
        let (m, w) = small();
        let report = DistributedQassa::new(&m)
            .run(&w, &DistributedSetup::default(), 2)
            .unwrap();
        let total: usize = report.outcome.ranked.iter().map(Vec::len).sum();
        assert_eq!(total, 3 * 30);
    }

    #[test]
    fn message_count_scales_with_providers() {
        let (m, w) = small();
        let setup = DistributedSetup {
            providers: 7,
            ..DistributedSetup::default()
        };
        let report = DistributedQassa::new(&m).run(&w, &setup, 3).unwrap();
        // 7 requests + 7 digests.
        assert_eq!(report.messages, 14);
    }

    #[test]
    fn deterministic_per_seed() {
        let (m, w) = small();
        let d = DistributedQassa::new(&m);
        let a = d.run(&w, &DistributedSetup::default(), 9).unwrap();
        let b = d.run(&w, &DistributedSetup::default(), 9).unwrap();
        assert_eq!(a.local_phase, b.local_phase);
        assert_eq!(a.outcome.assignment, b.outcome.assignment);
    }
}
