//! Distributed QASSA: local selection on provider nodes, global selection
//! on the requesting device — the ad hoc variant of the algorithm
//! (Fig. VI.12 of the original evaluation), hardened for the lossy links
//! and provider churn of a physical testbed.
//!
//! The protocol, over the [`qasom_netsim`] simulator:
//!
//! 1. the coordinator (user device) broadcasts a `SelectRequest` from its
//!    own [`NodeBehaviour::on_start`] — the request leg transits real
//!    links, so it is subject to latency, jitter and loss exactly like
//!    the digest leg;
//! 2. every provider node runs the *local selection* phase over the
//!    candidates it hosts — looked up per activity through its own
//!    capability-indexed shard registry with a memoised
//!    [`MatchCache`](qasom_registry::MatchCache), not a linear scan —
//!    (cost modelled as `candidates × properties × per_candidate_cost`,
//!    scaled by the node's CPU factor) and replies with per-activity
//!    ranked digests; retransmitted requests are answered from the
//!    cached ranking;
//! 3. providers that have not answered are re-requested with capped
//!    exponential backoff plus seeded jitter ([`RetryPolicy`]) until the
//!    reply deadline;
//! 4. once all expected digests arrived — or the deadline passes — the
//!    coordinator merges the digests ([`QosLevels::merge`]) and runs the
//!    *global selection* phase locally over whatever it heard.
//!
//! The report separates the local phase (request → last digest, dominated
//! by the slowest provider + messaging) from the global phase (coordinator
//! compute), which is exactly the split the original figure plots — and
//! carries a [`FaultReport`] so callers can tell an *optimal* outcome from
//! a *best-of-what-answered* one: which providers went missing, how much
//! of the candidate pool each activity retained, and how many
//! retransmissions the run spent.

use std::collections::BTreeSet;
use std::sync::Arc;

use qasom_netsim::{
    DeviceProfile, LinkConfig, NetworkStats, NodeBehaviour, NodeContext, NodeId, SimDuration,
    SimTime, Simulation,
};
use qasom_obs::report::{CoverageEntry, DistributedSection, NetsimSection, ProviderRtt};
use qasom_obs::{keys, Recorder};
use qasom_ontology::Ontology;
use qasom_qos::{ConstraintSet, Preferences, PropertyId, QosModel};
use qasom_registry::{
    Discovery, DiscoveryQuery, MatchCache, ServiceDescription, ServiceId, ServiceRegistry,
};
use qasom_task::{Activity, UserTask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;
use crate::{
    AggregationApproach, LocalRank, Qassa, QassaConfig, QosLevels, SelectionOutcome,
    SelectionProblem, ServiceCandidate,
};

/// Timer key of the coordinator's reply deadline.
const DEADLINE_TIMER: u64 = 0;
/// Timer key of the coordinator's retransmission rounds.
const RETRY_TIMER: u64 = 1;

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Message {
    /// Coordinator → providers: run local selection. Retransmissions are
    /// byte-identical; providers answer duplicates from their cached
    /// ranking.
    SelectRequest {
        /// Properties to rank on.
        properties: Vec<PropertyId>,
        /// User preference weights.
        preferences: Preferences,
    },
    /// Provider → coordinator: ranked digests, one per hosted activity,
    /// plus the raw candidates (the coordinator needs them to rebuild a
    /// complete problem for the global phase).
    LocalDigest {
        /// Per-activity `(activity index, hierarchy, candidates)`.
        digests: Vec<(usize, QosLevels, Vec<ServiceCandidate>)>,
    },
}

/// Retransmission policy for unanswered providers: capped exponential
/// backoff with seeded jitter, bounded by the reply deadline.
///
/// Round `r` (zero-based) fires `base_delay_ms × 2^r` (capped at
/// `max_delay_ms`) plus a uniform jitter in `[0, jitter_ms]` after the
/// previous round; only providers that have not yet answered are
/// re-requested. Jitter is drawn from a generator seeded by the run seed,
/// so runs stay deterministic per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retransmission rounds (0 disables retries).
    pub max_retries: u32,
    /// Delay before the first retransmission round, in simulated ms.
    pub base_delay_ms: u64,
    /// Upper bound on the exponentially growing round delay, in ms.
    pub max_delay_ms: u64,
    /// Uniform jitter added to every round delay, in ms.
    pub jitter_ms: u64,
}

impl RetryPolicy {
    /// No retransmissions: a lost request or digest permanently shrinks
    /// the candidate pool (the pre-fault-tolerance behaviour).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter_ms: 0,
        }
    }

    /// Whether any retransmission round may fire.
    pub fn is_enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The capped exponential delay of round `round`, without jitter.
    /// Public so other protocol layers (e.g. the cluster gossip peers)
    /// reuse the same backoff shape.
    pub fn backoff_ms(&self, round: u32) -> u64 {
        let cap = self.max_delay_ms.max(self.base_delay_ms);
        self.base_delay_ms
            .saturating_mul(1u64 << round.min(20))
            .min(cap)
    }
}

impl Default for RetryPolicy {
    /// Eight rounds at 50 ms doubling to a 800 ms cap with ≤ 20 ms of
    /// jitter — all rounds fit comfortably inside the default 5 s reply
    /// deadline.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_delay_ms: 50,
            max_delay_ms: 800,
            jitter_ms: 20,
        }
    }
}

/// Deployment parameters of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistributedSetup {
    /// Number of provider nodes the candidates are spread over.
    pub providers: usize,
    /// Wireless link profile.
    pub link: LinkConfig,
    /// Device profile of provider nodes.
    pub provider_profile: DeviceProfile,
    /// Device profile of the coordinator (user device).
    pub coordinator_profile: DeviceProfile,
    /// Modelled local-selection cost per (candidate × property), in
    /// microseconds on the reference machine.
    pub per_candidate_cost_us: u64,
    /// How long the coordinator waits for provider digests before
    /// proceeding with whatever arrived (provider churn tolerance), in
    /// simulated milliseconds.
    pub reply_timeout_ms: u64,
    /// Retransmission policy for unanswered providers.
    pub retry: RetryPolicy,
    /// Optional transient-network schedule: at `(t_ms, link)` the default
    /// link switches to `link` (e.g. an outage clearing after t_ms).
    pub link_after: Option<(u64, LinkConfig)>,
    /// Optional cap on simulator events (`None` keeps the simulator's
    /// default); exhausting it surfaces as
    /// [`SelectionError::ProtocolAborted`](crate::SelectionError).
    pub max_sim_events: Option<u64>,
}

impl Default for DistributedSetup {
    /// Ten constrained handhelds on a 5 ms ± 1 ms ad hoc network; 10 µs
    /// of ranking work per candidate-property; default retries on.
    fn default() -> Self {
        DistributedSetup {
            providers: 10,
            link: LinkConfig::default(),
            provider_profile: DeviceProfile::constrained(),
            coordinator_profile: DeviceProfile::constrained(),
            per_candidate_cost_us: 10,
            reply_timeout_ms: 5_000,
            retry: RetryPolicy::default(),
            link_after: None,
            max_sim_events: None,
        }
    }
}

/// Per-activity candidate coverage of a distributed run: how many of the
/// workload's candidates for this activity actually reached the
/// coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityCoverage {
    /// DFS index of the activity.
    pub activity: usize,
    /// Candidates received from the providers that answered.
    pub received: usize,
    /// Candidates the full workload holds for this activity.
    pub expected: usize,
}

/// Degraded-mode section of a [`DistributedReport`]: distinguishes an
/// outcome computed over the complete candidate pool from a
/// best-of-what-answered one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Providers the coordinator expected digests from.
    pub providers_expected: usize,
    /// Providers whose digest arrived before the reply deadline.
    pub providers_heard: usize,
    /// Providers that never answered (their candidates are missing from
    /// the global phase).
    pub missing_providers: Vec<NodeId>,
    /// Retransmitted requests (protocol messages beyond the first round).
    pub retries_sent: u64,
    /// Per-activity candidate coverage vs. the full workload.
    pub activity_coverage: Vec<ActivityCoverage>,
}

impl FaultReport {
    /// Whether every activity retained its complete candidate pool.
    pub fn full_coverage(&self) -> bool {
        self.activity_coverage
            .iter()
            .all(|c| c.received >= c.expected)
    }

    /// Whether the outcome is degraded: some provider was never heard or
    /// some activity lost candidates. A degraded outcome is still the
    /// best composition *of what answered*, not of the full pool.
    pub fn is_degraded(&self) -> bool {
        self.providers_heard < self.providers_expected || !self.full_coverage()
    }

    /// Fraction of the workload's candidates that reached the
    /// coordinator, in `[0, 1]` (1.0 when the workload is empty).
    pub fn coverage_ratio(&self) -> f64 {
        let expected: usize = self.activity_coverage.iter().map(|c| c.expected).sum();
        if expected == 0 {
            return 1.0;
        }
        let received: usize = self
            .activity_coverage
            .iter()
            .map(|c| c.received.min(c.expected))
            .sum();
        received as f64 / expected as f64
    }
}

/// Result of a distributed QASSA run.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// The selection outcome computed by the coordinator.
    pub outcome: SelectionOutcome,
    /// Simulated duration of the local phase (request → last digest).
    pub local_phase: SimDuration,
    /// Simulated duration of the global phase (coordinator compute).
    pub global_phase: SimDuration,
    /// Total protocol messages sent (requests, retransmissions, digests —
    /// nothing is injected outside the link model).
    pub messages: u64,
    /// Simulator events processed by the run. Cancelled timers are not
    /// processed, so a clean run's count reflects protocol work only.
    pub sim_events: u64,
    /// Per-provider first-digest round-trip times (request send →
    /// digest arrival) on the simulated clock, ascending node id.
    pub provider_rtt_us: Vec<(u32, u64)>,
    /// Network totals of the run (sends, drops, cancelled timers, …).
    pub net: NetworkStats,
    /// Final simulated clock of the run, microseconds.
    pub sim_time_us: u64,
    /// Fault-tolerance outcome: who answered, what coverage survived,
    /// what the retries cost.
    pub fault: FaultReport,
}

impl DistributedReport {
    /// Total simulated selection latency.
    pub fn total(&self) -> SimDuration {
        self.local_phase + self.global_phase
    }

    /// The serialisable face of this report: the unified
    /// [`DistributedSection`] of a
    /// [`RunReport`](qasom_obs::report::RunReport), folding in the
    /// fault report and network totals.
    pub fn to_section(&self) -> DistributedSection {
        DistributedSection {
            providers: self.fault.providers_expected as u64,
            providers_heard: self.fault.providers_heard as u64,
            messages: self.messages,
            sim_events: self.sim_events,
            retries: self.fault.retries_sent,
            coverage_ratio: self.fault.coverage_ratio(),
            degraded: self.fault.is_degraded(),
            feasible: self.outcome.feasible,
            utility: self.outcome.utility,
            local_phase_us: self.local_phase.as_micros(),
            global_phase_us: self.global_phase.as_micros(),
            provider_rtt: self
                .provider_rtt_us
                .iter()
                .map(|&(node, rtt_us)| ProviderRtt { node, rtt_us })
                .collect(),
            coverage: self
                .fault
                .activity_coverage
                .iter()
                .filter(|c| c.received < c.expected)
                .map(|c| CoverageEntry {
                    activity: format!("#{}", c.activity),
                    candidates_heard: c.received as u64,
                    candidates_total: c.expected as u64,
                })
                .collect(),
            net: NetsimSection {
                sent: self.net.sent,
                delivered: self.net.delivered,
                dropped: self.net.dropped,
                timers_cancelled: self.net.timers_cancelled,
                sim_time_us: self.sim_time_us,
            },
        }
    }

    /// Flushes this report's counters, RTT histogram and phase spans
    /// (on the simulated clock) to `recorder`.
    pub fn record(&self, recorder: &dyn Recorder) {
        recorder.incr(keys::DISTRIBUTED_MESSAGES, self.messages);
        recorder.incr(keys::DISTRIBUTED_RETRIES, self.fault.retries_sent);
        recorder.incr(
            keys::DISTRIBUTED_PROVIDERS_HEARD,
            self.fault.providers_heard as u64,
        );
        recorder.incr(keys::NETSIM_DELIVERED, self.net.delivered);
        recorder.incr(keys::NETSIM_DROPPED, self.net.dropped);
        recorder.incr(keys::NETSIM_TIMERS_CANCELLED, self.net.timers_cancelled);
        for &(_, rtt_us) in &self.provider_rtt_us {
            recorder.observe(keys::DISTRIBUTED_RTT_MS, rtt_us as f64 / 1_000.0);
        }
        let local_us = self.local_phase.as_micros();
        recorder.span(keys::SPAN_DISTRIBUTED_LOCAL, 0, local_us);
        recorder.span(
            keys::SPAN_DISTRIBUTED_GLOBAL,
            local_us,
            local_us + self.global_phase.as_micros(),
        );
    }
}

struct ProviderState {
    model: QosModel,
    local: LocalRank,
    /// `(activity index, abstract activity)` pairs this provider hosts
    /// candidates for. The candidates themselves live in the provider's
    /// own capability-indexed [`registry`](Self::registry) and are
    /// re-discovered (not linearly scanned) on each first request.
    hosted: Vec<(usize, Activity)>,
    /// The taxonomy the shard registry is indexed under (shared with the
    /// workload, so index probes are a single posting-list lookup).
    ontology: Arc<Ontology>,
    /// This provider's shard of the service pool, as its own indexed
    /// registry.
    registry: ServiceRegistry,
    /// Shard-local [`ServiceId`] (dense, registration order) → the
    /// workload-global id the coordinator knows the candidate by.
    global_ids: Vec<ServiceId>,
    /// Match-degree memo shared across this provider's queries.
    cache: MatchCache,
    per_candidate_cost_us: u64,
    /// Ranking computed on the first request; retransmissions are
    /// answered from this cache (the work is not redone, only the reply
    /// leg is repeated).
    digests: Option<Vec<(usize, QosLevels, Vec<ServiceCandidate>)>>,
}

impl ProviderState {
    /// Local-selection phase: discover this provider's candidates for
    /// every hosted activity through the capability index (with memoised
    /// match degrees), then rank each activity's pool. Returns the
    /// digests plus the modelled work in candidate×property units.
    fn rank_shard(
        &self,
        properties: &[PropertyId],
        preferences: &Preferences,
    ) -> (Vec<(usize, QosLevels, Vec<ServiceCandidate>)>, u64) {
        let discovery = Discovery::with_cache(&self.ontology, &self.model, &self.cache);
        let mut digests = Vec::with_capacity(self.hosted.len());
        let mut work_units = 0u64;
        for (activity_index, activity) in &self.hosted {
            let found = discovery.discover(&self.registry, &DiscoveryQuery::new(activity));
            let cands: Vec<ServiceCandidate> = found
                .iter()
                .map(|m| {
                    let id = self
                        .global_ids
                        .get(m.service.index())
                        .copied()
                        .unwrap_or(m.service);
                    ServiceCandidate::new(id, m.effective_qos.clone())
                })
                .collect();
            let levels = self
                .local
                .rank(&self.model, &cands, properties, preferences);
            work_units += (cands.len() * properties.len()) as u64;
            digests.push((*activity_index, levels, cands));
        }
        (digests, work_units)
    }
}

struct CoordinatorState {
    model: QosModel,
    config: QassaConfig,
    task: UserTask,
    constraints: ConstraintSet,
    preferences: Preferences,
    properties: Vec<PropertyId>,
    approach: AggregationApproach,
    expected_replies: usize,
    /// Providers discovered at kickoff (all peers).
    providers: Vec<NodeId>,
    /// Providers whose digest was merged (duplicates are ignored).
    answered: BTreeSet<NodeId>,
    /// First-digest arrival instants, in answer order — the basis of the
    /// report's per-provider round-trip times.
    digest_arrivals: Vec<(NodeId, SimTime)>,
    merged: Vec<QosLevels>,
    candidates: Vec<Vec<ServiceCandidate>>,
    per_candidate_cost_us: u64,
    reply_timeout_ms: u64,
    retry: RetryPolicy,
    retry_round: u32,
    retry_pending: bool,
    deadline_pending: bool,
    retries_sent: u64,
    rng: StdRng,
    started_at: SimTime,
    local_done_at: Option<SimTime>,
    global_done_at: Option<SimTime>,
    outcome: Option<Result<SelectionOutcome, crate::SelectionError>>,
}

impl CoordinatorState {
    fn request(&self) -> Message {
        Message::SelectRequest {
            properties: self.properties.clone(),
            preferences: self.preferences.clone(),
        }
    }

    /// The absolute instant of the reply deadline.
    fn deadline_at(&self) -> SimTime {
        self.started_at + SimDuration::from_millis(self.reply_timeout_ms)
    }

    /// Schedules the next retransmission round if one remains and it
    /// would fire before the reply deadline.
    fn schedule_retry(&mut self, ctx: &mut NodeContext<'_, Message>) {
        if self.retry_round >= self.retry.max_retries {
            return;
        }
        let jitter_us = if self.retry.jitter_ms == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.retry.jitter_ms * 1_000)
        };
        let delay =
            SimDuration::from_micros(self.retry.backoff_ms(self.retry_round) * 1_000 + jitter_us);
        if ctx.now() + delay < self.deadline_at() {
            ctx.set_timer(delay, RETRY_TIMER);
            self.retry_pending = true;
        }
    }

    /// Cancels whichever of the deadline/retry timers are still pending,
    /// so a completed run leaves no stale events in the queue.
    fn cancel_timers(&mut self, ctx: &mut NodeContext<'_, Message>) {
        if self.deadline_pending {
            ctx.cancel_timer(DEADLINE_TIMER);
            self.deadline_pending = false;
        }
        if self.retry_pending {
            ctx.cancel_timer(RETRY_TIMER);
            self.retry_pending = false;
        }
    }

    /// Runs the global phase over whatever digests arrived.
    fn finish(&mut self, ctx: &mut NodeContext<'_, Message>) {
        self.local_done_at = Some(ctx.now());

        // Global phase on the user device.
        let total: u64 = self.candidates.iter().map(|c| c.len() as u64).sum();
        let props = self.constraints.len().max(self.preferences.len()).max(1) as u64;
        let work = SimDuration::from_micros(total * props * self.per_candidate_cost_us / 4);
        ctx.compute(work);

        let problem = SelectionProblem::new(&self.task)
            .with_candidates(self.candidates.clone())
            .with_constraints(self.constraints.clone())
            .with_preferences(self.preferences.clone())
            .with_approach(self.approach);
        let qassa = Qassa::with_config(&self.model, self.config);
        let result = qassa.select_with_levels(&problem, &self.merged);
        self.global_done_at = Some(ctx.now() + ctx.compute_debt());
        self.outcome = Some(result);
    }
}

enum Role {
    Provider(Box<ProviderState>),
    Coordinator(Box<CoordinatorState>),
}

impl NodeBehaviour<Message> for Role {
    fn on_start(&mut self, ctx: &mut NodeContext<'_, Message>) {
        if let Role::Coordinator(state) = self {
            // Kickoff happens *inside* the simulation: every request
            // transits a real link and can be delayed, jittered or lost,
            // symmetrically with the digest leg.
            state.started_at = ctx.now();
            state.providers = ctx.peers().to_vec();
            let request = state.request();
            for i in 0..state.providers.len() {
                ctx.send(state.providers[i], request.clone());
            }
            // Churn tolerance: proceed with whatever digests arrived once
            // the reply deadline passes.
            ctx.set_timer(
                SimDuration::from_millis(state.reply_timeout_ms),
                DEADLINE_TIMER,
            );
            state.deadline_pending = true;
            if state.retry.is_enabled() {
                state.schedule_retry(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_, Message>, timer: u64) {
        let Role::Coordinator(state) = self else {
            return;
        };
        match timer {
            DEADLINE_TIMER => {
                state.deadline_pending = false;
                if state.outcome.is_none() {
                    state.cancel_timers(ctx);
                    state.finish(ctx);
                }
            }
            RETRY_TIMER => {
                state.retry_pending = false;
                if state.outcome.is_some() {
                    return;
                }
                let request = state.request();
                let unanswered: Vec<NodeId> = state
                    .providers
                    .iter()
                    .copied()
                    .filter(|p| !state.answered.contains(p))
                    .collect();
                for &p in &unanswered {
                    ctx.send(p, request.clone());
                }
                state.retries_sent += unanswered.len() as u64;
                state.retry_round += 1;
                state.schedule_retry(ctx);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut NodeContext<'_, Message>, from: NodeId, msg: Message) {
        match (self, msg) {
            (
                Role::Provider(state),
                Message::SelectRequest {
                    properties,
                    preferences,
                },
            ) => {
                if state.digests.is_none() {
                    let (digests, work_units) = state.rank_shard(&properties, &preferences);
                    ctx.compute(SimDuration::from_micros(
                        work_units * state.per_candidate_cost_us,
                    ));
                    state.digests = Some(digests);
                }
                let digests = state.digests.clone().unwrap_or_default();
                ctx.send(from, Message::LocalDigest { digests });
            }
            (Role::Coordinator(state), Message::LocalDigest { digests }) => {
                if state.outcome.is_some() || !state.answered.insert(from) {
                    // Late (post-deadline) or duplicate digest.
                    return;
                }
                state.digest_arrivals.push((from, ctx.now()));
                for (activity, levels, cands) in digests {
                    state.merged[activity].merge(levels);
                    state.candidates[activity].extend(cands);
                }
                if state.answered.len() == state.expected_replies {
                    state.cancel_timers(ctx);
                    state.finish(ctx);
                }
            }
            _ => {}
        }
    }
}

/// Drives distributed QASSA runs over the network simulator.
#[derive(Debug, Clone, Copy)]
pub struct DistributedQassa<'a> {
    model: &'a QosModel,
    config: QassaConfig,
}

impl<'a> DistributedQassa<'a> {
    /// Creates a driver with the default QASSA configuration.
    pub fn new(model: &'a QosModel) -> Self {
        DistributedQassa {
            model,
            config: QassaConfig::default(),
        }
    }

    /// Overrides the QASSA configuration.
    pub fn with_config(mut self, config: QassaConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the protocol for `workload` under `setup`, deterministically
    /// from `seed` (link sampling and retry jitter both derive from it).
    ///
    /// # Errors
    ///
    /// Propagates structural selection errors (e.g. an activity whose
    /// candidates reached the coordinator from no provider) and reports
    /// [`SelectionError::ProtocolAborted`](crate::SelectionError) when the
    /// simulator exhausts its event cap before the protocol completes.
    ///
    /// # Panics
    ///
    /// Panics if `setup.providers == 0`.
    pub fn run(
        &self,
        workload: &Workload,
        setup: &DistributedSetup,
        seed: u64,
    ) -> Result<DistributedReport, crate::SelectionError> {
        self.run_recorded(workload, setup, seed, None)
    }

    /// [`DistributedQassa::run`] with an optional [`Recorder`]: protocol
    /// counters, the per-provider RTT histogram and the phase spans (on
    /// the simulated clock) are flushed after the run completes, so
    /// instrumentation can never perturb protocol counts or timing.
    ///
    /// # Errors
    ///
    /// As [`DistributedQassa::run`].
    ///
    /// # Panics
    ///
    /// Panics if `setup.providers == 0`.
    pub fn run_recorded(
        &self,
        workload: &Workload,
        setup: &DistributedSetup,
        seed: u64,
        recorder: Option<&dyn Recorder>,
    ) -> Result<DistributedReport, crate::SelectionError> {
        assert!(setup.providers > 0, "at least one provider is required");
        let n_activities = workload.task().activity_count();

        // Shard candidates round-robin over providers.
        let mut shards: Vec<Vec<(usize, Vec<ServiceCandidate>)>> =
            vec![(0..n_activities).map(|a| (a, Vec::new())).collect(); setup.providers];
        for (activity, cands) in workload.candidates().iter().enumerate() {
            for (i, c) in cands.iter().enumerate() {
                shards[i % setup.providers][activity].1.push(c.clone());
            }
        }
        for shard in &mut shards {
            shard.retain(|(_, cands)| !cands.is_empty());
        }
        let expected_replies = setup.providers;

        let problem = workload.problem();
        let properties = problem.properties();

        let mut sim: Simulation<Message, Role> = Simulation::new(seed);
        sim.set_default_link(setup.link);
        if let Some((at_ms, link)) = setup.link_after {
            sim.set_default_link_at(SimDuration::from_millis(at_ms), link);
        }
        if let Some(cap) = setup.max_sim_events {
            sim.set_max_events(cap);
        }

        let coordinator = sim.add_node(
            setup.coordinator_profile,
            Role::Coordinator(Box::new(CoordinatorState {
                model: self.model.clone(),
                config: self.config,
                task: workload.task().clone(),
                constraints: problem.constraints().clone(),
                preferences: problem.preferences().clone(),
                properties: properties.clone(),
                approach: problem.approach(),
                expected_replies,
                providers: Vec::new(),
                answered: BTreeSet::new(),
                digest_arrivals: Vec::new(),
                merged: vec![QosLevels::default(); n_activities],
                candidates: vec![Vec::new(); n_activities],
                per_candidate_cost_us: setup.per_candidate_cost_us,
                reply_timeout_ms: setup.reply_timeout_ms,
                retry: setup.retry,
                retry_round: 0,
                retry_pending: false,
                deadline_pending: false,
                retries_sent: 0,
                // Jitter draws must not perturb the link-sampling stream,
                // so the coordinator carries its own seeded generator.
                rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
                started_at: SimTime::ZERO,
                local_done_at: None,
                global_done_at: None,
                outcome: None,
            })),
        );
        let ontology = Arc::clone(workload.ontology());
        let activities: Vec<Activity> = workload
            .task()
            .activities()
            .map(|r| r.activity().clone())
            .collect();
        for shard in shards {
            // Each provider advertises its shard in its own
            // capability-indexed registry; ranking then goes through
            // indexed discovery instead of a linear scan of the shard.
            let mut registry = ServiceRegistry::with_ontology(Arc::clone(&ontology));
            let mut global_ids = Vec::new();
            let mut hosted = Vec::with_capacity(shard.len());
            for (activity, cands) in shard {
                let act = activities[activity].clone();
                for c in &cands {
                    let desc = match workload.registry().get(c.id()) {
                        Some(d) => d.clone(),
                        // Candidate without a published description (not
                        // produced by workload generation, but cheap to
                        // tolerate): advertise it under the activity's
                        // own required function.
                        None => {
                            let f = act.function();
                            ServiceDescription::new(
                                format!("candidate-{activity}-{}", global_ids.len()),
                                &format!("{}#{}", f.namespace(), f.local_name()),
                            )
                            .with_qos_vector(c.qos().clone())
                        }
                    };
                    registry.register(desc);
                    global_ids.push(c.id());
                }
                hosted.push((activity, act));
            }
            sim.add_node(
                setup.provider_profile,
                Role::Provider(Box::new(ProviderState {
                    model: self.model.clone(),
                    local: self.config.local,
                    hosted,
                    ontology: Arc::clone(&ontology),
                    registry,
                    global_ids,
                    cache: MatchCache::new(),
                    per_candidate_cost_us: setup.per_candidate_cost_us,
                    digests: None,
                })),
            );
        }

        let run_result = sim.run_checked();
        let sim_events = match run_result {
            Ok(processed) => processed,
            Err(cap) => cap.processed,
        };

        let Role::Coordinator(state) = sim.node(coordinator) else {
            unreachable!("coordinator role is fixed");
        };
        let outcome = match &state.outcome {
            Some(result) => result.clone()?,
            // The event cap cut the run short before the deadline timer
            // could close the protocol: surface it instead of panicking.
            None => {
                return Err(crate::SelectionError::ProtocolAborted {
                    processed_events: sim_events,
                })
            }
        };
        let local_done = state.local_done_at.unwrap_or(state.started_at);
        let global_done = state.global_done_at.unwrap_or(local_done);
        let fault = FaultReport {
            providers_expected: state.providers.len(),
            providers_heard: state.answered.len(),
            missing_providers: state
                .providers
                .iter()
                .copied()
                .filter(|p| !state.answered.contains(p))
                .collect(),
            retries_sent: state.retries_sent,
            activity_coverage: (0..n_activities)
                .map(|activity| ActivityCoverage {
                    activity,
                    received: state.candidates[activity].len(),
                    expected: workload.candidates()[activity].len(),
                })
                .collect(),
        };
        let mut provider_rtt_us: Vec<(u32, u64)> = state
            .digest_arrivals
            .iter()
            .map(|&(node, at)| {
                let rtt = at.since(state.started_at).as_micros();
                (u32::try_from(node.as_u64()).unwrap_or(u32::MAX), rtt)
            })
            .collect();
        provider_rtt_us.sort_unstable();
        let report = DistributedReport {
            outcome,
            local_phase: local_done.since(state.started_at),
            global_phase: global_done.since(local_done),
            messages: sim.stats().sent,
            sim_events,
            provider_rtt_us,
            net: sim.stats(),
            sim_time_us: sim.now().as_micros(),
            fault,
        };
        if let Some(rec) = recorder {
            report.record(rec);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn small() -> (QosModel, Workload) {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .activities(3)
            .services_per_activity(30)
            .build(&m, 5);
        (m, w)
    }

    #[test]
    fn distributed_matches_centralised_feasibility() {
        let (m, w) = small();
        let central = Qassa::new(&m).select(&w.problem()).unwrap();
        let report = DistributedQassa::new(&m)
            .run(&w, &DistributedSetup::default(), 1)
            .unwrap();
        assert_eq!(report.outcome.feasible, central.feasible);
        assert_eq!(report.outcome.assignment.len(), 3);
        assert!(!report.fault.is_degraded());
        assert_eq!(report.fault.retries_sent, 0);
    }

    #[test]
    fn local_phase_shrinks_with_more_providers() {
        let (m, w) = small();
        let few = DistributedSetup {
            providers: 2,
            ..DistributedSetup::default()
        };
        let many = DistributedSetup {
            providers: 10,
            ..DistributedSetup::default()
        };
        let d = DistributedQassa::new(&m);
        let t_few = d.run(&w, &few, 1).unwrap().local_phase;
        let t_many = d.run(&w, &many, 1).unwrap().local_phase;
        assert!(
            t_many < t_few,
            "local phase with 10 providers ({t_many}) should beat 2 ({t_few})"
        );
    }

    #[test]
    fn all_candidates_reach_the_coordinator() {
        let (m, w) = small();
        let report = DistributedQassa::new(&m)
            .run(&w, &DistributedSetup::default(), 2)
            .unwrap();
        let total: usize = report.outcome.ranked.iter().map(Vec::len).sum();
        assert_eq!(total, 3 * 30);
        assert!(report.fault.full_coverage());
        assert_eq!(report.fault.coverage_ratio(), 1.0);
    }

    #[test]
    fn message_count_scales_with_providers() {
        let (m, w) = small();
        let setup = DistributedSetup {
            providers: 7,
            ..DistributedSetup::default()
        };
        let report = DistributedQassa::new(&m).run(&w, &setup, 3).unwrap();
        // 7 requests + 7 digests — the kickoff is a real protocol send,
        // not an external injection, and no retries fire without loss.
        assert_eq!(report.messages, 14);
    }

    #[test]
    fn deterministic_per_seed() {
        let (m, w) = small();
        let d = DistributedQassa::new(&m);
        let a = d.run(&w, &DistributedSetup::default(), 9).unwrap();
        let b = d.run(&w, &DistributedSetup::default(), 9).unwrap();
        assert_eq!(a.local_phase, b.local_phase);
        assert_eq!(a.outcome.assignment, b.outcome.assignment);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.fault, b.fault);
    }

    #[test]
    fn request_leg_pays_link_latency() {
        // With a 40 ms link and negligible compute, the local phase must
        // include both the request and the digest transits (≥ 80 ms) —
        // an externally injected kickoff would show only ~40 ms.
        let (m, w) = small();
        let setup = DistributedSetup {
            link: LinkConfig::new(40.0, 0.0),
            per_candidate_cost_us: 0,
            ..DistributedSetup::default()
        };
        let report = DistributedQassa::new(&m).run(&w, &setup, 4).unwrap();
        assert!(
            report.local_phase >= SimDuration::from_millis(80),
            "local phase {} must cover two 40 ms transits",
            report.local_phase
        );
    }

    #[test]
    fn event_cap_surfaces_as_protocol_aborted() {
        // A run whose simulator hits the event cap before the protocol
        // completes must return a structured error, not panic on a
        // missing outcome.
        let (m, w) = small();
        let setup = DistributedSetup {
            max_sim_events: Some(3),
            ..DistributedSetup::default()
        };
        let err = DistributedQassa::new(&m)
            .run(&w, &setup, 5)
            .expect_err("3 events cannot complete the protocol");
        assert!(matches!(
            err,
            crate::SelectionError::ProtocolAborted {
                processed_events: 3
            }
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn dead_network_without_retries_completes_degraded() {
        // Loss 1.0 and no retries: the deadline closes the protocol with
        // zero digests; the report (or a structural error for an empty
        // pool) must say so rather than hanging or panicking.
        let (m, w) = small();
        let setup = DistributedSetup {
            link: LinkConfig::new(5.0, 1.0).with_loss(1.0),
            retry: RetryPolicy::disabled(),
            reply_timeout_ms: 100,
            ..DistributedSetup::default()
        };
        match DistributedQassa::new(&m).run(&w, &setup, 5) {
            Ok(report) => {
                assert!(report.fault.is_degraded());
                assert_eq!(report.fault.providers_heard, 0);
            }
            Err(e) => assert!(matches!(e, crate::SelectionError::NoCandidates { .. })),
        }
    }

    #[test]
    fn retries_recover_lost_messages() {
        let (m, w) = small();
        let lossy = DistributedSetup {
            providers: 6,
            link: LinkConfig::new(5.0, 1.0).with_loss(0.3),
            ..DistributedSetup::default()
        };
        let report = DistributedQassa::new(&m).run(&w, &lossy, 11).unwrap();
        assert!(report.fault.retries_sent > 0, "loss must trigger retries");
        assert!(
            report.fault.full_coverage(),
            "retries must restore coverage"
        );
    }

    #[test]
    fn without_retries_loss_degrades_the_outcome() {
        let (m, w) = small();
        let lossy = DistributedSetup {
            providers: 6,
            link: LinkConfig::new(5.0, 1.0).with_loss(0.5),
            reply_timeout_ms: 400,
            retry: RetryPolicy::disabled(),
            ..DistributedSetup::default()
        };
        match DistributedQassa::new(&m).run(&w, &lossy, 11) {
            Ok(report) => {
                assert!(report.fault.is_degraded());
                assert_eq!(report.fault.retries_sent, 0);
                assert_eq!(
                    report.fault.providers_heard + report.fault.missing_providers.len(),
                    report.fault.providers_expected
                );
            }
            Err(e) => assert!(matches!(e, crate::SelectionError::NoCandidates { .. })),
        }
    }

    #[test]
    fn provider_rtts_cover_every_answering_provider() {
        let (m, w) = small();
        let setup = DistributedSetup {
            providers: 7,
            ..DistributedSetup::default()
        };
        let report = DistributedQassa::new(&m).run(&w, &setup, 3).unwrap();
        assert_eq!(report.provider_rtt_us.len(), 7);
        // Node ids are ascending and every RTT covers at least the two
        // link transits of the request/digest legs.
        for window in report.provider_rtt_us.windows(2) {
            assert!(window[0].0 < window[1].0);
        }
        for &(_, rtt) in &report.provider_rtt_us {
            assert!(rtt > 0);
        }
        // Clean run: both protocol timers were cancelled, and the
        // network totals agree with the message count.
        assert_eq!(report.net.timers_cancelled, 2);
        assert_eq!(report.net.sent, report.messages);
        assert!(report.sim_time_us > 0);
    }

    #[test]
    fn recorder_never_changes_protocol_counts() {
        use qasom_obs::{keys, MemoryRecorder};
        let (m, w) = small();
        let lossy = DistributedSetup {
            providers: 6,
            link: LinkConfig::new(5.0, 1.0).with_loss(0.3),
            ..DistributedSetup::default()
        };
        let d = DistributedQassa::new(&m);
        let plain = d.run(&w, &lossy, 11).unwrap();
        let rec = MemoryRecorder::new();
        let recorded = d.run_recorded(&w, &lossy, 11, Some(&rec)).unwrap();
        assert_eq!(plain.messages, recorded.messages);
        assert_eq!(plain.sim_events, recorded.sim_events);
        assert_eq!(plain.local_phase, recorded.local_phase);
        assert_eq!(plain.fault, recorded.fault);
        assert_eq!(plain.provider_rtt_us, recorded.provider_rtt_us);
        assert_eq!(plain.outcome.assignment, recorded.outcome.assignment);
        let snap = rec.snapshot().expect("memory recorder snapshots");
        assert_eq!(snap.counter(keys::DISTRIBUTED_MESSAGES), plain.messages);
        assert_eq!(
            snap.counter(keys::DISTRIBUTED_RETRIES),
            plain.fault.retries_sent
        );
        assert_eq!(
            snap.histograms[keys::DISTRIBUTED_RTT_MS].count(),
            plain.provider_rtt_us.len() as u64
        );
        assert_eq!(snap.spans.len(), 2);
    }

    #[test]
    fn report_section_mirrors_the_report() {
        let (m, w) = small();
        let report = DistributedQassa::new(&m)
            .run(&w, &DistributedSetup::default(), 2)
            .unwrap();
        let section = report.to_section();
        assert_eq!(section.providers, 10);
        assert_eq!(section.messages, report.messages);
        assert_eq!(section.coverage_ratio, 1.0);
        assert!(!section.degraded);
        assert!(section.coverage.is_empty());
        assert_eq!(section.net.sent, report.messages);
        // The section serialises deterministically.
        assert_eq!(
            section.to_json().to_compact(),
            report.to_section().to_json().to_compact()
        );
    }

    #[test]
    fn completed_run_leaves_no_stale_timer_events() {
        // With no loss the protocol finishes long before the 5 s reply
        // deadline; the deadline and pending retry timers are cancelled,
        // so the processed-event count is exactly the protocol's work:
        // (1 + P) node starts, P request deliveries, P digest deliveries.
        let (m, w) = small();
        let setup = DistributedSetup {
            providers: 7,
            ..DistributedSetup::default()
        };
        let report = DistributedQassa::new(&m).run(&w, &setup, 6).unwrap();
        assert_eq!(report.sim_events, 1 + 3 * 7);
    }
}
