//! Deterministic 1-D K-means, the clustering primitive of QASSA's local
//! selection phase.

use qasom_qos::Tendency;

/// Result of clustering scalar values into `k` quality bands.
///
/// Clusters are relabelled so that cluster `0` has the smallest centroid;
/// [`Clustering::ranks`] converts labels into quality ranks (rank `0` =
/// best) under a property's tendency.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centroids: Vec<f64>,
}

impl Clustering {
    /// Number of clusters actually produced (≤ requested `k`).
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster label of input point `i` (labels ordered by ascending
    /// centroid).
    pub fn assignment(&self, i: usize) -> usize {
        self.assignments[i]
    }

    /// All labels, parallel to the input slice.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Centroid of cluster `label`.
    pub fn centroid(&self, label: usize) -> f64 {
        self.centroids[label]
    }

    /// Quality rank (0 = best band) of every input point under the given
    /// tendency: ascending centroids are best for lower-is-better
    /// properties, descending for higher-is-better ones.
    pub fn ranks(&self, tendency: Tendency) -> Vec<usize> {
        let k = self.k();
        self.assignments
            .iter()
            .map(|&label| match tendency {
                Tendency::LowerBetter => label,
                Tendency::HigherBetter => k - 1 - label,
            })
            .collect()
    }
}

/// Reusable scratch buffers for repeated K-means runs.
///
/// The local selection phase clusters one column per (activity, property)
/// pair; at 10k+ candidates the per-call `Vec` churn dominates. One
/// scratch, cleared and refilled per column, keeps the hot loop
/// allocation-free after the first activity.
#[derive(Debug, Clone, Default)]
pub struct KmeansScratch {
    sorted: Vec<f64>,
    centroids: Vec<f64>,
    assignments: Vec<usize>,
    sums: Vec<f64>,
    counts: Vec<usize>,
    order: Vec<usize>,
    relabel: Vec<usize>,
}

impl KmeansScratch {
    /// A fresh, empty scratch arena.
    pub fn new() -> Self {
        KmeansScratch::default()
    }

    /// Final labels of the last run (relabelled, ascending-centroid
    /// order), parallel to its input slice.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final centroids of the last run, ascending, empty clusters
    /// dropped.
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }
}

/// Clusters `values` into at most `k` bands with Lloyd's algorithm.
///
/// Deterministic: centroids are initialised at evenly spaced quantiles of
/// the sorted input. When the input has fewer than `k` distinct values,
/// the effective `k` shrinks to the distinct count, and a cluster that
/// loses every point mid-iteration is dropped from the result rather
/// than receiving a `0.0 / 0` (`NaN`) centroid update. An empty input
/// yields an empty clustering.
///
/// # Panics
///
/// Panics when `k == 0` with a non-empty input, or when a value is not
/// finite.
///
/// # Examples
///
/// ```
/// use qasom_selection::kmeans_1d;
///
/// let values = [1.0, 1.1, 0.9, 10.0, 10.2, 9.8];
/// let c = kmeans_1d(&values, 2, 50);
/// assert_eq!(c.k(), 2);
/// assert_eq!(c.assignment(0), c.assignment(1));
/// assert_ne!(c.assignment(0), c.assignment(3));
/// ```
pub fn kmeans_1d(values: &[f64], k: usize, max_iters: usize) -> Clustering {
    let mut scratch = KmeansScratch::new();
    kmeans_1d_with(values, k, max_iters, &mut scratch);
    Clustering {
        assignments: scratch.assignments,
        centroids: scratch.centroids,
    }
}

/// [`kmeans_1d`] into caller-owned buffers: the hot-path variant.
///
/// After the call, `scratch.assignments()` holds the relabelled cluster
/// labels (parallel to `values`) and `scratch.centroids()` the ascending
/// centroids; the returned value is the effective cluster count. No
/// allocation happens once the scratch has grown to the workload's size.
///
/// # Panics
///
/// Same conditions as [`kmeans_1d`].
pub fn kmeans_1d_with(
    values: &[f64],
    k: usize,
    max_iters: usize,
    scratch: &mut KmeansScratch,
) -> usize {
    scratch.assignments.clear();
    scratch.centroids.clear();
    if values.is_empty() {
        return 0;
    }
    assert!(k > 0, "k must be positive");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "values must be finite"
    );

    scratch.sorted.clear();
    scratch.sorted.extend_from_slice(values);
    scratch.sorted.sort_by(f64::total_cmp);
    scratch.sorted.dedup();
    let k = k.min(scratch.sorted.len());

    // Quantile initialisation over distinct values.
    for i in 0..k {
        let pos = (i as f64 + 0.5) / k as f64 * (scratch.sorted.len() as f64 - 1.0);
        scratch.centroids.push(scratch.sorted[pos.round() as usize]);
    }
    scratch.centroids.dedup();

    scratch.assignments.resize(values.len(), 0);
    let kc = scratch.centroids.len();
    scratch.sums.clear();
    scratch.sums.resize(kc, 0.0);
    scratch.counts.clear();
    scratch.counts.resize(kc, 0);
    for _ in 0..max_iters.max(1) {
        // Assignment step.
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let nearest = scratch
                .centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (v - **a).abs().total_cmp(&(v - **b).abs()))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if scratch.assignments[i] != nearest {
                scratch.assignments[i] = nearest;
                changed = true;
            }
        }
        // Update step. A cluster that lost every point keeps its old
        // centroid here (no 0/0 NaN); the relabel pass below drops it
        // from the result entirely.
        scratch.sums.iter_mut().for_each(|s| *s = 0.0);
        scratch.counts.iter_mut().for_each(|c| *c = 0);
        for (i, &v) in values.iter().enumerate() {
            scratch.sums[scratch.assignments[i]] += v;
            scratch.counts[scratch.assignments[i]] += 1;
        }
        for (j, c) in scratch.centroids.iter_mut().enumerate() {
            if scratch.counts[j] > 0 {
                *c = scratch.sums[j] / scratch.counts[j] as f64;
            }
        }
        if !changed {
            break;
        }
    }

    // Drop empty clusters and relabel by ascending centroid. `counts`
    // reflects the final assignment pass, so `counts[j] > 0` is exactly
    // "cluster j survived". Plain index vectors keep this deterministic
    // (no hashed iteration order).
    scratch.order.clear();
    for j in 0..kc {
        if scratch.counts[j] > 0 {
            scratch.order.push(j);
        }
    }
    let centroids = &scratch.centroids;
    scratch
        .order
        .sort_by(|&a, &b| centroids[a].total_cmp(&centroids[b]));
    scratch.relabel.clear();
    scratch.relabel.resize(kc, usize::MAX);
    for (new, &old) in scratch.order.iter().enumerate() {
        scratch.relabel[old] = new;
    }
    for a in scratch.assignments.iter_mut() {
        *a = scratch.relabel[*a];
    }
    // Compact the surviving centroids through the (idle) sums buffer so
    // the reorder never reads a slot it already overwrote.
    scratch.sums.clear();
    for &old in &scratch.order {
        scratch.sums.push(scratch.centroids[old]);
    }
    scratch.centroids.clear();
    scratch.centroids.extend_from_slice(&scratch.sums);
    debug_assert!(scratch.centroids.iter().all(|c| c.is_finite()));
    scratch.centroids.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_obvious_bands() {
        let values = [1.0, 2.0, 1.5, 100.0, 101.0, 99.0, 50.0, 51.0];
        let c = kmeans_1d(&values, 3, 100);
        assert_eq!(c.k(), 3);
        assert_eq!(c.assignment(0), 0);
        assert_eq!(c.assignment(6), 1);
        assert_eq!(c.assignment(3), 2);
    }

    #[test]
    fn centroids_are_sorted_ascending() {
        let values = [9.0, 1.0, 5.0, 9.5, 1.2, 5.1];
        let c = kmeans_1d(&values, 3, 100);
        for w in (0..c.k()).collect::<Vec<_>>().windows(2) {
            assert!(c.centroid(w[0]) < c.centroid(w[1]));
        }
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let values = [5.0, 5.0, 5.0];
        let c = kmeans_1d(&values, 4, 10);
        assert_eq!(c.k(), 1);
        assert!(c.assignments().iter().all(|&a| a == 0));
    }

    #[test]
    fn degenerate_normalised_column_stays_finite() {
        // A min == max property column normalises to a constant 0.5
        // (the neutral score); clustering it must yield one finite
        // band, never a NaN centroid.
        let values = [0.5; 8];
        let c = kmeans_1d(&values, 4, 50);
        assert_eq!(c.k(), 1);
        assert!(c.centroid(0).is_finite());
        assert_eq!(c.centroid(0), 0.5);
    }

    #[test]
    fn empty_clusters_are_dropped_not_nan() {
        // Two tight value groups under k = 5: at most two clusters can
        // survive, and every surviving centroid must be finite.
        let values = [1.0, 1.0, 1.0001, 40.0, 40.0, 40.0001];
        let c = kmeans_1d(&values, 5, 100);
        assert!(c.k() <= 4);
        for label in 0..c.k() {
            assert!(c.centroid(label).is_finite(), "NaN centroid at {label}");
            assert!(c.assignments().contains(&label), "empty cluster {label}");
        }
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let c = kmeans_1d(&[], 3, 10);
        assert_eq!(c.k(), 0);
        assert!(c.assignments().is_empty());
    }

    #[test]
    fn ranks_invert_for_higher_better() {
        let values = [1.0, 10.0];
        let c = kmeans_1d(&values, 2, 10);
        assert_eq!(c.ranks(Tendency::LowerBetter), vec![0, 1]);
        assert_eq!(c.ranks(Tendency::HigherBetter), vec![1, 0]);
    }

    #[test]
    fn deterministic_across_calls() {
        let values: Vec<f64> = (0..100).map(|i| f64::from(i % 17) * 3.3).collect();
        assert_eq!(kmeans_1d(&values, 4, 100), kmeans_1d(&values, 4, 100));
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        let mut scratch = KmeansScratch::new();
        let columns: Vec<Vec<f64>> = vec![
            (0..50).map(f64::from).collect(),
            vec![0.5; 7],
            (0..31).map(|i| f64::from(i % 3)).collect(),
        ];
        for values in &columns {
            let fresh = kmeans_1d(values, 4, 100);
            let k = kmeans_1d_with(values, 4, 100, &mut scratch);
            assert_eq!(k, fresh.k());
            assert_eq!(scratch.assignments(), fresh.assignments());
            assert_eq!(scratch.centroids(), &fresh.centroids[..]);
        }
    }

    #[test]
    fn partition_covers_all_points() {
        let values: Vec<f64> = (0..57).map(f64::from).collect();
        let c = kmeans_1d(&values, 4, 100);
        assert_eq!(c.assignments().len(), values.len());
        assert!(c.assignments().iter().all(|&a| a < c.k()));
        // Every cluster is non-empty.
        for label in 0..c.k() {
            assert!(c.assignments().contains(&label));
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = kmeans_1d(&[1.0, f64::NAN], 2, 10);
    }
}
