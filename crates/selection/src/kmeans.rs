//! Deterministic 1-D K-means, the clustering primitive of QASSA's local
//! selection phase.

use qasom_qos::Tendency;

/// Result of clustering scalar values into `k` quality bands.
///
/// Clusters are relabelled so that cluster `0` has the smallest centroid;
/// [`Clustering::ranks`] converts labels into quality ranks (rank `0` =
/// best) under a property's tendency.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centroids: Vec<f64>,
}

impl Clustering {
    /// Number of clusters actually produced (≤ requested `k`).
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster label of input point `i` (labels ordered by ascending
    /// centroid).
    pub fn assignment(&self, i: usize) -> usize {
        self.assignments[i]
    }

    /// All labels, parallel to the input slice.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Centroid of cluster `label`.
    pub fn centroid(&self, label: usize) -> f64 {
        self.centroids[label]
    }

    /// Quality rank (0 = best band) of every input point under the given
    /// tendency: ascending centroids are best for lower-is-better
    /// properties, descending for higher-is-better ones.
    pub fn ranks(&self, tendency: Tendency) -> Vec<usize> {
        let k = self.k();
        self.assignments
            .iter()
            .map(|&label| match tendency {
                Tendency::LowerBetter => label,
                Tendency::HigherBetter => k - 1 - label,
            })
            .collect()
    }
}

/// Clusters `values` into at most `k` bands with Lloyd's algorithm.
///
/// Deterministic: centroids are initialised at evenly spaced quantiles of
/// the sorted input. When the input has fewer than `k` distinct values,
/// the effective `k` shrinks to the distinct count. An empty input yields
/// an empty clustering.
///
/// # Panics
///
/// Panics when `k == 0` with a non-empty input, or when a value is not
/// finite.
///
/// # Examples
///
/// ```
/// use qasom_selection::kmeans_1d;
///
/// let values = [1.0, 1.1, 0.9, 10.0, 10.2, 9.8];
/// let c = kmeans_1d(&values, 2, 50);
/// assert_eq!(c.k(), 2);
/// assert_eq!(c.assignment(0), c.assignment(1));
/// assert_ne!(c.assignment(0), c.assignment(3));
/// ```
pub fn kmeans_1d(values: &[f64], k: usize, max_iters: usize) -> Clustering {
    if values.is_empty() {
        return Clustering {
            assignments: Vec::new(),
            centroids: Vec::new(),
        };
    }
    assert!(k > 0, "k must be positive");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "values must be finite"
    );

    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    let k = k.min(sorted.len());

    // Quantile initialisation over distinct values.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let pos = (i as f64 + 0.5) / k as f64 * (sorted.len() as f64 - 1.0);
            sorted[pos.round() as usize]
        })
        .collect();
    centroids.dedup();

    let mut assignments = vec![0usize; values.len()];
    for _ in 0..max_iters.max(1) {
        // Assignment step.
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (v - **a).abs().total_cmp(&(v - **b).abs()))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, &v) in values.iter().enumerate() {
            sums[assignments[i]] += v;
            counts[assignments[i]] += 1;
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] > 0 {
                *c = sums[j] / counts[j] as f64;
            }
        }
        if !changed {
            break;
        }
    }

    // Drop empty clusters and relabel by ascending centroid.
    let mut used: Vec<usize> = assignments.to_vec();
    used.sort_unstable();
    used.dedup();
    let mut order: Vec<usize> = used.clone();
    order.sort_by(|&a, &b| centroids[a].total_cmp(&centroids[b]));
    let relabel: std::collections::HashMap<usize, usize> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let final_centroids: Vec<f64> = order.iter().map(|&old| centroids[old]).collect();
    let final_assignments: Vec<usize> = assignments.iter().map(|a| relabel[a]).collect();

    Clustering {
        assignments: final_assignments,
        centroids: final_centroids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_obvious_bands() {
        let values = [1.0, 2.0, 1.5, 100.0, 101.0, 99.0, 50.0, 51.0];
        let c = kmeans_1d(&values, 3, 100);
        assert_eq!(c.k(), 3);
        assert_eq!(c.assignment(0), 0);
        assert_eq!(c.assignment(6), 1);
        assert_eq!(c.assignment(3), 2);
    }

    #[test]
    fn centroids_are_sorted_ascending() {
        let values = [9.0, 1.0, 5.0, 9.5, 1.2, 5.1];
        let c = kmeans_1d(&values, 3, 100);
        for w in (0..c.k()).collect::<Vec<_>>().windows(2) {
            assert!(c.centroid(w[0]) < c.centroid(w[1]));
        }
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let values = [5.0, 5.0, 5.0];
        let c = kmeans_1d(&values, 4, 10);
        assert_eq!(c.k(), 1);
        assert!(c.assignments().iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let c = kmeans_1d(&[], 3, 10);
        assert_eq!(c.k(), 0);
        assert!(c.assignments().is_empty());
    }

    #[test]
    fn ranks_invert_for_higher_better() {
        let values = [1.0, 10.0];
        let c = kmeans_1d(&values, 2, 10);
        assert_eq!(c.ranks(Tendency::LowerBetter), vec![0, 1]);
        assert_eq!(c.ranks(Tendency::HigherBetter), vec![1, 0]);
    }

    #[test]
    fn deterministic_across_calls() {
        let values: Vec<f64> = (0..100).map(|i| f64::from(i % 17) * 3.3).collect();
        assert_eq!(kmeans_1d(&values, 4, 100), kmeans_1d(&values, 4, 100));
    }

    #[test]
    fn partition_covers_all_points() {
        let values: Vec<f64> = (0..57).map(f64::from).collect();
        let c = kmeans_1d(&values, 4, 100);
        assert_eq!(c.assignments().len(), values.len());
        assert!(c.assignments().iter().all(|&a| a < c.k()));
        // Every cluster is non-empty.
        for label in 0..c.k() {
            assert!(c.assignments().contains(&label));
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = kmeans_1d(&[1.0, f64::NAN], 2, 10);
    }
}
