//! Baseline selectors: the exact optimum (for optimality measurements)
//! and the cheap heuristics QASSA is compared against.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qasom_qos::utility::utility;
use qasom_qos::{Normalizer, Preferences};

use crate::{Qassa, SelectionError, SelectionOutcome, SelectionProblem, ServiceCandidate};

/// Errors specific to baseline selectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The problem is structurally invalid.
    Selection(SelectionError),
    /// The exhaustive search space exceeds the configured cap.
    TooLarge {
        /// Number of compositions the problem spans.
        combinations: u128,
        /// The configured cap.
        cap: u128,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Selection(e) => write!(f, "{e}"),
            BaselineError::TooLarge { combinations, cap } => write!(
                f,
                "exhaustive search over {combinations} compositions exceeds the cap of {cap}"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<SelectionError> for BaselineError {
    fn from(e: SelectionError) -> Self {
        BaselineError::Selection(e)
    }
}

/// Parameters of the [genetic baseline](Baselines::genetic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Population size (≥ 2).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability of crossing two parents (vs. cloning one).
    pub crossover_rate: f64,
    /// Number of elites copied unchanged each generation.
    pub elite: usize,
    /// RNG seed (the GA is deterministic per seed).
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 50,
            generations: 100,
            mutation_rate: 0.05,
            crossover_rate: 0.8,
            elite: 2,
            seed: 0,
        }
    }
}

/// Baseline selectors sharing QASSA's exact scoring (aggregation +
/// composition utility), so utilities are directly comparable.
#[derive(Debug, Clone, Copy)]
pub struct Baselines<'a> {
    model: &'a qasom_qos::QosModel,
    max_combinations: u128,
}

impl<'a> Baselines<'a> {
    /// Creates baselines with the default exhaustive cap (2 × 10⁶
    /// compositions).
    pub fn new(model: &'a qasom_qos::QosModel) -> Self {
        Baselines {
            model,
            max_combinations: 2_000_000,
        }
    }

    /// Overrides the exhaustive-search cap.
    pub fn with_max_combinations(mut self, cap: u128) -> Self {
        self.max_combinations = cap;
        self
    }

    /// **Exact optimum**: enumerates every composition, returning the
    /// feasible one with the highest utility (`feasible = false` with the
    /// least-violating composition when none exists). NP-hard by nature —
    /// this is the optimality yardstick of the evaluation, not a
    /// production selector.
    ///
    /// # Errors
    ///
    /// Fails on malformed problems or when the search space exceeds the
    /// cap.
    pub fn exhaustive(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<SelectionOutcome, BaselineError> {
        let qassa = Qassa::new(self.model);
        validate(problem)?;
        let combinations: u128 = problem
            .candidates()
            .iter()
            .map(|c| c.len() as u128)
            .product();
        if combinations > self.max_combinations {
            return Err(BaselineError::TooLarge {
                combinations,
                cap: self.max_combinations,
            });
        }

        let n = problem.candidates().len();
        let mut indices = vec![0usize; n];
        let mut best_feasible: Option<(f64, Vec<usize>)> = None;
        let mut best_any: Option<(usize, f64, Vec<usize>)> = None;

        loop {
            let assignment: Vec<ServiceCandidate> = indices
                .iter()
                .enumerate()
                .map(|(i, &j)| problem.candidates()[i][j].clone())
                .collect();
            let (aggregated, u) = qassa.evaluate(problem, &assignment);
            let violations: Vec<_> = problem.constraints().violations(&aggregated).collect();
            if violations.is_empty() {
                if best_feasible.as_ref().is_none_or(|(bu, _)| u > *bu) {
                    best_feasible = Some((u, indices.clone()));
                }
            } else {
                let sev = (violations.len(), -u);
                if best_any
                    .as_ref()
                    .is_none_or(|(bn, bu, _)| sev < (*bn, -*bu))
                {
                    best_any = Some((violations.len(), u, indices.clone()));
                }
            }

            // Odometer increment.
            let mut k = n;
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                indices[k] += 1;
                if indices[k] < problem.candidates()[k].len() {
                    break;
                }
                indices[k] = 0;
                if k == 0 {
                    return Ok(self.finish(problem, &qassa, best_feasible, best_any));
                }
            }
        }
    }

    fn finish(
        &self,
        problem: &SelectionProblem<'_>,
        qassa: &Qassa<'_>,
        best_feasible: Option<(f64, Vec<usize>)>,
        best_any: Option<(usize, f64, Vec<usize>)>,
    ) -> SelectionOutcome {
        let (feasible, indices) = match (best_feasible, best_any) {
            (Some((_, idx)), _) => (true, idx),
            (None, Some((_, _, idx))) => (false, idx),
            (None, None) => unreachable!("at least one composition exists"),
        };
        let assignment: Vec<ServiceCandidate> = indices
            .iter()
            .enumerate()
            .map(|(i, &j)| problem.candidates()[i][j].clone())
            .collect();
        let (aggregated, u) = qassa.evaluate(problem, &assignment);
        SelectionOutcome {
            assignment,
            aggregated,
            utility: u,
            feasible,
            levels_explored: 0,
            ranked: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// **Greedy / local-only** baseline: picks the highest-utility
    /// candidate of each activity independently (no global view), then
    /// reports whether the result happens to satisfy the constraints.
    ///
    /// # Errors
    ///
    /// Fails on malformed problems.
    pub fn greedy(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<SelectionOutcome, BaselineError> {
        validate(problem)?;
        let qassa = Qassa::new(self.model);
        let properties = problem.properties();
        let prefs = if problem.preferences().is_empty() {
            Preferences::uniform(properties.iter().copied())
        } else {
            problem.preferences().clone()
        };
        let assignment: Vec<ServiceCandidate> = problem
            .candidates()
            .iter()
            .enumerate()
            .map(|(activity, cands)| {
                let normalizer = Normalizer::fit(self.model, cands.iter().map(|c| c.qos()));
                cands
                    .iter()
                    .max_by(|a, b| {
                        utility(a.qos(), &normalizer, &prefs).total_cmp(&utility(
                            b.qos(),
                            &normalizer,
                            &prefs,
                        ))
                    })
                    .cloned()
                    .ok_or(BaselineError::Selection(SelectionError::NoCandidates {
                        activity,
                    }))
            })
            .collect::<Result<_, _>>()?;
        Ok(self.outcome_of(problem, &qassa, assignment))
    }

    /// **Random** baseline: a uniformly random composition (seeded).
    ///
    /// # Errors
    ///
    /// Fails on malformed problems.
    pub fn random(
        &self,
        problem: &SelectionProblem<'_>,
        seed: u64,
    ) -> Result<SelectionOutcome, BaselineError> {
        validate(problem)?;
        let qassa = Qassa::new(self.model);
        let mut rng = StdRng::seed_from_u64(seed);
        let assignment: Vec<ServiceCandidate> = problem
            .candidates()
            .iter()
            .map(|cands| cands[rng.gen_range(0..cands.len())].clone())
            .collect();
        Ok(self.outcome_of(problem, &qassa, assignment))
    }

    /// **Decomposed-constraints** baseline (the "local selection under
    /// local constraints" strategy of the related work): each global
    /// bound is split into a per-activity bound — `U/n` for additive
    /// properties, `U^(1/n)` for multiplicative ones, `U` for min/max/
    /// average — and every activity then independently picks its
    /// best-utility candidate among those meeting all local bounds.
    /// Linear-time, but the decomposition is conservative: it can reject
    /// mixes a global view accepts (and the uniform split ignores the
    /// task's actual pattern structure).
    ///
    /// # Errors
    ///
    /// Fails on malformed problems.
    pub fn decomposed(
        &self,
        problem: &SelectionProblem<'_>,
    ) -> Result<SelectionOutcome, BaselineError> {
        validate(problem)?;
        let qassa = Qassa::new(self.model);
        let n = problem.candidates().len() as f64;
        let local_bounds: Vec<qasom_qos::Constraint> = problem
            .constraints()
            .iter()
            .map(|c| {
                let op = self.model.def(c.property()).aggregation();
                let bound = match op {
                    qasom_qos::AggregationOp::Sum => c.bound() / n,
                    qasom_qos::AggregationOp::Product => {
                        if c.bound() > 0.0 {
                            c.bound().powf(1.0 / n)
                        } else {
                            c.bound()
                        }
                    }
                    _ => c.bound(),
                };
                qasom_qos::Constraint::new(c.property(), c.tendency(), bound)
            })
            .collect();

        let properties = problem.properties();
        let prefs = if problem.preferences().is_empty() {
            Preferences::uniform(properties.iter().copied())
        } else {
            problem.preferences().clone()
        };
        let assignment: Vec<ServiceCandidate> = problem
            .candidates()
            .iter()
            .enumerate()
            .map(|(activity, cands)| {
                let normalizer = Normalizer::fit(self.model, cands.iter().map(|c| c.qos()));
                let best_of = |pool: &mut dyn Iterator<Item = &ServiceCandidate>| {
                    pool.max_by(|a, b| {
                        utility(a.qos(), &normalizer, &prefs).total_cmp(&utility(
                            b.qos(),
                            &normalizer,
                            &prefs,
                        ))
                    })
                    .cloned()
                };
                let mut locally_ok = cands
                    .iter()
                    .filter(|c| local_bounds.iter().all(|b| b.satisfied_by(c.qos())));
                best_of(&mut locally_ok)
                    .or_else(|| best_of(&mut cands.iter()))
                    .ok_or(BaselineError::Selection(SelectionError::NoCandidates {
                        activity,
                    }))
            })
            .collect::<Result<_, _>>()?;
        Ok(self.outcome_of(problem, &qassa, assignment))
    }

    /// **Genetic algorithm** baseline, after the GA-based selection
    /// approaches QASSA is positioned against: integer chromosomes (one
    /// gene per activity), tournament selection, single-point crossover,
    /// random-reset mutation, elitism, and a fitness of
    /// `utility − penalty(relative constraint violations)`.
    ///
    /// # Errors
    ///
    /// Fails on malformed problems.
    pub fn genetic(
        &self,
        problem: &SelectionProblem<'_>,
        config: &GeneticConfig,
    ) -> Result<SelectionOutcome, BaselineError> {
        validate(problem)?;
        let qassa = Qassa::new(self.model);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = problem.candidates().len();
        let sizes: Vec<usize> = problem.candidates().iter().map(Vec::len).collect();

        let random_chromosome = |rng: &mut StdRng| -> Vec<usize> {
            sizes.iter().map(|&s| rng.gen_range(0..s)).collect()
        };
        let fitness = |c: &[usize]| -> f64 {
            let assignment: Vec<ServiceCandidate> = c
                .iter()
                .enumerate()
                .map(|(i, &j)| problem.candidates()[i][j].clone())
                .collect();
            let (aggregated, u) = qassa.evaluate(problem, &assignment);
            let penalty: f64 = problem
                .constraints()
                .violations(&aggregated)
                .map(|v| match aggregated.get(v.property()) {
                    Some(value) => (-v.slack(value) / v.bound().abs().max(1e-9)).max(0.0) + 1.0,
                    None => 2.0,
                })
                .sum();
            u - penalty
        };

        let mut population: Vec<(f64, Vec<usize>)> = (0..config.population.max(2))
            .map(|_| {
                let c = random_chromosome(&mut rng);
                (fitness(&c), c)
            })
            .collect();

        for _ in 0..config.generations {
            population.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut next: Vec<(f64, Vec<usize>)> =
                population[..config.elite.min(population.len())].to_vec();
            while next.len() < population.len() {
                // Tournament selection of two parents.
                let pick = |rng: &mut StdRng| -> &Vec<usize> {
                    let a = rng.gen_range(0..population.len());
                    let b = rng.gen_range(0..population.len());
                    if population[a].0 >= population[b].0 {
                        &population[a].1
                    } else {
                        &population[b].1
                    }
                };
                let pa = pick(&mut rng).clone();
                let pb = pick(&mut rng).clone();
                // Single-point crossover.
                let mut child = if n > 1 && rng.gen::<f64>() < config.crossover_rate {
                    let cut = rng.gen_range(1..n);
                    let mut c = pa[..cut].to_vec();
                    c.extend_from_slice(&pb[cut..]);
                    c
                } else {
                    pa
                };
                // Random-reset mutation.
                for (i, gene) in child.iter_mut().enumerate() {
                    if rng.gen::<f64>() < config.mutation_rate {
                        *gene = rng.gen_range(0..sizes[i]);
                    }
                }
                next.push((fitness(&child), child));
            }
            population = next;
        }
        population.sort_by(|a, b| b.0.total_cmp(&a.0));
        // `config.population.max(2)` above keeps the population
        // non-empty; the typed escape replaces a panic all the same.
        let Some(best) = population.into_iter().next() else {
            return Err(BaselineError::Selection(SelectionError::NoCandidates {
                activity: 0,
            }));
        };
        let assignment: Vec<ServiceCandidate> = best
            .1
            .iter()
            .enumerate()
            .map(|(i, &j)| problem.candidates()[i][j].clone())
            .collect();
        Ok(self.outcome_of(problem, &qassa, assignment))
    }

    fn outcome_of(
        &self,
        problem: &SelectionProblem<'_>,
        qassa: &Qassa<'_>,
        assignment: Vec<ServiceCandidate>,
    ) -> SelectionOutcome {
        let (aggregated, u) = qassa.evaluate(problem, &assignment);
        let feasible = problem.constraints().satisfied_by(&aggregated);
        SelectionOutcome {
            assignment,
            aggregated,
            utility: u,
            feasible,
            levels_explored: 0,
            ranked: Vec::new(),
            levels: Vec::new(),
        }
    }
}

fn validate(problem: &SelectionProblem<'_>) -> Result<(), SelectionError> {
    let expected = problem.task().activity_count();
    let found = problem.candidates().len();
    if expected != found {
        return Err(SelectionError::ArityMismatch { expected, found });
    }
    if let Some(activity) = problem.candidates().iter().position(Vec::is_empty) {
        return Err(SelectionError::NoCandidates { activity });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Tightness, WorkloadSpec};
    use qasom_qos::QosModel;

    fn small_workload(seed: u64) -> (QosModel, crate::workload::Workload) {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .activities(3)
            .services_per_activity(6)
            .build(&m, seed);
        (m, w)
    }

    #[test]
    fn exhaustive_dominates_every_other_selector() {
        for seed in 0..5 {
            let (m, w) = small_workload(seed);
            let problem = w.problem();
            let b = Baselines::new(&m);
            let exact = b.exhaustive(&problem).unwrap();
            let qassa = Qassa::new(&m).select(&problem).unwrap();
            let greedy = b.greedy(&problem).unwrap();
            if exact.feasible {
                assert!(
                    exact.utility >= qassa.utility - 1e-9,
                    "seed {seed}: exact {} < qassa {}",
                    exact.utility,
                    qassa.utility
                );
                if greedy.feasible {
                    assert!(exact.utility >= greedy.utility - 1e-9);
                }
            }
        }
    }

    #[test]
    fn qassa_feasible_whenever_exhaustive_is() {
        for seed in 0..8 {
            let (m, w) = small_workload(seed);
            let problem = w.problem();
            let exact = Baselines::new(&m).exhaustive(&problem).unwrap();
            let qassa = Qassa::new(&m).select(&problem).unwrap();
            if exact.feasible {
                assert!(qassa.feasible, "seed {seed}: QASSA missed a feasible mix");
            }
        }
    }

    #[test]
    fn exhaustive_respects_the_cap() {
        let (m, w) = small_workload(1);
        let problem = w.problem();
        let err = Baselines::new(&m)
            .with_max_combinations(10)
            .exhaustive(&problem)
            .unwrap_err();
        assert!(matches!(err, BaselineError::TooLarge { .. }));
    }

    #[test]
    fn infeasible_problems_return_least_violating() {
        let m = QosModel::standard();
        let w = WorkloadSpec::evaluation_default()
            .activities(2)
            .services_per_activity(4)
            .tightness(Tightness::LooserBySigmas(-30.0)) // absurdly tight
            .build(&m, 3);
        let problem = w.problem();
        let exact = Baselines::new(&m).exhaustive(&problem).unwrap();
        assert!(!exact.feasible);
        assert_eq!(exact.assignment.len(), 2);
    }

    #[test]
    fn decomposed_meets_easy_global_bounds() {
        let (m, w) = small_workload(9);
        let problem = w.problem();
        let out = Baselines::new(&m).decomposed(&problem).unwrap();
        assert_eq!(out.assignment.len(), 3);
        // Per-activity bounds satisfied per activity imply the global
        // aggregate for Sum/Product/Min/Max properties on a sequential
        // task, so when every activity found a locally-ok candidate the
        // composition must be feasible.
        let locally_covered = problem.candidates().iter().all(|cands| {
            cands.iter().any(|c| {
                problem.constraints().iter().all(|g| {
                    // Re-derive the local bound the baseline used.
                    let op = m.def(g.property()).aggregation();
                    let n = problem.candidates().len() as f64;
                    let bound = match op {
                        qasom_qos::AggregationOp::Sum => g.bound() / n,
                        qasom_qos::AggregationOp::Product => g.bound().powf(1.0 / n),
                        _ => g.bound(),
                    };
                    qasom_qos::Constraint::new(g.property(), g.tendency(), bound)
                        .satisfied_by(c.qos())
                })
            })
        });
        if locally_covered {
            assert!(out.feasible);
        }
    }

    #[test]
    fn decomposed_is_conservative_where_global_view_wins() {
        // One activity overshoots its decomposed budget while another has
        // slack: the decomposition fails, QASSA succeeds.
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let mk = |vals: &[f64]| -> Vec<crate::ServiceCandidate> {
            let mut reg = qasom_registry::ServiceRegistry::new();
            vals.iter()
                .map(|&v| {
                    let id = reg.register(qasom_registry::ServiceDescription::new("s", "x#F"));
                    let mut q = qasom_qos::QosVector::new();
                    q.set(rt, v);
                    crate::ServiceCandidate::new(id, q)
                })
                .collect()
        };
        let task = qasom_task::UserTask::new(
            "t",
            qasom_task::TaskNode::sequence([
                qasom_task::TaskNode::activity(qasom_task::Activity::new("a", "x#F")),
                qasom_task::TaskNode::activity(qasom_task::Activity::new("b", "x#F")),
            ]),
        )
        .unwrap();
        // Global bound 200; decomposed per-activity bound 100. Activity a
        // only offers 150 (over budget), activity b offers 40 (slack).
        let problem = crate::SelectionProblem::new(&task)
            .with_candidates(vec![mk(&[150.0]), mk(&[40.0])])
            .with_constraints(
                [qasom_qos::Constraint::new(
                    rt,
                    qasom_qos::Tendency::LowerBetter,
                    200.0,
                )]
                .into_iter()
                .collect(),
            );
        let b = Baselines::new(&m);
        // The decomposition has no locally-ok candidate for activity a,
        // falls back to the best available — which happens to be globally
        // fine here, but the *local* check failed, illustrating the
        // conservatism; QASSA reasons globally from the start.
        let qassa = Qassa::new(&m).select(&problem).unwrap();
        assert!(qassa.feasible);
        let dec = b.decomposed(&problem).unwrap();
        assert!(dec.feasible); // the fallback saved it on this instance
    }

    #[test]
    fn genetic_is_deterministic_and_valid() {
        let (m, w) = small_workload(6);
        let problem = w.problem();
        let b = Baselines::new(&m);
        let config = GeneticConfig {
            generations: 30,
            ..GeneticConfig::default()
        };
        let a = b.genetic(&problem, &config).unwrap();
        let c = b.genetic(&problem, &config).unwrap();
        assert_eq!(a.assignment, c.assignment);
        assert_eq!(a.assignment.len(), 3);
        assert!((0.0..=1.0).contains(&a.utility));
        // Feasibility flag is consistent with the aggregate.
        assert_eq!(
            a.feasible,
            problem.constraints().satisfied_by(&a.aggregated)
        );
    }

    #[test]
    fn genetic_approaches_the_exact_optimum() {
        let (m, w) = small_workload(7);
        let problem = w.problem();
        let b = Baselines::new(&m);
        let exact = b.exhaustive(&problem).unwrap();
        let ga = b
            .genetic(
                &problem,
                &GeneticConfig {
                    generations: 120,
                    ..GeneticConfig::default()
                },
            )
            .unwrap();
        if exact.feasible {
            assert!(ga.utility <= exact.utility + 1e-9);
            // On a 6^3 space a decent GA should land close.
            assert!(
                ga.utility >= 0.6 * exact.utility,
                "GA {} vs exact {}",
                ga.utility,
                exact.utility
            );
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (m, w) = small_workload(2);
        let problem = w.problem();
        let b = Baselines::new(&m);
        let r1 = b.random(&problem, 11).unwrap();
        let r2 = b.random(&problem, 11).unwrap();
        assert_eq!(r1.assignment, r2.assignment);
    }

    #[test]
    fn greedy_picks_per_activity_best() {
        let (m, w) = small_workload(4);
        let problem = w.problem();
        let greedy = Baselines::new(&m).greedy(&problem).unwrap();
        assert_eq!(greedy.assignment.len(), 3);
        // Each pick maximises its own activity's local utility, so the
        // utility of a random composition can't beat greedy's *local*
        // choice on average — sanity-check against one random draw.
        let rand = Baselines::new(&m).random(&problem, 5).unwrap();
        let _ = rand; // utilities are composition-level; no strict relation
    }
}
