//! Selection inputs: candidates and the selection problem.

use std::sync::Arc;

use qasom_qos::{ConstraintSet, Preferences, PropertyId, QosVector};
use qasom_registry::ServiceId;
use qasom_task::UserTask;

use crate::AggregationApproach;

/// A concrete service candidate for one abstract activity: its registry
/// id and the QoS vector selection reasons about (advertised, or monitored
/// at re-selection time).
///
/// The vector is shared (`Arc`), so cloning a candidate — the selection
/// hot path does it once per ranked-list entry — is a refcount bump, not
/// a heap allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCandidate {
    id: ServiceId,
    qos: Arc<QosVector>,
}

impl ServiceCandidate {
    /// Creates a candidate.
    pub fn new(id: ServiceId, qos: QosVector) -> Self {
        ServiceCandidate {
            id,
            qos: Arc::new(qos),
        }
    }

    /// The registry id of the service.
    pub fn id(&self) -> ServiceId {
        self.id
    }

    /// The candidate's QoS vector.
    pub fn qos(&self) -> &QosVector {
        &self.qos
    }
}

/// A complete QoS-aware selection problem: the user task, the per-activity
/// candidate sets (`S_i`, indexed by activity DFS order), the global QoS
/// constraints (`U`), the preference weights (`W`) and the aggregation
/// approach.
///
/// # Examples
///
/// ```
/// use qasom_qos::QosModel;
/// use qasom_selection::workload::WorkloadSpec;
///
/// let model = QosModel::standard();
/// let w = WorkloadSpec::evaluation_default().build(&model, 1);
/// let problem = w.problem();
/// assert_eq!(problem.candidates().len(), problem.task().activity_count());
/// ```
#[derive(Debug, Clone)]
pub struct SelectionProblem<'a> {
    task: &'a UserTask,
    candidates: Vec<Vec<ServiceCandidate>>,
    constraints: ConstraintSet,
    preferences: Preferences,
    approach: AggregationApproach,
}

impl<'a> SelectionProblem<'a> {
    /// Starts a problem over `task` with empty candidate sets.
    pub fn new(task: &'a UserTask) -> Self {
        SelectionProblem {
            task,
            candidates: vec![Vec::new(); task.activity_count()],
            constraints: ConstraintSet::new(),
            preferences: Preferences::default(),
            approach: AggregationApproach::MeanValue,
        }
    }

    /// Replaces all candidate sets (one per activity, DFS order).
    pub fn with_candidates(mut self, candidates: Vec<Vec<ServiceCandidate>>) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets the candidate set of one activity.
    ///
    /// # Panics
    ///
    /// Panics when `activity` is out of range.
    pub fn with_activity_candidates(
        mut self,
        activity: usize,
        candidates: Vec<ServiceCandidate>,
    ) -> Self {
        self.candidates[activity] = candidates;
        self
    }

    /// Sets the global QoS constraints.
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the user preference weights.
    pub fn with_preferences(mut self, preferences: Preferences) -> Self {
        self.preferences = preferences;
        self
    }

    /// Sets the aggregation approach (default: mean-value).
    pub fn with_approach(mut self, approach: AggregationApproach) -> Self {
        self.approach = approach;
        self
    }

    /// The user task.
    pub fn task(&self) -> &'a UserTask {
        self.task
    }

    /// Per-activity candidate sets.
    pub fn candidates(&self) -> &[Vec<ServiceCandidate>] {
        &self.candidates
    }

    /// The global constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The preference weights.
    pub fn preferences(&self) -> &Preferences {
        &self.preferences
    }

    /// The aggregation approach.
    pub fn approach(&self) -> AggregationApproach {
        self.approach
    }

    /// The QoS properties the problem involves: constrained ∪ weighted.
    pub fn properties(&self) -> Vec<PropertyId> {
        let mut props: Vec<PropertyId> = self
            .constraints
            .properties()
            .chain(self.preferences.properties())
            .collect();
        props.sort();
        props.dedup();
        props
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::{Constraint, QosModel, Tendency};
    use qasom_task::{Activity, TaskNode};

    #[test]
    fn properties_are_union_of_constraints_and_weights() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let price = m.property("Price").unwrap();
        let task = UserTask::new("t", TaskNode::activity(Activity::new("a", "x#A"))).unwrap();
        let p = SelectionProblem::new(&task)
            .with_constraints(
                [Constraint::new(rt, Tendency::LowerBetter, 1.0)]
                    .into_iter()
                    .collect(),
            )
            .with_preferences(Preferences::uniform([av, price, rt]));
        assert_eq!(p.properties(), vec![rt, av, price]);
    }
}
