//! The domain analyzer: pre-selection validation of composition requests
//! and provider QoS specifications.

use std::collections::BTreeMap;

use qasom_ontology::{Iri, Ontology};
use qasom_qos::{Category, Dimension, Layer, PropertyId, QosModel, QosVector, Tendency, Unit};
use qasom_task::{TaskNode, UserTask};

use crate::diag::{Diagnostic, DiagnosticCode, Location};

/// A choice branch below this normalised probability is reported as
/// effectively unreachable (QA005).
const NEGLIGIBLE_PROBABILITY: f64 = 1e-6;

/// How non-deterministic patterns are folded during aggregation — the
/// analyzer's view of the selection crate's aggregation approach (kept
/// separate so this crate stays below `qasom-selection` in the dependency
/// graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproachKind {
    /// Worst-case folding: the aggregate is a guarantee.
    Pessimistic,
    /// Best-case folding: the aggregate is a best case.
    Optimistic,
    /// Expected-value folding.
    #[default]
    MeanValue,
}

/// The analyzer's view of a composition request: the task plus the *raw*
/// (unresolved) QoS requirements, exactly as the user phrased them.
#[derive(Debug, Clone, Copy)]
pub struct RequestSpec<'a> {
    /// The requested task (already structurally valid).
    pub task: &'a UserTask,
    /// Raw global constraints: `(property name, bound, unit)`.
    pub constraints: &'a [(String, f64, Unit)],
    /// Raw preference weights: `(property name, weight)`.
    pub weights: &'a [(String, f64)],
    /// The aggregation approach constraints will be checked under.
    pub approach: ApproachKind,
}

/// The analyzer's view of one white-box operation of a service.
#[derive(Debug, Clone, Copy)]
pub struct OperationView<'a> {
    /// Operation name.
    pub name: &'a str,
    /// Capability concept of the operation.
    pub function: &'a Iri,
    /// Advertised operation-level QoS.
    pub qos: &'a QosVector,
}

/// The analyzer's view of a provider's service advertisement (kept free
/// of `qasom-registry` types so the registry itself can depend on this
/// crate for QSD ingestion).
#[derive(Debug, Clone)]
pub struct ServiceView<'a> {
    /// Service name.
    pub name: &'a str,
    /// Capability concept of the service.
    pub function: &'a Iri,
    /// Advertised service-level QoS.
    pub qos: &'a QosVector,
    /// White-box operations.
    pub operations: Vec<OperationView<'a>>,
}

/// Static validator of composition requests and provider QoS specs.
///
/// All checks run *before* discovery and selection: a request that would
/// fail deep inside QASSA or be silently mis-ranked is rejected (or
/// flagged) here with structured [`Diagnostic`]s instead.
///
/// # Examples
///
/// ```
/// use qasom_analysis::{Analyzer, ApproachKind, RequestSpec};
/// use qasom_qos::{QosModel, Unit};
/// use qasom_task::{Activity, TaskNode, UserTask};
///
/// let model = QosModel::standard();
/// let task = UserTask::new(
///     "t",
///     TaskNode::activity(Activity::new("a", "x#A")),
/// )
/// .unwrap();
/// // A response-time bound phrased in euros: dimension mismatch.
/// let constraints = vec![("ResponseTime".to_owned(), 2.0, Unit::Euro)];
/// let spec = RequestSpec {
///     task: &task,
///     constraints: &constraints,
///     weights: &[],
///     approach: ApproachKind::MeanValue,
/// };
/// let diags = Analyzer::new(&model).check_request(&spec);
/// assert!(diags.iter().any(|d| d.code.code() == "QA011"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Analyzer<'a> {
    model: &'a QosModel,
    ontology: Option<&'a Ontology>,
}

impl<'a> Analyzer<'a> {
    /// Creates an analyzer over the QoS model in force.
    pub fn new(model: &'a QosModel) -> Self {
        Analyzer {
            model,
            ontology: None,
        }
    }

    /// Also checks concept IRIs against the domain ontology (QA020,
    /// QA021, QA031).
    pub fn with_ontology(mut self, ontology: &'a Ontology) -> Self {
        self.ontology = Some(ontology);
        self
    }

    /// Validates a raw task structure (the checks mirror
    /// [`UserTask::new`] but report *all* defects at once, as
    /// diagnostics, instead of failing on the first).
    pub fn check_structure(&self, task_name: &str, root: &TaskNode) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_node(task_name, root, &mut out);

        // Duplicate activity names (QA003) and empty tasks (QA004).
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        root.for_each_activity(&mut |a| *seen.entry(a.name()).or_insert(0) += 1);
        for (name, count) in &seen {
            if *count > 1 {
                out.push(Diagnostic::new(
                    DiagnosticCode::DuplicateActivity,
                    Location::task(task_name).with_activity(*name),
                    format!("activity name {name:?} is used {count} times"),
                ));
            }
        }
        if seen.is_empty() {
            out.push(Diagnostic::new(
                DiagnosticCode::NoActivity,
                Location::task(task_name),
                "the task contains no activity at all",
            ));
        }
        out
    }

    /// Validates a composition request end to end: task structure, QoS
    /// dimensional analysis, constraint satisfiability, preference
    /// weights, aggregation-approach soundness and (when an ontology is
    /// bound) concept-IRI sanity.
    pub fn check_request(&self, spec: &RequestSpec<'_>) -> Vec<Diagnostic> {
        let task_name = spec.task.name();
        let mut out = self.check_structure(task_name, spec.task.root());
        self.check_constraints(spec, &mut out);
        self.check_weights(spec, &mut out);
        self.check_approach(spec, &mut out);
        if self.ontology.is_some() {
            self.check_task_iris(spec.task, &mut out);
        }
        out
    }

    /// Validates a provider's service advertisement (QSD ingestion):
    /// advertised values against each property's feasible range (QA030),
    /// self-reported reputation (QA032) and, when an ontology is bound,
    /// function IRIs (QA031).
    pub fn check_service(&self, service: &ServiceView<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let at = Location::service(service.name);
        self.check_qos_values(service.qos, &at, &mut out);
        if let Some(onto) = self.ontology {
            if onto.concept(service.function).is_none() {
                out.push(Diagnostic::new(
                    DiagnosticCode::UnknownServiceFunction,
                    at.clone().with_iri(service.function),
                    format!(
                        "function {} is unknown to the domain ontology; \
                         only exact textual matches will discover this service",
                        service.function
                    ),
                ));
            }
        }
        for op in &service.operations {
            let at = at.clone().with_operation(op.name);
            self.check_qos_values(op.qos, &at, &mut out);
            if let Some(onto) = self.ontology {
                if onto.concept(op.function).is_none() {
                    out.push(Diagnostic::new(
                        DiagnosticCode::UnknownServiceFunction,
                        at.clone().with_iri(op.function),
                        format!(
                            "operation function {} is unknown to the ontology",
                            op.function
                        ),
                    ));
                }
            }
        }
        out
    }

    fn check_qos_values(&self, qos: &QosVector, at: &Location, out: &mut Vec<Diagnostic>) {
        for (p, v) in qos.iter() {
            let def = self.model.def(p);
            let at = at.clone().with_property(def.name());
            if !v.is_finite() {
                out.push(Diagnostic::new(
                    DiagnosticCode::QosValueOutOfRange,
                    at,
                    format!("advertised {} value {v} is not finite", def.name()),
                ));
                continue;
            }
            let dim = def.unit().dimension();
            if dim == Dimension::Probability && !(0.0..=1.0).contains(&v) {
                out.push(Diagnostic::new(
                    DiagnosticCode::QosValueOutOfRange,
                    at,
                    format!(
                        "advertised {} = {v} lies outside the probability range [0, 1]",
                        def.name()
                    ),
                ));
            } else if non_negative(dim) && v < 0.0 {
                out.push(Diagnostic::new(
                    DiagnosticCode::QosValueOutOfRange,
                    at,
                    format!("advertised {} = {v} is negative", def.name()),
                ));
            } else if def.category() == Category::Reputation {
                out.push(Diagnostic::new(
                    DiagnosticCode::SelfReportedReputation,
                    at,
                    format!(
                        "{} is derived from SLA compliance by the middleware; \
                         the self-reported value will be overwritten",
                        def.name()
                    ),
                ));
            }
        }
    }

    fn check_constraints(&self, spec: &RequestSpec<'_>, out: &mut Vec<Diagnostic>) {
        // Service-layer anchor of each constrained property → the name the
        // user first constrained it under (QA014 duplicate detection).
        let mut anchored: BTreeMap<PropertyId, &str> = BTreeMap::new();
        for (name, bound, unit) in spec.constraints {
            let Some(id) = self.model.property(name) else {
                out.push(Diagnostic::new(
                    DiagnosticCode::UnknownProperty,
                    Location::property(name),
                    format!("constraint names QoS property {name:?}, unknown to the model"),
                ));
                continue;
            };
            let def = self.model.def(id);
            let at = Location::property(name);
            if unit.dimension() != def.unit().dimension() {
                out.push(Diagnostic::new(
                    DiagnosticCode::DimensionMismatch,
                    at.clone(),
                    format!(
                        "bound on {} given in {} ({:?}), but {} is measured in {} ({:?}); \
                         the bound cannot be converted",
                        def.name(),
                        unit,
                        unit.dimension(),
                        def.name(),
                        def.unit(),
                        def.unit().dimension()
                    ),
                ));
                continue;
            }
            let canonical = unit.convert(*bound, def.unit()).unwrap_or(*bound);
            self.check_bound(
                def.name(),
                canonical,
                def.tendency(),
                def.unit().dimension(),
                out,
            );

            if def.layer() == Layer::User
                && self.model.resolve_to_layer(id, Layer::Service).is_none()
            {
                out.push(Diagnostic::new(
                    DiagnosticCode::UnalignedUserProperty,
                    at.clone(),
                    format!(
                        "user-layer property {} has no service-layer equivalent; \
                         provider advertisements can never carry it",
                        def.name()
                    ),
                ));
            }

            let anchor = self
                .model
                .resolve_to_layer(id, Layer::Service)
                .unwrap_or(id);
            if let Some(first) = anchored.get(&anchor) {
                if *first != name.as_str()
                    || spec
                        .constraints
                        .iter()
                        .filter(|(n, _, _)| n == name)
                        .count()
                        > 1
                {
                    out.push(Diagnostic::new(
                        DiagnosticCode::DuplicateConstraint,
                        at,
                        format!(
                            "constraint on {name:?} resolves to the same service-layer \
                             property as the earlier constraint on {first:?}; \
                             the stricter bound silently wins"
                        ),
                    ));
                }
            } else {
                anchored.insert(anchor, name.as_str());
            }
        }
    }

    fn check_bound(
        &self,
        property: &str,
        bound: f64,
        tendency: Tendency,
        dim: Dimension,
        out: &mut Vec<Diagnostic>,
    ) {
        let at = Location::property(property);
        if bound.is_nan() {
            out.push(Diagnostic::new(
                DiagnosticCode::UnsatisfiableBound,
                at,
                format!("bound on {property} is NaN; no value satisfies it"),
            ));
            return;
        }
        match tendency {
            // Satisfaction is `value <= bound`.
            Tendency::LowerBetter => {
                if non_negative(dim) && bound < 0.0 {
                    out.push(Diagnostic::new(
                        DiagnosticCode::UnsatisfiableBound,
                        at,
                        format!(
                            "{property} is non-negative ({dim:?}) but the bound is {bound}; \
                             the feasible intersection is empty"
                        ),
                    ));
                } else if bound == f64::INFINITY || (dim == Dimension::Probability && bound >= 1.0)
                {
                    out.push(Diagnostic::new(
                        DiagnosticCode::VacuousBound,
                        at,
                        format!("every possible {property} value satisfies the bound {bound}"),
                    ));
                }
            }
            // Satisfaction is `value >= bound`.
            Tendency::HigherBetter => {
                if dim == Dimension::Probability && bound > 1.0 {
                    out.push(Diagnostic::new(
                        DiagnosticCode::UnsatisfiableBound,
                        at,
                        format!(
                            "{property} is a probability but the bound is {bound} > 1; \
                             the feasible intersection is empty"
                        ),
                    ));
                } else if bound == f64::INFINITY {
                    out.push(Diagnostic::new(
                        DiagnosticCode::UnsatisfiableBound,
                        at,
                        format!("no finite {property} value reaches the bound {bound}"),
                    ));
                } else if non_negative(dim) && bound <= 0.0 {
                    out.push(Diagnostic::new(
                        DiagnosticCode::VacuousBound,
                        at,
                        format!("every possible {property} value satisfies the bound {bound}"),
                    ));
                }
            }
        }
    }

    fn check_weights(&self, spec: &RequestSpec<'_>, out: &mut Vec<Diagnostic>) {
        let mut usable = 0usize;
        for (name, weight) in spec.weights {
            let Some(id) = self.model.property(name) else {
                out.push(Diagnostic::new(
                    DiagnosticCode::UnknownProperty,
                    Location::property(name),
                    format!("preference weight names QoS property {name:?}, unknown to the model"),
                ));
                continue;
            };
            if !(weight.is_finite() && *weight > 0.0) {
                out.push(Diagnostic::new(
                    DiagnosticCode::DroppedWeight,
                    Location::property(name),
                    format!(
                        "weight {weight} on {name} is not positive and finite; \
                         normalisation drops it"
                    ),
                ));
                continue;
            }
            usable += 1;
            let def = self.model.def(id);
            if def.layer() == Layer::User
                && self.model.resolve_to_layer(id, Layer::Service).is_none()
            {
                out.push(Diagnostic::new(
                    DiagnosticCode::UnalignedUserProperty,
                    Location::property(name),
                    format!(
                        "user-layer property {} has no service-layer equivalent; \
                         its weight can never influence ranking",
                        def.name()
                    ),
                ));
            }
        }
        if !spec.weights.is_empty() && usable == 0 {
            out.push(Diagnostic::new(
                DiagnosticCode::UnusableWeights,
                Location::none(),
                "preference weights were given but none is positive and finite; \
                 the weight vector cannot be normalised",
            ));
        }
    }

    fn check_approach(&self, spec: &RequestSpec<'_>, out: &mut Vec<Diagnostic>) {
        if spec.approach == ApproachKind::Optimistic
            && !spec.constraints.is_empty()
            && has_nondeterministic_pattern(spec.task.root())
        {
            out.push(Diagnostic::new(
                DiagnosticCode::OptimisticGuarantee,
                Location::task(spec.task.name()),
                "global constraints are checked under the optimistic approach on a task \
                 with choice/loop patterns: the aggregate is a best case, not a guarantee",
            ));
        }
    }

    fn check_task_iris(&self, task: &UserTask, out: &mut Vec<Diagnostic>) {
        let Some(onto) = self.ontology else {
            return;
        };
        for a in task.activities() {
            let activity = a.activity();
            let at = Location::task(task.name()).with_activity(activity.name());
            if onto.concept(activity.function()).is_none() {
                out.push(Diagnostic::new(
                    DiagnosticCode::UnknownFunctionIri,
                    at.clone().with_iri(activity.function()),
                    format!(
                        "function {} is unknown to the domain ontology; only services \
                         advertising the exact same IRI can be discovered",
                        activity.function()
                    ),
                ));
            }
            for iri in activity.inputs().iter().chain(activity.outputs()) {
                if onto.concept(iri).is_none() {
                    out.push(Diagnostic::new(
                        DiagnosticCode::UnknownDataIri,
                        at.clone().with_iri(iri),
                        format!("data concept {iri} is unknown to the domain ontology"),
                    ));
                }
            }
        }
    }
}

/// Dimensions whose values are non-negative by construction.
fn non_negative(dim: Dimension) -> bool {
    matches!(
        dim,
        Dimension::Time
            | Dimension::Rate
            | Dimension::DataRate
            | Dimension::Probability
            | Dimension::Money
            | Dimension::Energy
    )
}

fn has_nondeterministic_pattern(node: &TaskNode) -> bool {
    match node {
        TaskNode::Activity(_) => false,
        TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
            cs.iter().any(has_nondeterministic_pattern)
        }
        TaskNode::Choice(_) | TaskNode::Loop { .. } => true,
    }
}

fn first_activity_name(node: &TaskNode) -> Option<&str> {
    let mut name = None;
    node.for_each_activity(&mut |a| {
        if name.is_none() {
            name = Some(a.name());
        }
    });
    name
}

/// Pattern-local structural checks (QA001, QA002, QA005, QA006).
fn check_node(task_name: &str, node: &TaskNode, out: &mut Vec<Diagnostic>) {
    match node {
        TaskNode::Activity(_) => {}
        TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
            if cs.is_empty() {
                out.push(Diagnostic::new(
                    DiagnosticCode::EmptyPattern,
                    Location::task(task_name),
                    "a sequence/parallel pattern has no child",
                ));
            }
            for c in cs {
                check_node(task_name, c, out);
            }
        }
        TaskNode::Choice(bs) => {
            if bs.is_empty() {
                out.push(Diagnostic::new(
                    DiagnosticCode::EmptyPattern,
                    Location::task(task_name),
                    "a choice pattern has no branch",
                ));
            }
            let total: f64 = bs.iter().map(|&(p, _)| p.max(0.0)).sum();
            for (p, branch) in bs {
                let at = match first_activity_name(branch) {
                    Some(a) => Location::task(task_name).with_activity(a),
                    None => Location::task(task_name),
                };
                if !(p.is_finite() && *p > 0.0) {
                    out.push(Diagnostic::new(
                        DiagnosticCode::BadProbability,
                        at,
                        format!("choice branch probability {p} is not positive and finite"),
                    ));
                } else if total > 0.0 && p / total < NEGLIGIBLE_PROBABILITY {
                    out.push(Diagnostic::new(
                        DiagnosticCode::NegligibleBranch,
                        at,
                        format!(
                            "choice branch probability normalises to {:.2e}; \
                             its activities are effectively unreachable",
                            p / total
                        ),
                    ));
                }
                check_node(task_name, branch, out);
            }
        }
        TaskNode::Loop { body, bound } => {
            if bound.expected() > f64::from(bound.max()) {
                let at = match first_activity_name(body) {
                    Some(a) => Location::task(task_name).with_activity(a),
                    None => Location::task(task_name),
                };
                out.push(Diagnostic::new(
                    DiagnosticCode::LoopExpectationExceedsCap,
                    at,
                    format!(
                        "loop expects {} iterations but execution caps at {}; \
                         mean-value aggregation will overstate the loop's QoS cost",
                        bound.expected(),
                        bound.max()
                    ),
                ));
            }
            check_node(task_name, body, out);
        }
    }
}
