//! QA1xx lock-discipline rules: a scope-aware abstract interpreter over
//! the [`crate::lexer`] token stream.
//!
//! The workspace's concurrency story (PR 5/PR 6) rests on a small set of
//! locks with a strict acquisition order. This module declares that
//! order as a checked-in manifest ([`MANIFEST`]) and enforces four rules
//! over every file that hosts one of the locks (plus everything under
//! `crates/daemon/src/`):
//!
//! * **QA101 `lock-order`** — acquiring a lock of a lower rank while
//!   holding a guard of a higher rank inverts the manifest order and is
//!   a deadlock waiting for a second thread.
//! * **QA102 `write-under-read`** — `.write()` on a lock class while a
//!   `.read()` guard of the same class is live in scope self-deadlocks
//!   on `std::sync::RwLock` (the write blocks behind our own read).
//! * **QA103 `guard-across-send`** — holding any lock guard across a
//!   channel send / transport write stalls the receiver behind our
//!   critical section and invites lock-ordered deadlocks with the
//!   consumer thread.
//! * **QA104 `raw-lock-in-daemon`** — `crates/daemon` may not acquire
//!   raw `Mutex`/`RwLock`s (nor declare them): every daemon-side
//!   write-lock acquisition must go through the typed
//!   `SharedEnvironment` API (`serve_session`, `apply_churn`,
//!   `reload_ontology`) so it is accounted, bounded and visible to the
//!   `daemon.*` counters. This generalises PR 6's `daemon-with-mut`
//!   token rule.
//!
//! # Guard lifetime model
//!
//! Guards are tracked by brace depth, deliberately conservative in the
//! direction that avoids false positives:
//!
//! * a `let`-bound guard dies when the block that bound it closes, or at
//!   an explicit `drop(name)`;
//! * a temporary guard (not `let`-bound: `if let` / `match` scrutinees,
//!   `*self.lock() = ...` expression statements) dies at the `;` that
//!   ends its statement, or at the `}` that returns to its acquisition
//!   depth — this models Rust's scrutinee-temporary rule, so the
//!   double-checked `if let ... .read() ... { return } ... .write()`
//!   intern pattern does not trip QA102;
//! * `#[cfg(test)]` regions are skipped entirely.
//!
//! An acquisition is a `.read()` / `.write()` / `.lock()` call with
//! **empty** parentheses — `io::Read::read(&mut buf)` and
//! `io::Write::write(buf)` take arguments and never match. Receivers are
//! classified against the manifest by walking the field chain
//! (`self.inner`, `self.shards[i]`, a `shard` loop variable), scoped per
//! file so `self.inner` can mean the environment lock in `shared.rs` and
//! the metrics mutex in `recorder.rs` without ambiguity.

use crate::lexer::{lex, Token, TokenKind};
use crate::lint::{allow_on, Finding, Rule};

/// One lock class in the declared acquisition order.
#[derive(Debug, Clone, Copy)]
pub struct LockClass {
    /// Human-readable class name (used in finding excerpts and docs).
    pub name: &'static str,
    /// Acquisition rank: locks must be acquired in non-decreasing rank
    /// order. Lower rank = acquired first (outermost).
    pub rank: u32,
    /// Workspace-relative files whose acquisitions belong to this class.
    pub files: &'static [&'static str],
    /// Receiver identifiers that select this class within those files
    /// (any identifier of the receiver field chain matches).
    pub receivers: &'static [&'static str],
}

/// The lock-order manifest: the declared acquisition order of every
/// lock in the workspace. Acquiring upward (environment → cluster peer
/// table → interner → shard → event buffer → recorder) is legal; any
/// inversion is QA101.
pub const MANIFEST: &[LockClass] = &[
    LockClass {
        name: "environment",
        rank: 0,
        files: &["crates/core/src/shared.rs"],
        receivers: &["inner", "self"],
    },
    LockClass {
        name: "cluster-peer-table",
        rank: 1,
        files: &["crates/cluster/src/bridge.rs"],
        receivers: &["peers"],
    },
    LockClass {
        name: "interner",
        rank: 2,
        files: &["crates/registry/src/discovery.rs"],
        receivers: &["interner"],
    },
    LockClass {
        name: "match-cache-shard",
        rank: 3,
        files: &["crates/registry/src/discovery.rs"],
        receivers: &["shards", "shard"],
    },
    LockClass {
        name: "event-buffer",
        rank: 4,
        files: &[
            "crates/core/src/environment.rs",
            "crates/core/src/events.rs",
        ],
        receivers: &["events", "self"],
    },
    LockClass {
        name: "recorder",
        rank: 5,
        files: &["crates/obs/src/recorder.rs"],
        receivers: &["inner", "self"],
    },
];

/// Standard-library handles whose `.lock()` is I/O line-buffering, not
/// synchronisation — exempt from every QA1xx rule.
const IO_WHITELIST: &[&str] = &["stdin", "stdout", "stderr"];

/// Methods that hand a frame/message to another thread; holding a lock
/// guard across one is QA103.
const SEND_METHODS: &[&str] = &["send", "write_all", "send_frame", "write_frame"];

/// Whether `rel` (workspace-relative, `/`-separated) hosts a manifest
/// lock class or is daemon code — i.e. whether the QA1xx rules scan it.
pub fn locks_scope(rel: &str) -> bool {
    MANIFEST.iter().any(|c| c.files.contains(&rel)) || rel.starts_with("crates/daemon/src/")
}

/// A live guard in the abstract interpretation.
struct Guard {
    /// Manifest index, if the receiver classified.
    class: Option<usize>,
    /// Whether the guard is exclusive (`.write()` / `.lock()`).
    exclusive: bool,
    /// Brace depth at acquisition.
    depth: i64,
    /// Temporary (not `let`-bound): dies at end of statement.
    temp: bool,
    /// Binder name for `drop(name)` tracking.
    var: Option<String>,
}

fn classify(rel: &str, chain: &[String]) -> Option<usize> {
    MANIFEST.iter().position(|c| {
        c.files.contains(&rel) && chain.iter().any(|id| c.receivers.contains(&id.as_str()))
    })
}

/// Walks the receiver field chain left of the `.` at `dot`, skipping
/// balanced `[...]` / `(...)` suffixes: `self.shards[shard_of(r)].read()`
/// yields `["self", "shards"]`.
fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot;
    'outer: while j > 0 {
        let mut k = j - 1;
        while toks[k].is_punct(']') || toks[k].is_punct(')') {
            let (open, close) = if toks[k].is_punct(']') {
                ('[', ']')
            } else {
                ('(', ')')
            };
            let mut bal = 1usize;
            while bal > 0 {
                if k == 0 {
                    break 'outer;
                }
                k -= 1;
                if toks[k].is_punct(close) {
                    bal += 1;
                } else if toks[k].is_punct(open) {
                    bal -= 1;
                }
            }
            if k == 0 {
                break 'outer;
            }
            k -= 1;
        }
        match toks[k].ident() {
            Some(id) => chain.push(id.to_owned()),
            None => break,
        }
        if k == 0 || !toks[k - 1].is_punct('.') {
            break;
        }
        j = k - 1;
    }
    chain.reverse();
    chain
}

fn seq_matches(toks: &[Token], from: usize, seq: &[&str]) -> bool {
    seq.iter().enumerate().all(|(o, want)| {
        toks.get(from + o).is_some_and(|t| match &t.kind {
            TokenKind::Ident(s) => s == want,
            TokenKind::Punct(c) => want.len() == 1 && want.starts_with(*c),
        })
    })
}

fn excerpt_of(raw: &[&str], stripped: &[String], line: usize) -> String {
    let mut excerpt: String = raw
        .get(line - 1)
        .map(|l| l.trim().chars().take(120).collect())
        .unwrap_or_default();
    if excerpt.is_empty() {
        excerpt = stripped
            .get(line - 1)
            .map(|l| l.trim().chars().take(120).collect())
            .unwrap_or_default();
    }
    excerpt
}

/// Runs the QA1xx rules over one stripped file. `raw` carries the
/// original lines for excerpts and `lint:allow` comments (same line or
/// the line immediately above).
pub(crate) fn scan_locks(rel: &str, stripped: &[String], raw: &[&str]) -> Vec<Finding> {
    let daemon = rel.starts_with("crates/daemon/src/");
    let toks = lex(stripped);
    let n = toks.len();

    let mut findings: Vec<Finding> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    // `#[cfg(test)]` region tracking, token-level.
    let mut test_pending = false;
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    // Active `let` statements: (brace depth, binder name).
    let mut lets: Vec<(i64, Option<String>)> = Vec::new();

    let emit = |rule: Rule, line: usize, findings: &mut Vec<Finding>| {
        if !allow_on(raw, line, rule) {
            findings.push(Finding {
                rule,
                file: rel.to_owned(),
                line,
                excerpt: excerpt_of(raw, stripped, line),
            });
        }
    };

    let mut i = 0;
    while i < n {
        match &toks[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if test_pending && !in_test {
                    test_pending = false;
                    in_test = true;
                    test_depth = depth;
                }
                i += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                // Block-scoped guards die; statement temporaries at the
                // re-entered depth die too (end of the `if let`/`match`
                // expression that owned them).
                guards.retain(|g| g.depth <= depth && !(g.temp && g.depth == depth));
                lets.retain(|(d, _)| *d <= depth);
                if in_test && depth < test_depth {
                    in_test = false;
                }
                i += 1;
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth >= depth));
                lets.retain(|(d, _)| *d != depth);
                // `#[cfg(test)] use ...;` — single-item gate, over.
                test_pending = false;
                i += 1;
            }
            TokenKind::Punct('#') => {
                if !in_test && seq_matches(&toks, i + 1, &["[", "cfg", "(", "test", ")", "]"]) {
                    test_pending = true;
                    i += 7;
                } else {
                    i += 1;
                }
            }
            TokenKind::Punct('.') if !in_test => {
                let method = toks.get(i + 1).and_then(|t| t.ident());
                let open = toks.get(i + 2).is_some_and(|t| t.is_punct('('));
                let empty = open && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
                match method {
                    Some(m @ ("read" | "write" | "lock")) if empty => {
                        let line = toks[i + 1].line;
                        let chain = receiver_chain(&toks, i);
                        if chain.iter().any(|c| IO_WHITELIST.contains(&c.as_str())) {
                            i += 4;
                            continue;
                        }
                        if daemon {
                            emit(Rule::RawLockInDaemon, line, &mut findings);
                        }
                        let class = classify(rel, &chain);
                        if let Some(ci) = class {
                            let rank = MANIFEST[ci].rank;
                            if guards
                                .iter()
                                .any(|g| g.class.is_some_and(|gc| MANIFEST[gc].rank > rank))
                            {
                                emit(Rule::LockOrder, line, &mut findings);
                            }
                            if m == "write"
                                && guards.iter().any(|g| g.class == Some(ci) && !g.exclusive)
                            {
                                emit(Rule::WriteUnderRead, line, &mut findings);
                            }
                        }
                        let (temp, var) = match lets.last() {
                            Some((d, v)) if *d == depth => (false, v.clone()),
                            _ => (true, None),
                        };
                        guards.push(Guard {
                            class,
                            exclusive: m != "read",
                            depth,
                            temp,
                            var,
                        });
                        i += 4;
                    }
                    Some(m) if open && SEND_METHODS.contains(&m) => {
                        if !guards.is_empty() {
                            emit(Rule::GuardAcrossSend, toks[i + 1].line, &mut findings);
                        }
                        i += 2;
                    }
                    _ => i += 1,
                }
            }
            TokenKind::Ident(id) if !in_test => {
                match id.as_str() {
                    "let" => {
                        // `if let` / `while let` bind patterns over a
                        // scrutinee temporary, not a named guard.
                        let scrutinee = i > 0
                            && toks[i - 1]
                                .ident()
                                .is_some_and(|p| p == "if" || p == "while");
                        if !scrutinee {
                            let mut j = i + 1;
                            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                                j += 1;
                            }
                            // A binder only counts if followed by `:` or
                            // `=` — `let (a, b) = ...` patterns bind
                            // anonymously.
                            let var = toks
                                .get(j)
                                .and_then(|t| t.ident())
                                .filter(|_| {
                                    toks.get(j + 1)
                                        .is_some_and(|t| t.is_punct(':') || t.is_punct('='))
                                })
                                .map(str::to_owned);
                            lets.push((depth, var));
                        }
                        i += 1;
                    }
                    "drop" => {
                        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                            if let Some(v) = toks
                                .get(i + 2)
                                .and_then(|t| t.ident())
                                .filter(|_| toks.get(i + 3).is_some_and(|t| t.is_punct(')')))
                            {
                                guards.retain(|g| g.var.as_deref() != Some(v));
                            }
                        }
                        i += 1;
                    }
                    "Mutex" | "RwLock" | "Condvar" if daemon => {
                        emit(Rule::RawLockInDaemon, toks[i].line, &mut findings);
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::lint::{scan_file, Rule};

    fn lock_findings(rel: &str, src: &str) -> Vec<(Rule, usize)> {
        scan_file(rel, src)
            .into_iter()
            .filter(|f| {
                matches!(
                    f.rule,
                    Rule::LockOrder
                        | Rule::WriteUnderRead
                        | Rule::GuardAcrossSend
                        | Rule::RawLockInDaemon
                )
            })
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn lock_order_inversion_is_flagged() {
        // Shard (rank 2) held while acquiring the interner (rank 1).
        let src = "impl C {\n    fn bad(&self) {\n        let state = self.shards[0].read();\n        let interner = self.interner.read();\n        state.touch(interner.len());\n    }\n}\n";
        let hits = lock_findings("crates/registry/src/discovery.rs", src);
        assert_eq!(hits, vec![(Rule::LockOrder, 4)]);
    }

    #[test]
    fn ascending_order_is_clean() {
        let src = "impl C {\n    fn good(&self) {\n        let interner = self.interner.read();\n        let state = self.shards[0].read();\n        state.touch(interner.len());\n    }\n}\n";
        assert!(lock_findings("crates/registry/src/discovery.rs", src).is_empty());
    }

    #[test]
    fn block_scoped_guard_dies_before_next_acquisition() {
        // The real `lookup()` shape: interner read in a block, then a
        // shard read — and crucially no QA101 on the way back *down*
        // because the interner guard is gone.
        let src = "impl C {\n    fn lookup(&self) {\n        let key = {\n            let interner = self.interner.read();\n            interner.id()\n        };\n        let state = self.shards[0].read();\n        let again = self.interner.read();\n    }\n}\n";
        // Line 8 *does* re-acquire the interner under the shard guard.
        let hits = lock_findings("crates/registry/src/discovery.rs", src);
        assert_eq!(hits, vec![(Rule::LockOrder, 8)]);
    }

    #[test]
    fn write_under_read_is_flagged_and_drop_clears_it() {
        let bad = "impl S {\n    fn bad(&self) {\n        let env = self.inner.read();\n        let mut w = self.inner.write();\n    }\n}\n";
        let hits = lock_findings("crates/core/src/shared.rs", bad);
        assert_eq!(hits, vec![(Rule::WriteUnderRead, 4)]);

        let good = "impl S {\n    fn good(&self) {\n        let env = self.inner.read();\n        drop(env);\n        let mut w = self.inner.write();\n    }\n}\n";
        assert!(lock_findings("crates/core/src/shared.rs", good).is_empty());
    }

    #[test]
    fn if_let_scrutinee_temp_does_not_trip_write_under_read() {
        // The double-checked intern pattern: temp read guard in the
        // `if let` scrutinee, then a write. Must be clean.
        let src = "impl C {\n    fn intern(&self) -> u32 {\n        if let Some(id) = self.interner.read().get(iri) {\n            return id;\n        }\n        let mut w = self.interner.write();\n        w.insert(iri)\n    }\n}\n";
        assert!(lock_findings("crates/registry/src/discovery.rs", src).is_empty());
    }

    #[test]
    fn expression_temp_dies_at_semicolon() {
        let src = "impl R {\n    fn reset(&self) {\n        *self.inner.lock() = Default::default();\n        let mut g = self.inner.lock();\n    }\n}\n";
        assert!(lock_findings("crates/obs/src/recorder.rs", src).is_empty());
    }

    #[test]
    fn guard_across_send_is_flagged() {
        let src = "impl S {\n    fn bad(&self, tx: &Sender<u64>) {\n        let env = self.inner.read();\n        tx.send(env.epoch());\n    }\n}\n";
        let hits = lock_findings("crates/core/src/shared.rs", src);
        assert_eq!(hits, vec![(Rule::GuardAcrossSend, 4)]);

        let good = "impl S {\n    fn good(&self, tx: &Sender<u64>) {\n        let epoch = { let env = self.inner.read(); env.epoch() };\n        tx.send(epoch);\n    }\n}\n";
        assert!(lock_findings("crates/core/src/shared.rs", good).is_empty());
    }

    #[test]
    fn raw_locks_in_daemon_are_flagged_but_stdio_is_exempt() {
        let src = "struct S { q: Mutex<u64> }\nfn f(s: &S) {\n    let g = s.q.lock();\n}\n";
        let hits = lock_findings("crates/daemon/src/state.rs", src);
        assert_eq!(
            hits,
            vec![(Rule::RawLockInDaemon, 1), (Rule::RawLockInDaemon, 3)]
        );

        let stdio = "fn main() {\n    let stdin = std::io::stdin();\n    for line in stdin.lock().lines() {}\n}\n";
        assert!(lock_findings("crates/daemon/src/bin/qasomd.rs", stdio).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(c: &C) {\n        let s = c.shards[0].read();\n        let i = c.interner.read();\n    }\n}\n";
        assert!(lock_findings("crates/registry/src/discovery.rs", src).is_empty());
    }

    #[test]
    fn io_read_write_with_args_never_match() {
        let src = "impl S {\n    fn pump(&self, r: &mut impl Read, tx: &Sender<Vec<u8>>) {\n        let n = r.read(&mut buf);\n        tx.send(buf);\n    }\n}\n";
        // `.read(&mut buf)` has arguments: no guard, so no QA103 either.
        assert!(lock_findings("crates/core/src/shared.rs", src).is_empty());
    }
}
