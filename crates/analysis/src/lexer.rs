//! A minimal, dependency-free token lexer for the QA1xx lock-discipline
//! rules.
//!
//! The line scanner in [`crate::lint`] is enough for "this token may not
//! appear here" rules, but lock discipline is a *scope* property: a
//! guard acquired on line 10 is still held on line 40 unless the braces
//! say otherwise. This lexer turns stripped source (comments and string
//! literals already removed by the [`crate::lint`] state machine) into a
//! flat token stream — identifiers and single-character punctuation,
//! each tagged with its 1-based source line — over which
//! [`crate::locks`] runs a small abstract interpreter that tracks brace
//! depth, statement boundaries and guard lifetimes.
//!
//! This is still **not** a parser: there is no AST, no expression
//! grammar, no type information. Numeric literals are dropped (no rule
//! cares about them), identifiers keep their spelling, and everything
//! else comes through as one [`TokenKind::Punct`] per character. That is
//! exactly as much structure as brace/scope tracking needs, and it keeps
//! the lexer small enough to be obviously correct.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `drop`, `read`, `self`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `{`, `;`, ...).
    Punct(char),
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// The identifier spelling, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            TokenKind::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// Lexes stripped source lines (one entry per original source line, as
/// produced by the lint stripper) into a flat token stream.
///
/// Numeric literals are dropped entirely: `0x3f`, `1_000u64` and plain
/// digits never become tokens, so an identifier token always starts
/// with a letter or underscore.
pub fn lex(stripped_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in stripped_lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(chars[start..i].iter().collect()),
                    line: lineno,
                });
            } else if c.is_ascii_digit() {
                // Numeric literal (possibly with suffix / underscores /
                // hex digits): swallow the full alphanumeric run.
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A trailing `.` of a float literal (`1.5`) would
                // otherwise read as a method-call dot; swallow the
                // fraction too.
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
            } else {
                out.push(Token {
                    kind: TokenKind::Punct(c),
                    line: lineno,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(src: &str) -> Vec<Token> {
        let lines: Vec<String> = src.lines().map(|l| l.to_owned()).collect();
        lex(&lines)
    }

    #[test]
    fn idents_and_puncts_with_lines() {
        let toks = lex_str("let a = b.read();\n}\n");
        let spell: Vec<String> = toks
            .iter()
            .map(|t| match &t.kind {
                TokenKind::Ident(s) => s.clone(),
                TokenKind::Punct(c) => c.to_string(),
            })
            .collect();
        assert_eq!(
            spell,
            vec!["let", "a", "=", "b", ".", "read", "(", ")", ";", "}"]
        );
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks.last().map(|t| t.line), Some(2));
    }

    #[test]
    fn numeric_literals_are_dropped() {
        let toks = lex_str("let x = 0x3f + 1_000u64 + 2.5;");
        assert!(toks.iter().all(|t| !matches!(
            t.ident(),
            Some(s) if s.starts_with(|c: char| c.is_ascii_digit())
        )));
        // The float's dot must not surface as punctuation.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 0);
    }

    #[test]
    fn method_call_dot_survives() {
        let toks = lex_str("shards[0].read()");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 1);
    }
}
