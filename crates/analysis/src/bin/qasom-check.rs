//! `qasom-check` — deterministic schedule-exploring race checker. See
//! `qasom_analysis::check` for the explorer and the protocol models.
//!
//! ```text
//! cargo run -p qasom-analysis --bin qasom-check --release
//! cargo run -p qasom-analysis --bin qasom-check -- --seed 7 --out report.json
//! ```
//!
//! Emits a seed-stamped `RunReport` (JSON) with the `check` section and
//! `check.*` counters filled. The report is byte-identical for a given
//! seed — CI runs the binary twice and `cmp`s the outputs.
//!
//! Exit codes: 0 every model proved out and the schedule floor was met,
//! 1 a deadlock / violation / shortfall was found, 2 usage or I/O
//! error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use qasom_analysis::check::{run_suite, SuiteConfig};
use qasom_obs::report::RunReport;
use qasom_obs::{MemoryRecorder, Recorder};

/// The acceptance floor: the standard suite must explore at least this
/// many distinct schedules across its models.
const MIN_SCHEDULES: u64 = 1000;

struct Options {
    seed: u64,
    preemptions: usize,
    max_schedules: u64,
    out: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qasom-check [--seed <u64>] [--preemptions <n>] \
         [--max-schedules <n>] [--out <file>]\n\
         \n\
         Exhaustively explores the interleavings of the compose-churn,\n\
         shard-stamp and admission-queue protocol models under a\n\
         preemption-bounded deterministic scheduler, proving\n\
         deadlock-freedom and per-schedule invariants. Prints a\n\
         seed-stamped RunReport (byte-identical per seed)."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let defaults = SuiteConfig::default();
    let mut opts = Options {
        seed: defaults.seed,
        preemptions: defaults.preemption_bound,
        max_schedules: defaults.max_schedules,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |field: &mut dyn FnMut(&str) -> bool| match args.next() {
            Some(v) if field(&v) => Ok(()),
            _ => Err(usage()),
        };
        match arg.as_str() {
            "--seed" => take(&mut |v| v.parse().map(|s| opts.seed = s).is_ok())?,
            "--preemptions" => take(&mut |v| v.parse().map(|p| opts.preemptions = p).is_ok())?,
            "--max-schedules" => take(&mut |v| v.parse().map(|m| opts.max_schedules = m).is_ok())?,
            "--out" => take(&mut |v| {
                opts.out = Some(PathBuf::from(v));
                true
            })?,
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let cfg = SuiteConfig {
        seed: opts.seed,
        preemption_bound: opts.preemptions,
        max_schedules: opts.max_schedules,
    };
    let suite = run_suite(&cfg);

    let recorder = MemoryRecorder::new();
    suite.record(&recorder);
    let mut report = RunReport::new(cfg.seed, "qasom-check");
    report.check = Some(suite.to_section());
    if let Some(snapshot) = recorder.snapshot() {
        report.metrics = snapshot;
    }

    let rendered = report.to_pretty_string();
    match &opts.out {
        Some(path) => {
            if let Err(e) = fs::write(path, format!("{rendered}\n")) {
                eprintln!("qasom-check: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => println!("{rendered}"),
    }

    let mut failed = false;
    for r in &suite.results {
        let verdict = if r.ok() { "ok" } else { "FAILED" };
        eprintln!(
            "qasom-check: {:<16} {} — {} schedules, {} steps, depth {}, \
             {} deadlocks, {} violations{}",
            r.model,
            verdict,
            r.schedules,
            r.steps,
            r.max_depth,
            r.deadlocks,
            r.violations,
            if r.truncated { " (TRUNCATED)" } else { "" }
        );
        if let Some(sched) = &r.deadlock_example {
            eprintln!("qasom-check:   deadlock schedule: {sched:?}");
        }
        for v in &r.violation_examples {
            eprintln!(
                "qasom-check:   violation on {:?}: {}",
                v.schedule, v.message
            );
        }
        failed |= !r.ok();
    }
    if suite.schedules() < MIN_SCHEDULES {
        eprintln!(
            "qasom-check: only {} schedules explored across the suite \
             (floor is {MIN_SCHEDULES}); raise --preemptions",
            suite.schedules()
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    eprintln!(
        "qasom-check: all {} models proved out over {} schedules (seed {})",
        suite.results.len(),
        suite.schedules(),
        cfg.seed
    );
    ExitCode::SUCCESS
}
