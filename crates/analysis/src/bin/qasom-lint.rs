//! `qasom-lint` — offline workspace lint for determinism and panic
//! hygiene. See `qasom_analysis::lint` for the rule catalogue.
//!
//! ```text
//! cargo run -p qasom-analysis --bin qasom-lint            # check
//! cargo run -p qasom-analysis --bin qasom-lint -- --write-baseline
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use qasom_analysis::lint::{format_baseline, parse_baseline, scan_workspace, violations, Baseline};

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: qasom-lint [--root <workspace-dir>] [--baseline <file>] [--write-baseline]\n\
         \n\
         Scans the workspace sources for determinism-wallclock,\n\
         determinism-unordered, panic-unwrap and daemon-with-mut\n\
         findings, plus the scope-aware QA1xx lock-discipline family\n\
         (lock-order, write-under-read, guard-across-send,\n\
         raw-lock-in-daemon), comparing panic-unwrap counts against\n\
         the checked-in baseline (default: <root>/lint-baseline.txt).\n\
         All other rules fail outright."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    // The binary lives in crates/analysis; the workspace root is two up.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut opts = Options {
        root: default_root,
        baseline: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => opts.root = PathBuf::from(v),
                None => return Err(usage()),
            },
            "--baseline" => match args.next() {
                Some(v) => opts.baseline = Some(PathBuf::from(v)),
                None => return Err(usage()),
            },
            "--write-baseline" => opts.write_baseline = true,
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let root = opts.root.canonicalize().unwrap_or(opts.root);
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("qasom-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let rendered = format_baseline(&findings);
        if let Err(e) = fs::write(&baseline_path, &rendered) {
            eprintln!("qasom-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let entries = rendered.lines().filter(|l| !l.starts_with('#')).count();
        println!(
            "qasom-lint: wrote baseline with {entries} file entr{} to {}",
            if entries == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline: Baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(_) => Baseline::new(),
    };

    let violations = violations(&findings, &baseline);
    if violations.is_empty() {
        println!(
            "qasom-lint: clean ({} finding(s), all within baseline)",
            findings.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprint!("{v}");
    }
    eprintln!(
        "qasom-lint: {} file(s) violate the lint rules (see above); \
         fix them or, for panic-unwrap only, regenerate the baseline \
         with --write-baseline",
        violations.len()
    );
    ExitCode::FAILURE
}
