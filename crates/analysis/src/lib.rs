//! Static analysis for the QASOM middleware.
//!
//! Two coordinated layers (ISSUE 3):
//!
//! 1. **Domain analyzer** ([`Analyzer`]) — validates composition
//!    requests and provider QoS specifications *before* discovery and
//!    selection, emitting structured [`Diagnostic`]s with stable
//!    `QA0xx` codes. A malformed task graph, a unit-mismatched
//!    constraint or an unsatisfiable SLA is rejected at the front door
//!    instead of surfacing as a runtime failure deep inside QASSA.
//! 2. **Source lint** ([`lint`], plus the `qasom-lint` binary) — an
//!    offline token scanner enforcing workspace invariants: no
//!    wall-clock reads or iteration-order-randomised collections on
//!    simulated paths, and no new `.unwrap()` / `.expect(` in library
//!    code (existing debt is carried in `lint-baseline.txt`).
//!
//! The crate sits *below* `qasom-registry`, `qasom-selection` and the
//! core in the dependency graph (it depends only on the ontology, QoS
//! and task crates), so both request composition and QSD ingestion can
//! call into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod diag;
pub mod lint;

pub use analyzer::{Analyzer, ApproachKind, OperationView, RequestSpec, ServiceView};
pub use diag::{has_errors, partition, Diagnostic, DiagnosticCode, Location, Severity};
