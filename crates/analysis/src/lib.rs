//! Static analysis for the QASOM middleware.
//!
//! Two coordinated layers (ISSUE 3):
//!
//! 1. **Domain analyzer** ([`Analyzer`]) — validates composition
//!    requests and provider QoS specifications *before* discovery and
//!    selection, emitting structured [`Diagnostic`]s with stable
//!    `QA0xx` codes. A malformed task graph, a unit-mismatched
//!    constraint or an unsatisfiable SLA is rejected at the front door
//!    instead of surfacing as a runtime failure deep inside QASSA.
//! 2. **Source lint** ([`lint`], plus the `qasom-lint` binary) — an
//!    offline token scanner enforcing workspace invariants: no
//!    wall-clock reads or iteration-order-randomised collections on
//!    simulated paths, and no new `.unwrap()` / `.expect(` in library
//!    code (existing debt is carried in `lint-baseline.txt`). ISSUE 8
//!    upgrades it with a scope-aware QA1xx lock-discipline family
//!    ([`locks`], driven by the [`lexer`] token stream).
//! 3. **Schedule explorer** ([`check`], plus the `qasom-check` binary)
//!    — a deterministic mini-loom: small models of the workspace's real
//!    lock protocols are exhaustively interleaved under a
//!    preemption-bounded DFS scheduler, proving deadlock-freedom and
//!    per-schedule invariants, with byte-identical seeded reports.
//!
//! The crate sits *below* `qasom-registry`, `qasom-selection` and the
//! core in the dependency graph (it depends only on the ontology, QoS,
//! task and obs crates), so both request composition and QSD ingestion
//! can call into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
pub mod check;
mod diag;
pub mod lexer;
pub mod lint;
pub mod locks;

pub use analyzer::{Analyzer, ApproachKind, OperationView, RequestSpec, ServiceView};
pub use diag::{has_errors, partition, Diagnostic, DiagnosticCode, Location, Severity};
