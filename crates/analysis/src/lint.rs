//! The source lint: a lightweight line/token scanner over the workspace
//! enforcing determinism and panic-hygiene invariants.
//!
//! This is deliberately **not** a parser — no `syn`, no new dependencies.
//! Sources are stripped of comments and string literals with a small
//! state machine, `#[cfg(test)]` regions are tracked by brace counting,
//! and rules match fixed tokens on the remaining code. That is crude but
//! exactly as precise as these invariants need:
//!
//! * [`Rule::Wallclock`] (`determinism-wallclock`) — no `Instant::now`,
//!   `SystemTime::now` or `thread::sleep` on simulated paths
//!   (`crates/netsim`, `crates/daemon` and
//!   `crates/selection/src/distributed.rs`). The simulation clock is
//!   the only clock; the daemon blocks on channels and sockets, never
//!   on timers.
//! * [`Rule::Unordered`] (`determinism-unordered`) — no `HashMap` /
//!   `HashSet` in the same scope: their iteration order is randomised
//!   per process, which silently breaks replayable runs.
//! * [`Rule::PanicUnwrap`] (`panic-unwrap`) — no `.unwrap()` /
//!   `.expect(` in library code outside `#[cfg(test)]`. Existing debt is
//!   carried in a checked-in baseline (`lint-baseline.txt`); only *new*
//!   violations fail.
//! * [`Rule::DaemonWithMut`] (`daemon-with-mut`) — no
//!   `SharedEnvironment::with_mut` in `crates/daemon`: the daemon must
//!   go through the narrow typed mutators (`apply_churn`,
//!   `reload_ontology`, `execute`) so every write-lock acquisition is
//!   accounted and bounded; an arbitrary closure over the write lock
//!   could starve every serving session.
//!
//! The QA1xx lock-discipline family ([`Rule::LockOrder`],
//! [`Rule::WriteUnderRead`], [`Rule::GuardAcrossSend`],
//! [`Rule::RawLockInDaemon`]) is scope-aware: it runs over the
//! [`crate::lexer`] token stream with guard-lifetime tracking — see
//! [`crate::locks`] for the rules and the lock-order manifest.
//!
//! Any rule can be suppressed with `// lint:allow(<rule-name>)` on the
//! finding's line or on the line immediately above it.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads / real sleeps on simulated paths.
    Wallclock,
    /// Iteration-order-randomised collections on simulated paths.
    Unordered,
    /// `.unwrap()` / `.expect(` in non-test library code.
    PanicUnwrap,
    /// `with_mut` (the arbitrary write-lock closure) in daemon code.
    DaemonWithMut,
    /// QA101: lock acquisition inverting the manifest order.
    LockOrder,
    /// QA102: `.write()` while a read guard of the same lock is live.
    WriteUnderRead,
    /// QA103: lock guard held across a channel send / transport write.
    GuardAcrossSend,
    /// QA104: raw `Mutex`/`RwLock` use in `crates/daemon`.
    RawLockInDaemon,
}

impl Rule {
    /// The stable rule name used in reports, baselines and
    /// `lint:allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Wallclock => "determinism-wallclock",
            Rule::Unordered => "determinism-unordered",
            Rule::PanicUnwrap => "panic-unwrap",
            Rule::DaemonWithMut => "daemon-with-mut",
            Rule::LockOrder => "lock-order",
            Rule::WriteUnderRead => "write-under-read",
            Rule::GuardAcrossSend => "guard-across-send",
            Rule::RawLockInDaemon => "raw-lock-in-daemon",
        }
    }

    /// The QA-code of the rule, for the lock-discipline family.
    pub fn code(self) -> Option<&'static str> {
        match self {
            Rule::LockOrder => Some("QA101"),
            Rule::WriteUnderRead => Some("QA102"),
            Rule::GuardAcrossSend => Some("QA103"),
            Rule::RawLockInDaemon => Some("QA104"),
            _ => None,
        }
    }

    /// All rules, in reporting order.
    pub fn all() -> [Rule; 8] {
        [
            Rule::Wallclock,
            Rule::Unordered,
            Rule::PanicUnwrap,
            Rule::DaemonWithMut,
            Rule::LockOrder,
            Rule::WriteUnderRead,
            Rule::GuardAcrossSend,
            Rule::RawLockInDaemon,
        ]
    }

    /// Whether historical findings of this rule may be carried in the
    /// baseline file. Determinism rules may not: they fail outright.
    pub fn baselined(self) -> bool {
        matches!(self, Rule::PanicUnwrap)
    }

    fn tokens(self) -> &'static [&'static str] {
        match self {
            Rule::Wallclock => &[
                "Instant::now",
                "SystemTime::now",
                "thread::sleep",
                "Utc::now",
                "Local::now",
            ],
            Rule::Unordered => &["HashMap", "HashSet"],
            // `.unwrap()` / `.expect(` exactly, so `unwrap_or`,
            // `unwrap_or_else` and `expect_err` never match.
            Rule::PanicUnwrap => &[".unwrap()", ".expect("],
            Rule::DaemonWithMut => &["with_mut"],
            // The QA1xx family is scope-aware (crate::locks), not
            // token-matched; it never participates in the line loop.
            Rule::LockOrder
            | Rule::WriteUnderRead
            | Rule::GuardAcrossSend
            | Rule::RawLockInDaemon => &[],
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One matched token in one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that matched.
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Whether `rel` (workspace-relative, `/`-separated) is on a simulated
/// path where the determinism rules apply. The observability crate is
/// in scope: a recorder that read the wall clock would break the
/// byte-identical same-seed `RunReport` guarantee.
pub fn determinism_scope(rel: &str) -> bool {
    rel.starts_with("crates/netsim/src/")
        || rel.starts_with("crates/obs/src/")
        || rel.starts_with("crates/daemon/src/")
        || rel.starts_with("crates/cluster/src/")
        || rel == "crates/selection/src/distributed.rs"
}

/// Whether `rel` is daemon code where [`Rule::DaemonWithMut`] applies:
/// everything under `crates/daemon/src/`, transports and binary
/// included.
pub fn daemon_scope(rel: &str) -> bool {
    rel.starts_with("crates/daemon/src/")
}

/// Whether `rel` is library code where [`Rule::PanicUnwrap`] applies:
/// `src/` trees of the workspace packages, excluding binaries.
pub fn panic_scope(rel: &str) -> bool {
    let in_lib = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    in_lib && !rel.contains("/bin/")
}

/// Strips comments and string/char literals, returning one code-only
/// string per source line (line structure is preserved so findings can
/// report real line numbers).
fn strip(source: &str) -> Vec<String> {
    #[derive(Clone, Copy)]
    enum Mode {
        Code,
        /// Nested block comments, with depth.
        Block(u32),
        /// Ordinary string literal.
        Str,
        /// Raw string literal with this many `#`s.
        Raw(usize),
    }

    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment (incl. doc comments): drop to newline.
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    i += 1;
                } else if c == 'r' || c == 'b' {
                    // Possible raw/byte string: r"", r#""#, b"", br#""#.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + usize::from(c == 'b')) {
                        mode = Mode::Raw(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        mode = Mode::Str;
                        i += 2;
                    } else {
                        cur.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        // Lifetime: keep going.
                        cur.push(c);
                        i += 1;
                    }
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
            Mode::Block(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth > 1 {
                        Mode::Block(depth - 1)
                    } else {
                        Mode::Code
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '"' {
                        mode = Mode::Code;
                    }
                    i += 1;
                }
            }
            Mode::Raw(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        mode = Mode::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !cur.is_empty() || !source.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Tracks whether successive (stripped) lines fall inside a
/// `#[cfg(test)]`-gated item, by brace counting.
struct TestTracker {
    in_test: bool,
    depth: i64,
    pending: bool,
}

impl TestTracker {
    fn new() -> Self {
        TestTracker {
            in_test: false,
            depth: 0,
            pending: false,
        }
    }

    /// Feeds one stripped line; returns whether it is test-only code.
    fn feed(&mut self, stripped: &str) -> bool {
        if !self.in_test && stripped.contains("#[cfg(test)]") {
            self.pending = true;
        }
        let was = self.in_test || self.pending;
        for c in stripped.chars() {
            if self.in_test {
                match c {
                    '{' => self.depth += 1,
                    '}' => {
                        self.depth -= 1;
                        if self.depth <= 0 {
                            self.in_test = false;
                        }
                    }
                    _ => {}
                }
            } else if self.pending {
                match c {
                    // The gated item opens: the region runs to the
                    // matching close brace.
                    '{' => {
                        self.pending = false;
                        self.in_test = true;
                        self.depth = 1;
                    }
                    // `#[cfg(test)] use ...;` — single-item gate, over.
                    ';' => self.pending = false,
                    _ => {}
                }
            }
        }
        was
    }
}

/// Whether a finding of `rule` on 1-based line `line` is suppressed by
/// a `// lint:allow(<rule>)` comment — on the same line or on the line
/// immediately above.
pub(crate) fn allow_on(raw: &[&str], line: usize, rule: Rule) -> bool {
    let needle = format!("lint:allow({})", rule.name());
    let same = raw
        .get(line.wrapping_sub(1))
        .is_some_and(|l| l.contains(&needle));
    let above = line >= 2 && raw.get(line - 2).is_some_and(|l| l.contains(&needle));
    same || above
}

/// Scans one source file. `rel` is the workspace-relative path and
/// decides which rules are in scope.
pub fn scan_file(rel: &str, source: &str) -> Vec<Finding> {
    let det = determinism_scope(rel);
    let panics = panic_scope(rel);
    let daemon = daemon_scope(rel);
    let locks = crate::locks::locks_scope(rel);
    if !det && !panics && !daemon && !locks {
        return Vec::new();
    }
    let stripped = strip(source);
    let raw: Vec<&str> = source.lines().collect();
    let mut tests = TestTracker::new();
    let mut out = Vec::new();
    for (idx, code) in stripped.iter().enumerate() {
        let raw_line = raw.get(idx).copied().unwrap_or("");
        let in_test = tests.feed(code);
        for rule in Rule::all() {
            let in_scope = match rule {
                Rule::Wallclock | Rule::Unordered => det,
                Rule::PanicUnwrap => panics && !in_test,
                Rule::DaemonWithMut => daemon && !in_test,
                // Scope-aware rules run below, over the token stream.
                Rule::LockOrder
                | Rule::WriteUnderRead
                | Rule::GuardAcrossSend
                | Rule::RawLockInDaemon => false,
            };
            if !in_scope || !rule.tokens().iter().any(|t| code.contains(t)) {
                continue;
            }
            if allow_on(&raw, idx + 1, rule) {
                continue;
            }
            let mut excerpt: String = raw_line.trim().chars().take(120).collect();
            if excerpt.is_empty() {
                excerpt = code.trim().chars().take(120).collect();
            }
            out.push(Finding {
                rule,
                file: rel.to_owned(),
                line: idx + 1,
                excerpt,
            });
        }
    }
    if locks {
        out.extend(crate::locks::scan_locks(rel, &stripped, &raw));
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Recursively collects the workspace `.rs` sources under `root`
/// (the `crates/` and `src/` trees; `target`, `tests` and vendored
/// `shims` are never scanned) and runs every rule over them.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        out.extend(scan_file(&rel.replace('\\', "/"), &source));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            // `tests/` trees (and the lint fixtures below them) hold
            // intentional violations; `target` is build output.
            if name == "target" || name == "tests" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Allowed historical finding counts: `(rule name, file) -> count`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses a baseline file. Format: one `<rule> <file> <count>` triple
/// per line; `#` starts a comment.
pub fn parse_baseline(text: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if let Ok(count) = count.parse::<usize>() {
            out.insert((rule.to_owned(), file.to_owned()), count);
        }
    }
    out
}

/// Renders the baseline covering the given findings. Only rules with
/// [`Rule::baselined`] are recorded — determinism findings can never be
/// grandfathered.
pub fn format_baseline(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        if f.rule.baselined() {
            *counts
                .entry((f.rule.name().to_owned(), f.file.clone()))
                .or_insert(0) += 1;
        }
    }
    let mut out = String::from(
        "# qasom-lint baseline: historical finding counts per file.\n\
         # Regenerate with `cargo run -p qasom-analysis --bin qasom-lint -- --write-baseline`.\n\
         # Only shrink this file; new entries mean new violations.\n",
    );
    for ((rule, file), count) in &counts {
        out.push_str(&format!("{rule} {file} {count}\n"));
    }
    out
}

/// A file whose findings exceed what the baseline allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// Findings in the current tree.
    pub found: usize,
    /// Findings the baseline forgives.
    pub allowed: usize,
    /// The individual findings, for reporting.
    pub findings: Vec<Finding>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} finding(s) of [{}], baseline allows {}:",
            self.file,
            self.found,
            self.rule.name(),
            self.allowed
        )?;
        for finding in &self.findings {
            writeln!(
                f,
                "  {}:{}: {}",
                finding.file, finding.line, finding.excerpt
            )?;
        }
        Ok(())
    }
}

/// Compares findings against the baseline and returns the files that
/// regress. Determinism findings always violate; `panic-unwrap`
/// findings violate only where a file's count exceeds its baseline.
pub fn violations(findings: &[Finding], baseline: &Baseline) -> Vec<Violation> {
    let mut grouped: BTreeMap<(Rule, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        grouped
            .entry((f.rule, f.file.clone()))
            .or_default()
            .push(f.clone());
    }
    let mut out = Vec::new();
    for ((rule, file), findings) in grouped {
        let allowed = if rule.baselined() {
            baseline
                .get(&(rule.name().to_owned(), file.clone()))
                .copied()
                .unwrap_or(0)
        } else {
            0
        };
        if findings.len() > allowed {
            out.push(Violation {
                rule,
                file,
                found: findings.len(),
                allowed,
                findings,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let a = 1; // HashMap here\n/* Instant::now()\nstill comment */ let b = 2;\n";
        let lines = strip(src);
        assert_eq!(lines[0], "let a = 1; ");
        assert_eq!(lines[1], "");
        assert_eq!(lines[2], " let b = 2;");
    }

    #[test]
    fn strips_string_literals_and_keeps_lifetimes() {
        let lines = strip("let s = \"Instant::now()\"; fn f<'a>(x: &'a str) {}\n");
        assert!(!lines[0].contains("Instant::now"));
        assert!(lines[0].contains("<'a>"));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        let lines =
            strip("let s = r#\"HashMap \"inner\" HashSet\"#; let c = '\\n'; let d = 'x';\n");
        assert!(!lines[0].contains("HashMap"));
        assert!(!lines[0].contains("HashSet"));
    }

    #[test]
    fn wallclock_flagged_in_netsim_only() {
        let src = "fn t() { let x = Instant::now(); }\n";
        let hit = scan_file("crates/netsim/src/sim.rs", src);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, Rule::Wallclock);
        assert_eq!(hit[0].line, 1);
        assert!(scan_file("crates/qos/src/model.rs", src).is_empty());
    }

    #[test]
    fn unordered_flagged_in_distributed_selection() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            scan_file("crates/selection/src/distributed.rs", src).len(),
            1
        );
        assert!(scan_file("crates/selection/src/local.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); z.expect(\"msg\"); }\n}\nfn h() { w.expect(\"boom\"); }\n";
        let hits = scan_file("crates/qos/src/model.rs", src);
        let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 6]);
    }

    #[test]
    fn unwrap_or_and_expect_err_do_not_match() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.expect_err(\"e\"); }\n";
        assert!(scan_file("crates/qos/src/model.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "fn f() { x.unwrap(); } // lint:allow(panic-unwrap)\n";
        assert!(scan_file("crates/qos/src/model.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_on_previous_line_suppresses() {
        let src = "// lint:allow(panic-unwrap)\nfn f() { x.unwrap(); }\n";
        assert!(scan_file("crates/qos/src/model.rs", src).is_empty());
        // ...but only the line immediately above: one line further up
        // does not reach.
        let far = "// lint:allow(panic-unwrap)\n\nfn f() { x.unwrap(); }\n";
        assert_eq!(scan_file("crates/qos/src/model.rs", far).len(), 1);
        // A mismatched rule name on the previous line suppresses
        // nothing.
        let wrong = "// lint:allow(determinism-wallclock)\nfn f() { x.unwrap(); }\n";
        assert_eq!(scan_file("crates/qos/src/model.rs", wrong).len(), 1);
    }

    #[test]
    fn bin_paths_are_out_of_panic_scope() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(scan_file("crates/analysis/src/bin/qasom-lint.rs", src).is_empty());
    }

    #[test]
    fn with_mut_flagged_in_daemon_only() {
        let src = "fn f(s: &SharedEnvironment) { s.with_mut(|e| e.epoch()); }\n";
        let hits = scan_file("crates/daemon/src/broker.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::DaemonWithMut);
        // Library callers outside the daemon stay free to use it...
        assert!(scan_file("crates/core/src/shared.rs", src).is_empty());
        // ...and daemon tests may exercise it.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g(s: &S) { s.with_mut(|e| ()); }\n}\n";
        assert!(scan_file("crates/daemon/src/broker.rs", test_src).is_empty());
    }

    #[test]
    fn daemon_sources_are_in_determinism_scope() {
        let src = "fn t() { std::thread::sleep(d); }\n";
        let hits = scan_file("crates/daemon/src/tcp.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::Wallclock);
    }

    #[test]
    fn baseline_roundtrip_and_violations() {
        let findings = vec![
            Finding {
                rule: Rule::PanicUnwrap,
                file: "crates/qos/src/model.rs".into(),
                line: 3,
                excerpt: "x.unwrap()".into(),
            },
            Finding {
                rule: Rule::PanicUnwrap,
                file: "crates/qos/src/model.rs".into(),
                line: 9,
                excerpt: "y.unwrap()".into(),
            },
        ];
        let baseline = parse_baseline(&format_baseline(&findings));
        assert!(violations(&findings, &baseline).is_empty());

        // One fewer allowed: the file regresses.
        let tight = parse_baseline("panic-unwrap crates/qos/src/model.rs 1\n");
        let v = violations(&findings, &tight);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].found, 2);
        assert_eq!(v[0].allowed, 1);
    }

    #[test]
    fn determinism_findings_are_never_baselined() {
        let findings = vec![Finding {
            rule: Rule::Wallclock,
            file: "crates/netsim/src/sim.rs".into(),
            line: 1,
            excerpt: "Instant::now()".into(),
        }];
        assert!(format_baseline(&findings)
            .lines()
            .all(|l| l.starts_with('#')));
        let forged = parse_baseline("determinism-wallclock crates/netsim/src/sim.rs 5\n");
        assert_eq!(violations(&findings, &forged).len(), 1);
    }

    #[test]
    fn cfg_test_use_statement_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x.unwrap(); }\n";
        let hits = scan_file("crates/qos/src/model.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }
}
