//! Models of the workspace's real lock protocols, small enough to
//! explore exhaustively yet faithful to the invariants the live code
//! relies on.
//!
//! Each model abstracts one protocol that PR 5–PR 7 actually ship:
//!
//! * [`ComposeChurn`] — the serving split: N compose sessions read the
//!   environment under the `RwLock` read guard while churn takes the
//!   write guard and updates `(epoch, registry)` as a unit. The
//!   invariant is epoch parity: outside the write guard, derived state
//!   is always consistent with the epoch (readers never observe a
//!   half-applied churn).
//! * [`ShardStamp`] — the MatchCache: per-shard mutexes each carrying
//!   an ontology stamp; readers snapshot the current stamp under the
//!   environment read lock, then refresh their shard if stale. The
//!   invariant is stamp coherence: an unlocked shard's value is always
//!   the one computed under the shard's recorded stamp.
//! * [`AdmissionQueue`] — the daemon front door: producers submit into
//!   a bounded queue or get shed with a deterministic
//!   `Busy { retry_after_ticks }`, a consumer drains in batches and
//!   must not miss a wakeup. The invariants are conservation
//!   (admitted + shed = submitted, completed = admitted) and the PR 6
//!   retry formula `1 + ceil(queue / batch)` at every shed point.

use super::explore::Model;
use super::sync::{CheckMutex, CheckRwLock};

// ---------------------------------------------------------------------
// ComposeChurn
// ---------------------------------------------------------------------

/// Read-concurrent compose vs. write-lock churn with epoch parity.
pub struct ComposeChurn {
    /// Concurrent compose sessions (read-side threads).
    pub readers: usize,
    /// Churn rounds the single writer applies.
    pub churn_rounds: u8,
}

impl Default for ComposeChurn {
    fn default() -> Self {
        ComposeChurn {
            readers: 2,
            churn_rounds: 2,
        }
    }
}

/// State of [`ComposeChurn`].
#[derive(Clone)]
pub struct ComposeChurnState {
    lock: CheckRwLock,
    /// Churn generation, bumped under the write guard.
    epoch: u64,
    /// Derived registry state; must equal `3 * epoch` whenever the
    /// write guard is free.
    derived: u64,
    pc: Vec<u8>,
    /// Reader-local epoch snapshot taken under the read guard.
    snap: Vec<u64>,
    rounds_left: u8,
    failure: Option<String>,
}

impl Model for ComposeChurn {
    type State = ComposeChurnState;

    fn name(&self) -> &'static str {
        "compose-churn"
    }

    fn threads(&self) -> usize {
        self.readers + 1
    }

    fn init(&self) -> ComposeChurnState {
        ComposeChurnState {
            lock: CheckRwLock::new(),
            epoch: 0,
            derived: 0,
            pc: vec![0; self.readers + 1],
            snap: vec![0; self.readers],
            rounds_left: self.churn_rounds,
            failure: None,
        }
    }

    fn done(&self, s: &ComposeChurnState, t: usize) -> bool {
        s.pc[t] == 4
    }

    fn enabled(&self, s: &ComposeChurnState, t: usize) -> bool {
        if self.done(s, t) {
            return false;
        }
        if t < self.readers {
            match s.pc[t] {
                0 => s.lock.can_read(t),
                _ => true,
            }
        } else {
            match s.pc[t] {
                0 => s.lock.can_write(t),
                _ => true,
            }
        }
    }

    fn step(&self, s: &mut ComposeChurnState, t: usize) {
        if t < self.readers {
            match s.pc[t] {
                // compose(): epoch and registry are read as separate
                // steps — exactly the window the read guard protects.
                0 => s.lock.read(t),
                1 => s.snap[t] = s.epoch,
                2 => {
                    if s.derived != 3 * s.snap[t] {
                        s.failure = Some(format!(
                            "reader {t} composed against epoch {} but derived state {}",
                            s.snap[t], s.derived
                        ));
                    }
                }
                3 => s.lock.release_read(t),
                _ => unreachable!("stepped a done reader"),
            }
            s.pc[t] += 1;
        } else {
            match s.pc[t] {
                0 => s.lock.write(t),
                // apply_churn(): bump the epoch, then rebuild derived
                // state — torn between the two steps, which is legal
                // only because the write guard is exclusive.
                1 => s.epoch += 1,
                2 => s.derived = 3 * s.epoch,
                3 => {
                    s.lock.release_write(t);
                    s.rounds_left -= 1;
                    if s.rounds_left > 0 {
                        s.pc[t] = 0;
                        return;
                    }
                }
                _ => unreachable!("stepped a done writer"),
            }
            s.pc[t] += 1;
        }
    }

    fn check(&self, s: &ComposeChurnState) -> Result<(), String> {
        if let Some(m) = &s.failure {
            return Err(m.clone());
        }
        // Epoch parity: torn (epoch, derived) pairs may exist only
        // behind the write guard.
        if !s.lock.write_held() && s.derived != 3 * s.epoch {
            return Err(format!(
                "torn churn visible without write guard: epoch {} derived {}",
                s.epoch, s.derived
            ));
        }
        Ok(())
    }

    fn check_final(&self, s: &ComposeChurnState) -> Result<(), String> {
        let want = u64::from(self.churn_rounds);
        if s.epoch != want {
            return Err(format!(
                "expected {} churn rounds, saw epoch {}",
                want, s.epoch
            ));
        }
        if s.lock.write_held() || s.lock.reader_count() != 0 {
            return Err("lock leaked at end of schedule".to_owned());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// ShardStamp
// ---------------------------------------------------------------------

/// Sharded MatchCache stamp invalidation under ontology churn.
pub struct ShardStamp {
    /// Cache-reading threads (thread `t` uses shard `t % shards`).
    pub readers: usize,
    /// Number of independent shard mutexes.
    pub shards: usize,
    /// Ontology reloads the single writer applies.
    pub reload_rounds: u8,
}

impl Default for ShardStamp {
    fn default() -> Self {
        ShardStamp {
            readers: 2,
            shards: 2,
            reload_rounds: 2,
        }
    }
}

/// State of [`ShardStamp`].
#[derive(Clone)]
pub struct ShardStampState {
    env: CheckRwLock,
    /// Current ontology stamp, bumped under the environment write lock.
    stamp: u64,
    shard_locks: Vec<CheckMutex>,
    shard_stamp: Vec<u64>,
    /// Cached value; must equal `7 * shard_stamp` when the shard is
    /// unlocked.
    shard_value: Vec<u64>,
    pc: Vec<u8>,
    /// Reader-local stamp snapshot.
    snap: Vec<u64>,
    rounds_left: u8,
    failure: Option<String>,
}

impl ShardStamp {
    fn shard_of(&self, t: usize) -> usize {
        t % self.shards
    }
}

impl Model for ShardStamp {
    type State = ShardStampState;

    fn name(&self) -> &'static str {
        "shard-stamp"
    }

    fn threads(&self) -> usize {
        self.readers + 1
    }

    fn init(&self) -> ShardStampState {
        ShardStampState {
            env: CheckRwLock::new(),
            stamp: 1,
            shard_locks: vec![CheckMutex::new(); self.shards],
            shard_stamp: vec![1; self.shards],
            shard_value: vec![7; self.shards],
            pc: vec![0; self.readers + 1],
            snap: vec![0; self.readers],
            rounds_left: self.reload_rounds,
            failure: None,
        }
    }

    fn done(&self, s: &ShardStampState, t: usize) -> bool {
        if t < self.readers {
            s.pc[t] == 7
        } else {
            s.pc[t] == 3
        }
    }

    fn enabled(&self, s: &ShardStampState, t: usize) -> bool {
        if self.done(s, t) {
            return false;
        }
        if t < self.readers {
            match s.pc[t] {
                0 => s.env.can_read(t),
                3 => s.shard_locks[self.shard_of(t)].can_lock(t),
                _ => true,
            }
        } else {
            match s.pc[t] {
                0 => s.env.can_write(t),
                _ => true,
            }
        }
    }

    fn step(&self, s: &mut ShardStampState, t: usize) {
        if t < self.readers {
            let k = self.shard_of(t);
            match s.pc[t] {
                // lookup()/put(): snapshot the stamp under the env read
                // lock, release, then work on the shard under its own
                // mutex — the lock-order manifest in miniature.
                0 => s.env.read(t),
                1 => s.snap[t] = s.stamp,
                2 => s.env.release_read(t),
                3 => s.shard_locks[k].lock(t),
                4 => {
                    // Stale shard: refresh the value first...
                    if s.shard_stamp[k] != s.snap[t] {
                        s.shard_value[k] = 7 * s.snap[t];
                    } else {
                        // ...or skip straight to the consistency read.
                        s.pc[t] = 6;
                        return;
                    }
                }
                // ...then adopt the stamp (a separate step: the mutex
                // is what makes the pair atomic to other threads).
                5 => s.shard_stamp[k] = s.snap[t],
                6 => {
                    if s.shard_value[k] != 7 * s.shard_stamp[k] {
                        s.failure = Some(format!(
                            "reader {t} saw shard {k} value {} under stamp {}",
                            s.shard_value[k], s.shard_stamp[k]
                        ));
                    }
                    s.shard_locks[k].unlock(t);
                }
                _ => unreachable!("stepped a done reader"),
            }
            s.pc[t] += 1;
        } else {
            match s.pc[t] {
                0 => s.env.write(t),
                1 => s.stamp += 1,
                2 => {
                    s.env.release_write(t);
                    s.rounds_left -= 1;
                    if s.rounds_left > 0 {
                        s.pc[t] = 0;
                        return;
                    }
                }
                _ => unreachable!("stepped a done writer"),
            }
            s.pc[t] += 1;
        }
    }

    fn check(&self, s: &ShardStampState) -> Result<(), String> {
        if let Some(m) = &s.failure {
            return Err(m.clone());
        }
        for k in 0..self.shards {
            // Stamp coherence: a torn (value, stamp) pair may exist
            // only while the shard mutex is held.
            if !s.shard_locks[k].held() && s.shard_value[k] != 7 * s.shard_stamp[k] {
                return Err(format!(
                    "shard {k} torn while unlocked: value {} stamp {}",
                    s.shard_value[k], s.shard_stamp[k]
                ));
            }
        }
        Ok(())
    }

    fn check_final(&self, s: &ShardStampState) -> Result<(), String> {
        let want = 1 + u64::from(self.reload_rounds);
        if s.stamp != want {
            return Err(format!("expected final stamp {want}, saw {}", s.stamp));
        }
        if s.shard_locks.iter().any(CheckMutex::held) {
            return Err("shard mutex leaked at end of schedule".to_owned());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------

/// The daemon admission queue: bounded submit, batched drain,
/// deterministic `Busy` shedding, no lost wakeups.
pub struct AdmissionQueue {
    /// Producer threads, one session submit each.
    pub producers: usize,
    /// Queue capacity before shedding.
    pub capacity: usize,
    /// Consumer drain batch size.
    pub batch: usize,
}

impl Default for AdmissionQueue {
    fn default() -> Self {
        AdmissionQueue {
            producers: 3,
            capacity: 2,
            batch: 2,
        }
    }
}

/// State of [`AdmissionQueue`].
#[derive(Clone)]
pub struct AdmissionQueueState {
    q: CheckMutex,
    queue: Vec<usize>,
    submitted: u64,
    admitted: u64,
    completed: u64,
    /// `(producer, retry_after_ticks)` per shed decision.
    shed: Vec<(usize, u64)>,
    pc: Vec<u8>,
    failure: Option<String>,
}

impl AdmissionQueue {
    fn producers_done(&self, s: &AdmissionQueueState) -> bool {
        (0..self.producers).all(|t| s.pc[t] == 3)
    }

    /// PR 6's shed formula: `1 + ceil(queue_depth / batch)` ticks.
    fn retry_after(&self, queue_depth: usize) -> u64 {
        1 + (queue_depth as u64).div_ceil(self.batch as u64)
    }
}

impl Model for AdmissionQueue {
    type State = AdmissionQueueState;

    fn name(&self) -> &'static str {
        "admission-queue"
    }

    fn threads(&self) -> usize {
        self.producers + 1
    }

    fn init(&self) -> AdmissionQueueState {
        AdmissionQueueState {
            q: CheckMutex::new(),
            queue: Vec::new(),
            submitted: 0,
            admitted: 0,
            completed: 0,
            shed: Vec::new(),
            pc: vec![0; self.producers + 1],
            failure: None,
        }
    }

    fn done(&self, s: &AdmissionQueueState, t: usize) -> bool {
        s.pc[t] == 3
    }

    fn enabled(&self, s: &AdmissionQueueState, t: usize) -> bool {
        if self.done(s, t) {
            return false;
        }
        if t < self.producers {
            match s.pc[t] {
                0 => s.q.can_lock(t),
                _ => true,
            }
        } else {
            match s.pc[t] {
                // The consumer's wakeup condition: work queued, or the
                // system is draining down. Getting this predicate wrong
                // is a lost wakeup — which the explorer reports as a
                // deadlock, since the consumer never re-enables.
                0 => s.q.can_lock(t) && (!s.queue.is_empty() || self.producers_done(s)),
                _ => true,
            }
        }
    }

    fn step(&self, s: &mut AdmissionQueueState, t: usize) {
        if t < self.producers {
            match s.pc[t] {
                0 => s.q.lock(t),
                1 => {
                    s.submitted += 1;
                    if s.queue.len() >= self.capacity {
                        let retry = self.retry_after(s.queue.len());
                        let want = self.retry_after(self.capacity);
                        if retry != want {
                            s.failure = Some(format!(
                                "producer {t} shed with retry_after {retry}, expected {want}"
                            ));
                        }
                        s.shed.push((t, retry));
                    } else {
                        s.queue.push(t);
                        s.admitted += 1;
                    }
                }
                2 => s.q.unlock(t),
                _ => unreachable!("stepped a done producer"),
            }
            s.pc[t] += 1;
        } else {
            match s.pc[t] {
                0 => s.q.lock(t),
                1 => {
                    let n = self.batch.min(s.queue.len());
                    s.queue.drain(..n);
                    s.completed += n as u64;
                }
                2 => {
                    s.q.unlock(t);
                    if self.producers_done(s) && s.queue.is_empty() {
                        s.pc[t] = 3;
                    } else {
                        s.pc[t] = 0;
                    }
                    return;
                }
                _ => unreachable!("stepped a done consumer"),
            }
            s.pc[t] += 1;
        }
    }

    fn check(&self, s: &AdmissionQueueState) -> Result<(), String> {
        if let Some(m) = &s.failure {
            return Err(m.clone());
        }
        if s.queue.len() > self.capacity {
            return Err(format!(
                "queue over capacity: {} > {}",
                s.queue.len(),
                self.capacity
            ));
        }
        Ok(())
    }

    fn check_final(&self, s: &AdmissionQueueState) -> Result<(), String> {
        if s.admitted + s.shed.len() as u64 != s.submitted {
            return Err(format!(
                "admission leak: admitted {} + shed {} != submitted {}",
                s.admitted,
                s.shed.len(),
                s.submitted
            ));
        }
        if s.submitted != self.producers as u64 {
            return Err(format!(
                "expected {} submissions, saw {}",
                self.producers, s.submitted
            ));
        }
        if s.completed != s.admitted {
            return Err(format!(
                "lost sessions: completed {} != admitted {}",
                s.completed, s.admitted
            ));
        }
        if !s.queue.is_empty() {
            return Err(format!("queue not drained: {} left", s.queue.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::explore::{explore, ExploreConfig};
    use super::*;

    #[test]
    fn compose_churn_proves_out() {
        let res = explore(&ComposeChurn::default(), &ExploreConfig::default());
        assert!(
            res.ok(),
            "deadlocks {} violations {}",
            res.deadlocks,
            res.violations
        );
        assert!(res.schedules > 0);
    }

    #[test]
    fn shard_stamp_proves_out() {
        let res = explore(&ShardStamp::default(), &ExploreConfig::default());
        assert!(
            res.ok(),
            "deadlocks {} violations {}",
            res.deadlocks,
            res.violations
        );
        assert!(res.schedules > 0);
    }

    #[test]
    fn admission_queue_proves_out_and_explores_a_shed_path() {
        let res = explore(&AdmissionQueue::default(), &ExploreConfig::default());
        assert!(
            res.ok(),
            "deadlocks {} violations {}",
            res.deadlocks,
            res.violations
        );
        assert!(res.schedules > 0);
    }

    /// Mutating the epoch parity protocol to skip the write lock must
    /// surface as a violation — the models are only trustworthy if the
    /// explorer can catch them misbehaving.
    struct ChurnWithoutLock;

    impl Model for ChurnWithoutLock {
        type State = ComposeChurnState;

        fn name(&self) -> &'static str {
            "churn-without-lock"
        }

        fn threads(&self) -> usize {
            ComposeChurn::default().threads()
        }

        fn init(&self) -> ComposeChurnState {
            ComposeChurn::default().init()
        }

        fn done(&self, s: &ComposeChurnState, t: usize) -> bool {
            ComposeChurn::default().done(s, t)
        }

        fn enabled(&self, s: &ComposeChurnState, t: usize) -> bool {
            let inner = ComposeChurn::default();
            if t == inner.readers {
                // The buggy writer never blocks: it skips the lock.
                !self.done(s, t)
            } else {
                inner.enabled(s, t)
            }
        }

        fn step(&self, s: &mut ComposeChurnState, t: usize) {
            let inner = ComposeChurn::default();
            if t == inner.readers {
                // Same churn, no guard: pc 0 and 3 become no-ops.
                match s.pc[t] {
                    0 => {}
                    1 => s.epoch += 1,
                    2 => s.derived = 3 * s.epoch,
                    3 => {
                        s.rounds_left -= 1;
                        if s.rounds_left > 0 {
                            s.pc[t] = 0;
                            return;
                        }
                    }
                    _ => unreachable!(),
                }
                s.pc[t] += 1;
            } else {
                inner.step(s, t);
            }
        }

        fn check(&self, s: &ComposeChurnState) -> Result<(), String> {
            ComposeChurn::default().check(s)
        }

        fn check_final(&self, s: &ComposeChurnState) -> Result<(), String> {
            ComposeChurn::default().check_final(s)
        }
    }

    #[test]
    fn lockless_churn_is_caught() {
        let res = explore(&ChurnWithoutLock, &ExploreConfig::default());
        assert!(res.violations > 0, "unlocked churn must be observable");
    }
}
