//! Model-level lock shims for the schedule explorer.
//!
//! These mirror `std::sync::Mutex` / `std::sync::RwLock` semantics but
//! live entirely inside a model's cloneable state: acquisition is an
//! explicit, atomic model step, and *blocking* is expressed through the
//! model's enabled-set (a thread whose next step cannot acquire is
//! simply not enabled), so the DFS scheduler never has to model a
//! spinning retry and the schedule space stays finite.
//!
//! Thread identity is a plain `usize` index. The shims are deliberately
//! strict: releasing a lock one does not hold, or double-acquiring,
//! panics — in a model that is a modelling bug, not an interleaving to
//! explore.

use std::collections::BTreeSet;

/// A mutual-exclusion lock owned by at most one model thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckMutex {
    owner: Option<usize>,
}

impl CheckMutex {
    /// A released mutex.
    pub fn new() -> Self {
        CheckMutex::default()
    }

    /// Whether thread `t` could acquire right now (use in `enabled`).
    pub fn can_lock(&self, t: usize) -> bool {
        self.owner.is_none() && {
            // Re-entrant locking would self-deadlock; the explorer
            // treats it as "never enabled", which the deadlock detector
            // then reports.
            let _ = t;
            true
        }
    }

    /// Acquires for thread `t`. Panics if not currently acquirable —
    /// models must gate the step on [`CheckMutex::can_lock`].
    pub fn lock(&mut self, t: usize) {
        assert!(
            self.owner.is_none(),
            "model bug: thread {t} locking a held mutex"
        );
        self.owner = Some(t);
    }

    /// Releases the lock held by `t`.
    pub fn unlock(&mut self, t: usize) {
        assert_eq!(
            self.owner,
            Some(t),
            "model bug: thread {t} unlocking a mutex it does not hold"
        );
        self.owner = None;
    }

    /// Whether any thread holds the lock.
    pub fn held(&self) -> bool {
        self.owner.is_some()
    }
}

/// A readers-writer lock over model thread indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckRwLock {
    readers: BTreeSet<usize>,
    writer: Option<usize>,
}

impl CheckRwLock {
    /// A released lock.
    pub fn new() -> Self {
        CheckRwLock::default()
    }

    /// Whether thread `t` could acquire a read guard right now.
    pub fn can_read(&self, t: usize) -> bool {
        self.writer.is_none() && !self.readers.contains(&t)
    }

    /// Whether thread `t` could acquire the write guard right now.
    pub fn can_write(&self, t: usize) -> bool {
        let _ = t;
        self.writer.is_none() && self.readers.is_empty()
    }

    /// Acquires a read guard for `t`; gate on [`CheckRwLock::can_read`].
    pub fn read(&mut self, t: usize) {
        assert!(
            self.can_read(t),
            "model bug: thread {t} read-locking while unreadable"
        );
        self.readers.insert(t);
    }

    /// Acquires the write guard for `t`; gate on
    /// [`CheckRwLock::can_write`].
    pub fn write(&mut self, t: usize) {
        assert!(
            self.can_write(t),
            "model bug: thread {t} write-locking while held"
        );
        self.writer = Some(t);
    }

    /// Releases `t`'s read guard.
    pub fn release_read(&mut self, t: usize) {
        assert!(
            self.readers.remove(&t),
            "model bug: thread {t} releasing a read guard it does not hold"
        );
    }

    /// Releases `t`'s write guard.
    pub fn release_write(&mut self, t: usize) {
        assert_eq!(
            self.writer,
            Some(t),
            "model bug: thread {t} releasing a write guard it does not hold"
        );
        self.writer = None;
    }

    /// Whether the write guard is held.
    pub fn write_held(&self) -> bool {
        self.writer.is_some()
    }

    /// Number of live read guards.
    pub fn reader_count(&self) -> usize {
        self.readers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_excludes() {
        let mut m = CheckMutex::new();
        assert!(m.can_lock(0));
        m.lock(0);
        assert!(!m.can_lock(1));
        assert!(m.held());
        m.unlock(0);
        assert!(m.can_lock(1));
    }

    #[test]
    fn rwlock_admits_readers_until_writer() {
        let mut l = CheckRwLock::new();
        l.read(0);
        l.read(1);
        assert!(!l.can_write(2));
        assert_eq!(l.reader_count(), 2);
        l.release_read(0);
        l.release_read(1);
        assert!(l.can_write(2));
        l.write(2);
        assert!(!l.can_read(0));
        l.release_write(2);
        assert!(l.can_read(0));
    }

    #[test]
    #[should_panic(expected = "model bug")]
    fn double_lock_panics() {
        let mut m = CheckMutex::new();
        m.lock(0);
        m.lock(1);
    }
}
