//! The deterministic schedule explorer: a depth-first, stateless-clone
//! scheduler over small concurrency models.
//!
//! A [`Model`] is a handful of threads, each a tiny program counter
//! machine over a cloneable shared state. The explorer walks every
//! maximal interleaving (bounded by a preemption budget, CHESS-style):
//! at each node it asks the model which threads are *enabled* — a
//! thread whose next step would block on a [`super::sync`] shim lock is
//! simply not enabled, so blocking never spins and the schedule space
//! stays finite. Switching away from a thread that is still enabled
//! costs one unit of preemption budget; switching because the current
//! thread blocked or finished is free. Empirically (and per the CHESS
//! result) a budget of 2–3 preemptions finds practically all real
//! ordering bugs while keeping exhaustive exploration tractable.
//!
//! Three verdicts are produced per maximal schedule:
//!
//! * **deadlock** — not every thread is done, yet no thread is enabled;
//! * **violation** — the model's per-step invariant or final-state
//!   check failed (the offending schedule is recorded);
//! * **ok** — the schedule ran to completion with invariants holding.
//!
//! Everything is deterministic: no randomness, no wall clock, no
//! allocation-order dependence. The seed only rotates the order in
//! which enabled threads are visited at each depth, so two runs with
//! the same seed produce byte-identical results (and two runs with
//! different seeds produce identical *counts* — the tree is the same
//! tree, walked in a different sibling order).

/// A small concurrency model the explorer can drive.
pub trait Model {
    /// Cloneable shared state (locks, data, per-thread program
    /// counters).
    type State: Clone;

    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Number of threads, indexed `0..threads()`.
    fn threads(&self) -> usize;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Whether thread `t` has run to completion.
    fn done(&self, s: &Self::State, t: usize) -> bool;

    /// Whether thread `t` can take a step right now. Must be `false`
    /// for done threads and for threads whose next step would block.
    fn enabled(&self, s: &Self::State, t: usize) -> bool;

    /// Executes one atomic step of thread `t`. Only called when
    /// [`Model::enabled`] returned `true`; must always make progress.
    fn step(&self, s: &mut Self::State, t: usize);

    /// Invariant checked after every step.
    fn check(&self, s: &Self::State) -> Result<(), String>;

    /// Invariant checked once all threads are done.
    fn check_final(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration bounds and the sibling-order seed.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Rotates enabled-thread visit order per depth; does not change
    /// which schedules exist, only the order they are visited in.
    pub seed: u64,
    /// Maximum context switches away from a still-enabled thread.
    pub preemption_bound: usize,
    /// Hard cap on maximal schedules before the run is marked
    /// truncated.
    pub max_schedules: u64,
    /// Hard cap on executed steps before the run is marked truncated.
    pub max_steps: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 42,
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 20_000_000,
        }
    }
}

/// A schedule on which an invariant failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedViolation {
    /// The thread indices executed, in order, up to the failure.
    pub schedule: Vec<usize>,
    /// The model's failure message.
    pub message: String,
}

/// Aggregated outcome of exploring one model.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Model name.
    pub model: &'static str,
    /// Thread count.
    pub threads: usize,
    /// The preemption budget the exploration ran under.
    pub preemption_bound: usize,
    /// Maximal schedules explored (ok + deadlocked + violating).
    pub schedules: u64,
    /// Total model steps executed.
    pub steps: u64,
    /// Longest schedule, in steps.
    pub max_depth: usize,
    /// Schedules ending with no enabled thread before completion.
    pub deadlocks: u64,
    /// An example deadlocking schedule, if any.
    pub deadlock_example: Option<Vec<usize>>,
    /// Total invariant violations (per-step and final).
    pub violations: u64,
    /// Up to [`MAX_VIOLATION_EXAMPLES`] recorded violating schedules.
    pub violation_examples: Vec<SchedViolation>,
    /// Whether a bound cut the exploration short.
    pub truncated: bool,
}

/// How many violating schedules are kept verbatim for reporting.
pub const MAX_VIOLATION_EXAMPLES: usize = 8;

impl ExploreResult {
    /// Whether the model proved out: fully explored, no deadlock, no
    /// violation.
    pub fn ok(&self) -> bool {
        !self.truncated && self.deadlocks == 0 && self.violations == 0
    }
}

struct Dfs<'m, M: Model> {
    model: &'m M,
    cfg: &'m ExploreConfig,
    path: Vec<usize>,
    res: ExploreResult,
}

impl<M: Model> Dfs<'_, M> {
    fn over_budget(&self) -> bool {
        self.res.schedules >= self.cfg.max_schedules || self.res.steps >= self.cfg.max_steps
    }

    fn violation(&mut self, message: String) {
        self.res.violations += 1;
        if self.res.violation_examples.len() < MAX_VIOLATION_EXAMPLES {
            self.res.violation_examples.push(SchedViolation {
                schedule: self.path.clone(),
                message,
            });
        }
    }

    fn walk(&mut self, state: &M::State, last: Option<usize>, preemptions: usize) {
        if self.over_budget() {
            self.res.truncated = true;
            return;
        }
        let n = self.model.threads();
        if (0..n).all(|t| self.model.done(state, t)) {
            self.res.schedules += 1;
            self.res.max_depth = self.res.max_depth.max(self.path.len());
            if let Err(m) = self.model.check_final(state) {
                self.violation(m);
            }
            return;
        }
        let enabled: Vec<usize> = (0..n).filter(|&t| self.model.enabled(state, t)).collect();
        if enabled.is_empty() {
            self.res.schedules += 1;
            self.res.deadlocks += 1;
            self.res.max_depth = self.res.max_depth.max(self.path.len());
            if self.res.deadlock_example.is_none() {
                self.res.deadlock_example = Some(self.path.clone());
            }
            return;
        }
        let k = enabled.len();
        let offset = (self.cfg.seed as usize).wrapping_add(self.path.len()) % k;
        for visit in 0..k {
            let t = enabled[(visit + offset) % k];
            // Leaving a still-enabled `last` for `t` is a preemption;
            // switching because `last` blocked or finished is free.
            let cost = usize::from(matches!(
                last,
                Some(p) if p != t && self.model.enabled(state, p)
            ));
            if preemptions + cost > self.cfg.preemption_bound {
                continue;
            }
            let mut next = state.clone();
            self.model.step(&mut next, t);
            self.res.steps += 1;
            self.path.push(t);
            match self.model.check(&next) {
                Err(m) => {
                    // The schedule is maximal for our purposes: the
                    // invariant broke here, its extensions add nothing.
                    self.res.schedules += 1;
                    self.violation(m);
                }
                Ok(()) => self.walk(&next, Some(t), preemptions + cost),
            }
            self.path.pop();
            if self.res.truncated {
                return;
            }
        }
    }
}

/// Exhaustively explores `model` under `cfg`.
pub fn explore<M: Model>(model: &M, cfg: &ExploreConfig) -> ExploreResult {
    let mut dfs = Dfs {
        model,
        cfg,
        path: Vec::new(),
        res: ExploreResult {
            model: model.name(),
            threads: model.threads(),
            preemption_bound: cfg.preemption_bound,
            schedules: 0,
            steps: 0,
            max_depth: 0,
            deadlocks: 0,
            deadlock_example: None,
            violations: 0,
            violation_examples: Vec::new(),
            truncated: false,
        },
    };
    let init = model.init();
    if let Err(m) = model.check(&init) {
        dfs.violation(m);
        dfs.res.schedules = 1;
        return dfs.res;
    }
    dfs.walk(&init, None, 0);
    dfs.res
}

#[cfg(test)]
mod tests {
    use super::super::sync::CheckMutex;
    use super::*;

    /// Two threads taking two mutexes in opposite order: the classic
    /// deadlock. Proves the explorer's deadlock detector works.
    struct OpposedLocks;

    #[derive(Clone)]
    struct OlState {
        a: CheckMutex,
        b: CheckMutex,
        pc: [u8; 2],
    }

    impl Model for OpposedLocks {
        type State = OlState;

        fn name(&self) -> &'static str {
            "opposed-locks"
        }

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> OlState {
            OlState {
                a: CheckMutex::new(),
                b: CheckMutex::new(),
                pc: [0, 0],
            }
        }

        fn done(&self, s: &OlState, t: usize) -> bool {
            s.pc[t] == 4
        }

        fn enabled(&self, s: &OlState, t: usize) -> bool {
            // Thread 0 takes a then b; thread 1 takes b then a.
            let (first, second) = if t == 0 { (&s.a, &s.b) } else { (&s.b, &s.a) };
            match s.pc[t] {
                0 => first.can_lock(t),
                1 => second.can_lock(t),
                2 | 3 => true,
                _ => false,
            }
        }

        fn step(&self, s: &mut OlState, t: usize) {
            let pc = s.pc[t];
            let (first, second) = if t == 0 {
                (&mut s.a, &mut s.b)
            } else {
                (&mut s.b, &mut s.a)
            };
            match pc {
                0 => first.lock(t),
                1 => second.lock(t),
                2 => second.unlock(t),
                3 => first.unlock(t),
                _ => unreachable!("stepped a done thread"),
            }
            s.pc[t] += 1;
        }

        fn check(&self, _s: &OlState) -> Result<(), String> {
            Ok(())
        }

        fn check_final(&self, _s: &OlState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn opposed_lock_order_deadlocks_are_found() {
        let res = explore(&OpposedLocks, &ExploreConfig::default());
        assert!(res.deadlocks > 0, "must find the a/b-b/a deadlock");
        assert_eq!(res.violations, 0);
        assert!(!res.truncated);
        // The canonical shortest deadlock: t0 takes a, t1 takes b.
        let ex = res.deadlock_example.expect("example recorded");
        assert_eq!(ex.len(), 2);
    }

    /// A writer that mutates shared data without any lock: readers can
    /// observe the torn intermediate. Proves violation detection works.
    struct TornWriter;

    #[derive(Clone)]
    struct TwState {
        x: u64,
        y: u64,
        pc: [u8; 2],
        seen_torn: Option<String>,
    }

    impl Model for TornWriter {
        type State = TwState;

        fn name(&self) -> &'static str {
            "torn-writer"
        }

        fn threads(&self) -> usize {
            2
        }

        fn init(&self) -> TwState {
            TwState {
                x: 0,
                y: 0,
                pc: [0, 0],
                seen_torn: None,
            }
        }

        fn done(&self, s: &TwState, t: usize) -> bool {
            s.pc[t] == 2
        }

        fn enabled(&self, s: &TwState, t: usize) -> bool {
            !self.done(s, t)
        }

        fn step(&self, s: &mut TwState, t: usize) {
            if t == 0 {
                // Writer: x then y, supposedly atomically — but there
                // is no lock.
                match s.pc[0] {
                    0 => s.x += 1,
                    1 => s.y += 1,
                    _ => unreachable!(),
                }
            } else {
                // Reader: observes the pair.
                match s.pc[1] {
                    0 => {
                        if s.x != s.y {
                            s.seen_torn = Some(format!("torn read: x={} y={}", s.x, s.y));
                        }
                    }
                    1 => {}
                    _ => unreachable!(),
                }
            }
            s.pc[t] += 1;
        }

        fn check(&self, s: &TwState) -> Result<(), String> {
            match &s.seen_torn {
                Some(m) => Err(m.clone()),
                None => Ok(()),
            }
        }

        fn check_final(&self, _s: &TwState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn unlocked_torn_write_is_caught() {
        let res = explore(&TornWriter, &ExploreConfig::default());
        assert!(res.violations > 0, "must observe the torn interleaving");
        assert_eq!(res.deadlocks, 0);
        let ex = &res.violation_examples[0];
        assert!(ex.message.contains("torn read"));
        assert!(!ex.schedule.is_empty());
    }

    #[test]
    fn same_seed_is_identical_and_counts_are_seed_independent() {
        let a = explore(&TornWriter, &ExploreConfig::default());
        let b = explore(&TornWriter, &ExploreConfig::default());
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.violation_examples, b.violation_examples);
        let other = explore(
            &TornWriter,
            &ExploreConfig {
                seed: 7,
                ..ExploreConfig::default()
            },
        );
        // A different seed walks the same tree in a different order:
        // identical counts, possibly different recorded examples.
        assert_eq!(a.schedules, other.schedules);
        assert_eq!(a.violations, other.violations);
        assert_eq!(a.steps, other.steps);
    }
}
