//! `qasom-check`: the deterministic schedule-exploring race checker.
//!
//! Static lock-discipline rules ([`crate::locks`]) prove that the
//! *source* acquires locks in the declared order; this module proves
//! that the *protocols* those locks implement are correct under every
//! interleaving a bounded scheduler can produce. The two prongs share
//! the same motivation: the serving and daemon layers are long-running
//! concurrent brokers whose correctness previously rested on stress
//! tests alone.
//!
//! The standard suite ([`run_suite`]) explores three models of real
//! workspace protocols (see [`models`]) under a preemption-bounded DFS
//! ([`explore`]), asserting deadlock-freedom and per-schedule
//! invariants. Results flow into `qasom-obs` as `check.*` counters and
//! a `CheckSection`, so the byte-identical-seeded-report guarantee
//! covers the checker itself.

pub mod explore;
pub mod models;
pub mod sync;

pub use explore::{
    explore, ExploreConfig, ExploreResult, Model, SchedViolation, MAX_VIOLATION_EXAMPLES,
};
pub use sync::{CheckMutex, CheckRwLock};

use qasom_obs::report::{CheckSection, ModelCheck};
use qasom_obs::{keys, Recorder};

/// Configuration for the standard model suite.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Sibling-order seed (byte-identical reports per seed).
    pub seed: u64,
    /// Preemption budget per schedule.
    pub preemption_bound: usize,
    /// Safety cap on schedules per model.
    pub max_schedules: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 42,
            // Bound 2 yields ~556 schedules across the suite; 3 yields
            // ~2.5k in single-digit milliseconds, clearing the 1,000
            // schedule acceptance floor with headroom.
            preemption_bound: 3,
            max_schedules: 500_000,
        }
    }
}

/// The aggregated verdict of one suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-model exploration outcomes, in suite order.
    pub results: Vec<ExploreResult>,
}

impl SuiteReport {
    /// Whether every model proved out (fully explored, deadlock-free,
    /// invariant-holding).
    pub fn ok(&self) -> bool {
        self.results.iter().all(ExploreResult::ok)
    }

    /// Total maximal schedules explored across all models.
    pub fn schedules(&self) -> u64 {
        self.results.iter().map(|r| r.schedules).sum()
    }

    /// Total deadlocked schedules across all models.
    pub fn deadlocks(&self) -> u64 {
        self.results.iter().map(|r| r.deadlocks).sum()
    }

    /// Total invariant violations across all models.
    pub fn violations(&self) -> u64 {
        self.results.iter().map(|r| r.violations).sum()
    }

    /// The serialisable report section.
    pub fn to_section(&self) -> CheckSection {
        CheckSection {
            schedules: self.schedules(),
            steps: self.results.iter().map(|r| r.steps).sum(),
            deadlocks: self.deadlocks(),
            violations: self.violations(),
            models: self
                .results
                .iter()
                .map(|r| ModelCheck {
                    name: r.model.to_owned(),
                    threads: r.threads as u64,
                    preemption_bound: r.preemption_bound as u64,
                    schedules: r.schedules,
                    steps: r.steps,
                    max_depth: r.max_depth as u64,
                    deadlocks: r.deadlocks,
                    violations: r.violations,
                })
                .collect(),
        }
    }

    /// Bumps the `check.*` counters on `recorder`.
    pub fn record(&self, recorder: &dyn Recorder) {
        recorder.incr(keys::CHECK_MODELS, self.results.len() as u64);
        recorder.incr(keys::CHECK_SCHEDULES, self.schedules());
        recorder.incr(
            keys::CHECK_STEPS,
            self.results.iter().map(|r| r.steps).sum(),
        );
        recorder.incr(keys::CHECK_DEADLOCKS, self.deadlocks());
        recorder.incr(keys::CHECK_VIOLATIONS, self.violations());
    }
}

/// Explores the three standard protocol models under `cfg`.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteReport {
    let ec = ExploreConfig {
        seed: cfg.seed,
        preemption_bound: cfg.preemption_bound,
        max_schedules: cfg.max_schedules,
        ..ExploreConfig::default()
    };
    SuiteReport {
        results: vec![
            explore(&models::ComposeChurn::default(), &ec),
            explore(&models::ShardStamp::default(), &ec),
            explore(&models::AdmissionQueue::default(), &ec),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_obs::MemoryRecorder;

    #[test]
    fn standard_suite_proves_out_with_enough_schedules() {
        let rep = run_suite(&SuiteConfig::default());
        assert!(rep.ok(), "suite must be deadlock- and violation-free");
        assert!(
            rep.schedules() >= 1000,
            "need >= 1000 schedules across the models, got {}",
            rep.schedules()
        );
    }

    #[test]
    fn suite_records_counters_and_sections_agree() {
        let rep = run_suite(&SuiteConfig::default());
        let rec = MemoryRecorder::new();
        rep.record(&rec);
        let snap = rec.snapshot().expect("memory recorder snapshots");
        let section = rep.to_section();
        assert_eq!(
            snap.counter(qasom_obs::keys::CHECK_SCHEDULES),
            section.schedules
        );
        assert_eq!(snap.counter(qasom_obs::keys::CHECK_MODELS), 3);
        assert_eq!(section.models.len(), 3);
    }
}
