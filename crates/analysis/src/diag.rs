//! Structured diagnostics: stable codes, severities and span-like
//! locations.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The request/specification is suspicious but usable; composition
    /// proceeds and the diagnostic is carried in the composition report.
    Warning,
    /// The request/specification is broken; composition (or QSD
    /// ingestion) is rejected before discovery runs.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes (`QA0xx`).
///
/// Codes are grouped by decade: `QA00x` task-graph well-formedness,
/// `QA01x` QoS requirements (dimensional analysis, satisfiability,
/// preference weights), `QA02x` ontology sanity of the request, `QA03x`
/// provider QoS specifications (QSD ingestion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// QA001: a sequence/parallel/choice pattern has no child.
    EmptyPattern,
    /// QA002: a choice branch has a non-positive or non-finite
    /// probability.
    BadProbability,
    /// QA003: two activities share a name.
    DuplicateActivity,
    /// QA004: the task contains no activity at all.
    NoActivity,
    /// QA005: a choice branch has a negligible probability — its
    /// activities are effectively unreachable.
    NegligibleBranch,
    /// QA006: a loop's expected iteration count exceeds its hard cap, so
    /// QoS aggregation assumes more iterations than execution permits.
    LoopExpectationExceedsCap,
    /// QA010: a constraint or weight names a QoS property unknown to the
    /// model.
    UnknownProperty,
    /// QA011: a constraint's unit belongs to a different measurement
    /// dimension than the property — the bound cannot be converted.
    DimensionMismatch,
    /// QA012: no offered value can satisfy the bound (empty intersection
    /// with the property's feasible range).
    UnsatisfiableBound,
    /// QA013: every offered value satisfies the bound — the constraint is
    /// vacuous and filters nothing.
    VacuousBound,
    /// QA014: two constraints resolve to the same service-layer property;
    /// the stricter bound silently wins.
    DuplicateConstraint,
    /// QA015: a preference weight is non-positive or non-finite and is
    /// dropped by normalisation.
    DroppedWeight,
    /// QA016: preference weights were given but none survives
    /// normalisation — the weight vector cannot be normalised.
    UnusableWeights,
    /// QA017: a user-layer property has no service-layer equivalent;
    /// provider advertisements can never carry it.
    UnalignedUserProperty,
    /// QA018: global constraints are checked under the optimistic
    /// aggregation approach on a task with choice/loop patterns — the
    /// aggregate is a best case, not a guarantee.
    OptimisticGuarantee,
    /// QA020: an activity's function IRI is unknown to the domain
    /// ontology; only exact textual matches can discover services for it.
    UnknownFunctionIri,
    /// QA021: an activity's input/output data IRI is unknown to the
    /// domain ontology.
    UnknownDataIri,
    /// QA030: an advertised QoS value lies outside the property's
    /// feasible range (e.g. a probability outside `[0, 1]`).
    QosValueOutOfRange,
    /// QA031: a service (or operation) function IRI is unknown to the
    /// domain ontology.
    UnknownServiceFunction,
    /// QA032: a provider advertises a reputation-category property; the
    /// middleware derives reputation from SLA compliance and ignores
    /// self-reported values.
    SelfReportedReputation,
}

impl DiagnosticCode {
    /// The stable textual code (`"QA011"`), suitable for golden tests and
    /// suppression lists.
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticCode::EmptyPattern => "QA001",
            DiagnosticCode::BadProbability => "QA002",
            DiagnosticCode::DuplicateActivity => "QA003",
            DiagnosticCode::NoActivity => "QA004",
            DiagnosticCode::NegligibleBranch => "QA005",
            DiagnosticCode::LoopExpectationExceedsCap => "QA006",
            DiagnosticCode::UnknownProperty => "QA010",
            DiagnosticCode::DimensionMismatch => "QA011",
            DiagnosticCode::UnsatisfiableBound => "QA012",
            DiagnosticCode::VacuousBound => "QA013",
            DiagnosticCode::DuplicateConstraint => "QA014",
            DiagnosticCode::DroppedWeight => "QA015",
            DiagnosticCode::UnusableWeights => "QA016",
            DiagnosticCode::UnalignedUserProperty => "QA017",
            DiagnosticCode::OptimisticGuarantee => "QA018",
            DiagnosticCode::UnknownFunctionIri => "QA020",
            DiagnosticCode::UnknownDataIri => "QA021",
            DiagnosticCode::QosValueOutOfRange => "QA030",
            DiagnosticCode::UnknownServiceFunction => "QA031",
            DiagnosticCode::SelfReportedReputation => "QA032",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::EmptyPattern
            | DiagnosticCode::BadProbability
            | DiagnosticCode::DuplicateActivity
            | DiagnosticCode::NoActivity
            | DiagnosticCode::UnknownProperty
            | DiagnosticCode::DimensionMismatch
            | DiagnosticCode::UnsatisfiableBound
            | DiagnosticCode::UnusableWeights
            | DiagnosticCode::QosValueOutOfRange => Severity::Error,
            DiagnosticCode::NegligibleBranch
            | DiagnosticCode::LoopExpectationExceedsCap
            | DiagnosticCode::VacuousBound
            | DiagnosticCode::DuplicateConstraint
            | DiagnosticCode::DroppedWeight
            | DiagnosticCode::UnalignedUserProperty
            | DiagnosticCode::OptimisticGuarantee
            | DiagnosticCode::UnknownFunctionIri
            | DiagnosticCode::UnknownDataIri
            | DiagnosticCode::UnknownServiceFunction
            | DiagnosticCode::SelfReportedReputation => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A span-like location naming the middleware entities a diagnostic
/// refers to (there is no source text to point into — requests and QSDs
/// are in-memory structures).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// The task the diagnostic concerns.
    pub task: Option<String>,
    /// The activity within the task.
    pub activity: Option<String>,
    /// The QoS property (by the name the user/provider used).
    pub property: Option<String>,
    /// The concept IRI.
    pub iri: Option<String>,
    /// The service advertisement.
    pub service: Option<String>,
    /// The white-box operation within the service.
    pub operation: Option<String>,
}

impl Location {
    /// An empty location.
    pub fn none() -> Self {
        Location::default()
    }

    /// Location of a whole task.
    pub fn task(name: impl Into<String>) -> Self {
        Location {
            task: Some(name.into()),
            ..Location::default()
        }
    }

    /// Location of a QoS property reference.
    pub fn property(name: impl Into<String>) -> Self {
        Location {
            property: Some(name.into()),
            ..Location::default()
        }
    }

    /// Location of a service advertisement.
    pub fn service(name: impl Into<String>) -> Self {
        Location {
            service: Some(name.into()),
            ..Location::default()
        }
    }

    /// Adds the activity component.
    pub fn with_activity(mut self, name: impl Into<String>) -> Self {
        self.activity = Some(name.into());
        self
    }

    /// Adds the property component.
    pub fn with_property(mut self, name: impl Into<String>) -> Self {
        self.property = Some(name.into());
        self
    }

    /// Adds the IRI component.
    pub fn with_iri(mut self, iri: impl ToString) -> Self {
        self.iri = Some(iri.to_string());
        self
    }

    /// Adds the operation component.
    pub fn with_operation(mut self, name: impl Into<String>) -> Self {
        self.operation = Some(name.into());
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = [
            ("task", &self.task),
            ("activity", &self.activity),
            ("property", &self.property),
            ("iri", &self.iri),
            ("service", &self.service),
            ("operation", &self.operation),
        ]
        .iter()
        .filter_map(|(k, v)| v.as_ref().map(|v| format!("{k} {v:?}")))
        .collect();
        if parts.is_empty() {
            write!(f, "<request>")
        } else {
            write!(f, "{}", parts.join(", "))
        }
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagnosticCode,
    /// Error or warning (fixed per code).
    pub severity: Severity,
    /// What the finding refers to.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity is derived from the code.
    pub fn new(code: DiagnosticCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
        }
    }

    /// Whether this diagnostic blocks composition/ingestion.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {} (at {})",
            self.code, self.severity, self.message, self.location
        )
    }
}

/// Whether any diagnostic in the slice is an [`Severity::Error`].
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(Diagnostic::is_error)
}

/// Splits diagnostics into `(errors, warnings)`.
pub fn partition(diagnostics: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diagnostics.into_iter().partition(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            DiagnosticCode::EmptyPattern,
            DiagnosticCode::BadProbability,
            DiagnosticCode::DuplicateActivity,
            DiagnosticCode::NoActivity,
            DiagnosticCode::NegligibleBranch,
            DiagnosticCode::LoopExpectationExceedsCap,
            DiagnosticCode::UnknownProperty,
            DiagnosticCode::DimensionMismatch,
            DiagnosticCode::UnsatisfiableBound,
            DiagnosticCode::VacuousBound,
            DiagnosticCode::DuplicateConstraint,
            DiagnosticCode::DroppedWeight,
            DiagnosticCode::UnusableWeights,
            DiagnosticCode::UnalignedUserProperty,
            DiagnosticCode::OptimisticGuarantee,
            DiagnosticCode::UnknownFunctionIri,
            DiagnosticCode::UnknownDataIri,
            DiagnosticCode::QosValueOutOfRange,
            DiagnosticCode::UnknownServiceFunction,
            DiagnosticCode::SelfReportedReputation,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "codes must be unique");
        for c in all {
            assert!(c.code().starts_with("QA"));
            assert_eq!(c.code().len(), 5);
        }
    }

    #[test]
    fn display_carries_code_severity_and_location() {
        let d = Diagnostic::new(
            DiagnosticCode::DimensionMismatch,
            Location::property("ResponseTime"),
            "bound given in euros",
        );
        let s = d.to_string();
        assert!(s.contains("QA011"));
        assert!(s.contains("error"));
        assert!(s.contains("ResponseTime"));
    }

    #[test]
    fn partition_splits_by_severity() {
        let e = Diagnostic::new(DiagnosticCode::NoActivity, Location::none(), "e");
        let w = Diagnostic::new(DiagnosticCode::VacuousBound, Location::none(), "w");
        let (errors, warnings) = partition(vec![e.clone(), w.clone()]);
        assert_eq!(errors, vec![e]);
        assert_eq!(warnings, vec![w]);
        assert!(has_errors(&errors));
        assert!(!has_errors(&warnings));
    }
}
