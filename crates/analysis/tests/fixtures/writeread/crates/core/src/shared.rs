//! Seeded fixture: QA102 write-under-read — `.write()` on the
//! environment lock while our own `.read()` guard is live self-deadlocks
//! on `std::sync::RwLock`.

pub fn bump_epoch(shared: &SharedEnvironment) -> u64 {
    let env = shared.inner.read();
    let mut w = shared.inner.write();
    w.set_epoch(env.epoch() + 1)
}
