//! Seeded fixture: iteration-order-randomised collection on a simulated
//! path.

use std::collections::HashMap;

pub fn tally(events: &[u32]) -> HashMap<u32, usize> {
    let mut out = HashMap::new();
    for e in events {
        *out.entry(*e).or_insert(0) += 1;
    }
    out
}
