//! Seeded fixture: QA104 raw-lock-in-daemon — the daemon declares and
//! acquires its own `Mutex` instead of going through the typed
//! `SharedEnvironment` API.

pub struct BrokerState {
    pending: Mutex<Vec<u64>>,
}

pub fn drain(state: &BrokerState) -> Vec<u64> {
    let guard = state.pending.lock();
    guard.clone()
}
