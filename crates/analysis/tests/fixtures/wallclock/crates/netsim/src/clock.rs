//! Seeded fixture: wall-clock read on a simulated path.

pub fn elapsed_wrongly() -> std::time::Instant {
    let started = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    started
}
