//! Seeded fixture: every would-be finding is either commented out,
//! inside a string, or carries an explicit allow marker.

pub const DOC: &str = "Instant::now() and HashMap are only mentioned here";

// A real exception, justified inline:
pub fn boot_stamp() -> std::time::Instant {
    std::time::Instant::now() // lint:allow(determinism-wallclock)
}

/* Instant::now() in a block comment is not a finding. */
