//! Seeded fixture: QA103 guard-across-send — the environment read guard
//! stays live across a channel send, stalling the receiver behind our
//! critical section.

pub fn publish_epoch(shared: &SharedEnvironment, tx: &Sender<u64>) {
    let env = shared.inner.read();
    tx.send(env.epoch());
}
