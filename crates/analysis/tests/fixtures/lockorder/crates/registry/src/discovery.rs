//! Seeded fixture: QA101 lock-order inversion — the match-cache shard
//! (rank 2) is held while the interner (rank 1) is acquired, inverting
//! the declared acquisition order.

pub fn refresh_stamp(cache: &MatchCache, key: u64) -> u64 {
    let shard = cache.shards[0].read();
    let interner = cache.interner.read();
    shard.stamp_for(interner.resolve(key))
}
