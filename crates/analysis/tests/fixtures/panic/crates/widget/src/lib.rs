//! Seeded fixture: panicking shortcuts in non-test library code.

pub fn first_even(xs: &[i32]) -> i32 {
    let found = xs.iter().find(|x| *x % 2 == 0);
    *found.expect("no even element")
}

pub fn parse(s: &str) -> i32 {
    s.parse().unwrap()
}

#[cfg(test)]
mod tests {
    // In-test unwraps are fine and must not be counted.
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(super::parse("4".trim()), "4".parse::<i32>().unwrap());
    }
}
