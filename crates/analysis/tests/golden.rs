//! Golden diagnostics: one test per analyzer rule, pinning the QA0xx
//! code (and severity) each defect class is reported under.

use qasom_analysis::{Analyzer, ApproachKind, Diagnostic, RequestSpec, ServiceView, Severity};
use qasom_ontology::{Iri, OntologyBuilder};
use qasom_qos::{Layer, PropertySpec, QosModel, QosModelBuilder, QosVector, Unit};
use qasom_task::{Activity, LoopBound, TaskNode, UserTask};

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code.code()).collect()
}

fn severity_of(diags: &[Diagnostic], code: &str) -> Severity {
    diags
        .iter()
        .find(|d| d.code.code() == code)
        .unwrap_or_else(|| panic!("no {code} among {:?}", codes(diags)))
        .severity
}

fn act(name: &str) -> TaskNode {
    TaskNode::activity(Activity::new(name, "x#A"))
}

fn request_diags(
    task: &UserTask,
    constraints: &[(String, f64, Unit)],
    weights: &[(String, f64)],
    approach: ApproachKind,
) -> Vec<Diagnostic> {
    let model = QosModel::standard();
    Analyzer::new(&model).check_request(&RequestSpec {
        task,
        constraints,
        weights,
        approach,
    })
}

fn simple_task() -> UserTask {
    UserTask::new("t", act("a")).expect("valid task")
}

fn constrain(name: &str, bound: f64, unit: Unit) -> Vec<(String, f64, Unit)> {
    vec![(name.to_owned(), bound, unit)]
}

// ---- structural rules (QA00x) --------------------------------------

#[test]
fn qa001_empty_pattern() {
    let model = QosModel::standard();
    let diags =
        Analyzer::new(&model).check_structure("t", &TaskNode::sequence(Vec::<TaskNode>::new()));
    assert!(codes(&diags).contains(&"QA001"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA001"), Severity::Error);
}

#[test]
fn qa002_bad_probability() {
    let model = QosModel::standard();
    let root = TaskNode::choice([(0.0, act("a")), (1.0, act("b"))]);
    let diags = Analyzer::new(&model).check_structure("t", &root);
    assert!(codes(&diags).contains(&"QA002"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA002"), Severity::Error);
}

#[test]
fn qa003_duplicate_activity() {
    let model = QosModel::standard();
    let root = TaskNode::sequence([act("a"), act("a")]);
    let diags = Analyzer::new(&model).check_structure("t", &root);
    assert!(codes(&diags).contains(&"QA003"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA003"), Severity::Error);
}

#[test]
fn qa004_no_activity() {
    let model = QosModel::standard();
    let diags =
        Analyzer::new(&model).check_structure("t", &TaskNode::parallel(Vec::<TaskNode>::new()));
    assert!(codes(&diags).contains(&"QA004"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA004"), Severity::Error);
}

#[test]
fn qa005_negligible_branch() {
    let model = QosModel::standard();
    let root = TaskNode::choice([(1e-9, act("a")), (1.0, act("b"))]);
    let diags = Analyzer::new(&model).check_structure("t", &root);
    assert!(codes(&diags).contains(&"QA005"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA005"), Severity::Warning);
}

#[test]
fn qa006_loop_expectation_exceeds_cap() {
    let model = QosModel::standard();
    let root = TaskNode::repeat(act("a"), LoopBound::new(10.0, 2));
    let diags = Analyzer::new(&model).check_structure("t", &root);
    assert!(codes(&diags).contains(&"QA006"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA006"), Severity::Warning);
}

// ---- request rules (QA01x) -----------------------------------------

#[test]
fn qa010_unknown_property() {
    let task = simple_task();
    let diags = request_diags(
        &task,
        &constrain("Nope", 1.0, Unit::Dimensionless),
        &[],
        ApproachKind::MeanValue,
    );
    assert_eq!(codes(&diags), vec!["QA010"]);
    assert_eq!(severity_of(&diags, "QA010"), Severity::Error);
}

#[test]
fn qa011_dimension_mismatch() {
    let task = simple_task();
    let diags = request_diags(
        &task,
        &constrain("ResponseTime", 2.0, Unit::Euro),
        &[],
        ApproachKind::MeanValue,
    );
    assert_eq!(codes(&diags), vec!["QA011"]);
    assert_eq!(severity_of(&diags, "QA011"), Severity::Error);
}

#[test]
fn qa012_unsatisfiable_bound() {
    let task = simple_task();
    // A negative response-time bound: time is non-negative, so the
    // feasible set is empty.
    let diags = request_diags(
        &task,
        &constrain("ResponseTime", -5.0, Unit::Milliseconds),
        &[],
        ApproachKind::MeanValue,
    );
    assert_eq!(codes(&diags), vec!["QA012"]);

    // An availability above one: probabilities cannot reach it.
    let diags = request_diags(
        &task,
        &constrain("Availability", 1.5, Unit::Ratio),
        &[],
        ApproachKind::MeanValue,
    );
    assert_eq!(codes(&diags), vec!["QA012"]);
    assert_eq!(severity_of(&diags, "QA012"), Severity::Error);
}

#[test]
fn qa013_vacuous_bound() {
    let task = simple_task();
    // Every availability value is >= 0, so the bound excludes nothing.
    let diags = request_diags(
        &task,
        &constrain("Availability", 0.0, Unit::Ratio),
        &[],
        ApproachKind::MeanValue,
    );
    assert_eq!(codes(&diags), vec!["QA013"]);
    assert_eq!(severity_of(&diags, "QA013"), Severity::Warning);
}

#[test]
fn qa014_duplicate_constraint() {
    let task = simple_task();
    // `Delay` (user vocabulary) re-anchors on `ResponseTime`: the second
    // constraint silently competes with the first.
    let constraints = vec![
        ("Delay".to_owned(), 2.0, Unit::Seconds),
        ("ResponseTime".to_owned(), 1000.0, Unit::Milliseconds),
    ];
    let diags = request_diags(&task, &constraints, &[], ApproachKind::MeanValue);
    assert_eq!(codes(&diags), vec!["QA014"]);
    assert_eq!(severity_of(&diags, "QA014"), Severity::Warning);
}

#[test]
fn qa015_dropped_weight() {
    let task = simple_task();
    let weights = vec![
        ("ResponseTime".to_owned(), -1.0),
        ("Availability".to_owned(), 1.0),
    ];
    let diags = request_diags(&task, &[], &weights, ApproachKind::MeanValue);
    assert_eq!(codes(&diags), vec!["QA015"]);
    assert_eq!(severity_of(&diags, "QA015"), Severity::Warning);
}

#[test]
fn qa016_unusable_weights() {
    let task = simple_task();
    let weights = vec![("ResponseTime".to_owned(), 0.0)];
    let diags = request_diags(&task, &[], &weights, ApproachKind::MeanValue);
    assert!(codes(&diags).contains(&"QA016"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA016"), Severity::Error);
}

#[test]
fn qa017_unaligned_user_property() {
    // A user-layer property with no service-layer equivalent: providers
    // can never advertise it, so constraining it is a silent no-op.
    let mut b = QosModelBuilder::new();
    b.add(PropertySpec::new("WarmFeeling").layer(Layer::User));
    let model = b.build().expect("valid model");
    let task = simple_task();
    let constraints = vec![("WarmFeeling".to_owned(), 0.5, Unit::Dimensionless)];
    let diags = Analyzer::new(&model).check_request(&RequestSpec {
        task: &task,
        constraints: &constraints,
        weights: &[],
        approach: ApproachKind::MeanValue,
    });
    assert!(codes(&diags).contains(&"QA017"), "{diags:?}");
    assert_eq!(severity_of(&diags, "QA017"), Severity::Warning);
}

#[test]
fn qa018_optimistic_guarantee() {
    let root = TaskNode::sequence([
        act("a"),
        TaskNode::choice([(0.6, act("b")), (0.4, act("c"))]),
    ]);
    let task = UserTask::new("t", root).expect("valid task");
    let diags = request_diags(
        &task,
        &constrain("ResponseTime", 1000.0, Unit::Milliseconds),
        &[],
        ApproachKind::Optimistic,
    );
    assert_eq!(codes(&diags), vec!["QA018"]);
    assert_eq!(severity_of(&diags, "QA018"), Severity::Warning);

    // The same request folded pessimistically is clean.
    let diags = request_diags(
        &task,
        &constrain("ResponseTime", 1000.0, Unit::Milliseconds),
        &[],
        ApproachKind::Pessimistic,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- ontology rules (QA02x) ----------------------------------------

#[test]
fn qa020_unknown_function_iri() {
    let mut onto = OntologyBuilder::new("shop");
    onto.concept("Pay");
    let onto = onto.build().expect("valid ontology");
    let model = QosModel::standard();
    let task = UserTask::new("t", TaskNode::activity(Activity::new("a", "shop#Teleport")))
        .expect("valid task");
    let diags = Analyzer::new(&model)
        .with_ontology(&onto)
        .check_request(&RequestSpec {
            task: &task,
            constraints: &[],
            weights: &[],
            approach: ApproachKind::MeanValue,
        });
    assert_eq!(codes(&diags), vec!["QA020"]);
    assert_eq!(severity_of(&diags, "QA020"), Severity::Warning);
}

#[test]
fn qa021_unknown_data_iri() {
    let mut onto = OntologyBuilder::new("shop");
    onto.concept("Pay");
    let onto = onto.build().expect("valid ontology");
    let model = QosModel::standard();
    let activity = Activity::new("a", "shop#Pay").with_input("shop#Nonsense");
    let task = UserTask::new("t", TaskNode::activity(activity)).expect("valid task");
    let diags = Analyzer::new(&model)
        .with_ontology(&onto)
        .check_request(&RequestSpec {
            task: &task,
            constraints: &[],
            weights: &[],
            approach: ApproachKind::MeanValue,
        });
    assert_eq!(codes(&diags), vec!["QA021"]);
    assert_eq!(severity_of(&diags, "QA021"), Severity::Warning);
}

// ---- provider-side rules (QA03x) -----------------------------------

#[test]
fn qa030_qos_value_out_of_range() {
    let model = QosModel::standard();
    let availability = model.property("Availability").expect("standard property");
    let mut qos = QosVector::new();
    qos.set(availability, 1.2);
    let function: Iri = "x#F".parse().expect("valid IRI");
    let diags = Analyzer::new(&model).check_service(&ServiceView {
        name: "overpromiser",
        function: &function,
        qos: &qos,
        operations: Vec::new(),
    });
    assert_eq!(codes(&diags), vec!["QA030"]);
    assert_eq!(severity_of(&diags, "QA030"), Severity::Error);
}

#[test]
fn qa031_unknown_service_function() {
    let mut onto = OntologyBuilder::new("shop");
    onto.concept("Pay");
    let onto = onto.build().expect("valid ontology");
    let model = QosModel::standard();
    let qos = QosVector::new();
    let function: Iri = "shop#Teleport".parse().expect("valid IRI");
    let diags = Analyzer::new(&model)
        .with_ontology(&onto)
        .check_service(&ServiceView {
            name: "svc",
            function: &function,
            qos: &qos,
            operations: Vec::new(),
        });
    assert_eq!(codes(&diags), vec!["QA031"]);
    assert_eq!(severity_of(&diags, "QA031"), Severity::Warning);
}

#[test]
fn qa032_self_reported_reputation() {
    let model = QosModel::standard();
    let reputation = model.property("Reputation").expect("standard property");
    let mut qos = QosVector::new();
    qos.set(reputation, 4.5);
    let function: Iri = "x#F".parse().expect("valid IRI");
    let diags = Analyzer::new(&model).check_service(&ServiceView {
        name: "flatterer",
        function: &function,
        qos: &qos,
        operations: Vec::new(),
    });
    assert_eq!(codes(&diags), vec!["QA032"]);
    assert_eq!(severity_of(&diags, "QA032"), Severity::Warning);
}

// ---- clean paths ----------------------------------------------------

#[test]
fn a_well_formed_request_produces_no_diagnostics() {
    let task = simple_task();
    let diags = request_diags(
        &task,
        &constrain("ResponseTime", 2.0, Unit::Seconds),
        &[("Availability".to_owned(), 1.0)],
        ApproachKind::MeanValue,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a_well_formed_advertisement_produces_no_diagnostics() {
    let model = QosModel::standard();
    let rt = model.property("ResponseTime").expect("standard property");
    let mut qos = QosVector::new();
    qos.set(rt, 120.0);
    let function: Iri = "x#F".parse().expect("valid IRI");
    let diags = Analyzer::new(&model).check_service(&ServiceView {
        name: "svc",
        function: &function,
        qos: &qos,
        operations: Vec::new(),
    });
    assert!(diags.is_empty(), "{diags:?}");
}
