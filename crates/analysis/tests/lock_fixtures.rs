//! End-to-end QA1xx checks: each seeded fixture tree under
//! `tests/fixtures/` violates exactly one lock-discipline rule, the real
//! binary exits non-zero on it, and the actual workspace stays clean —
//! the QA1xx family is never baselined.

use std::path::{Path, PathBuf};
use std::process::Command;

use qasom_analysis::lint::{scan_workspace, violations, Baseline, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Rules the fixture tree violates, via the library API with an empty
/// baseline.
fn violated_rules(root: &Path) -> Vec<Rule> {
    let findings = scan_workspace(root).expect("fixture tree scans");
    let mut rules: Vec<Rule> = violations(&findings, &Baseline::new())
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

/// Exit status of the real `qasom-lint` binary over `root`.
fn lint_exit(root: &Path) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_qasom-lint"))
        .arg("--root")
        .arg(root)
        .status()
        .expect("qasom-lint binary runs");
    status.code().expect("qasom-lint always exits")
}

#[test]
fn lockorder_fixture_fails_only_qa101() {
    let root = fixture("lockorder");
    assert_eq!(violated_rules(&root), vec![Rule::LockOrder]);
    assert_eq!(lint_exit(&root), 1);
}

#[test]
fn writeread_fixture_fails_only_qa102() {
    let root = fixture("writeread");
    assert_eq!(violated_rules(&root), vec![Rule::WriteUnderRead]);
    assert_eq!(lint_exit(&root), 1);
}

#[test]
fn guardsend_fixture_fails_only_qa103() {
    let root = fixture("guardsend");
    assert_eq!(violated_rules(&root), vec![Rule::GuardAcrossSend]);
    assert_eq!(lint_exit(&root), 1);
}

#[test]
fn rawlock_fixture_fails_only_qa104() {
    let root = fixture("rawlock");
    assert_eq!(violated_rules(&root), vec![Rule::RawLockInDaemon]);
    assert_eq!(lint_exit(&root), 1);
}

#[test]
fn qa1xx_rules_are_never_baselined() {
    // `--write-baseline` must not absorb lock-discipline findings: the
    // re-check against a freshly written baseline still fails.
    let root = fixture("lockorder");
    let tmp = std::env::temp_dir().join("qasom-lockorder-baseline.txt");
    let status = Command::new(env!("CARGO_BIN_EXE_qasom-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&tmp)
        .arg("--write-baseline")
        .status()
        .expect("qasom-lint binary runs");
    assert_eq!(status.code(), Some(0), "baseline write succeeds");
    let status = Command::new(env!("CARGO_BIN_EXE_qasom-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&tmp)
        .status()
        .expect("qasom-lint binary runs");
    let _ = std::fs::remove_file(&tmp);
    assert_eq!(status.code(), Some(1), "QA1xx never hides in a baseline");
}

#[test]
fn real_workspace_is_free_of_qa1xx_findings() {
    let findings = scan_workspace(&workspace_root()).expect("workspace scans");
    let lock_findings: Vec<_> = findings
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                Rule::LockOrder
                    | Rule::WriteUnderRead
                    | Rule::GuardAcrossSend
                    | Rule::RawLockInDaemon
            )
        })
        .collect();
    assert!(
        lock_findings.is_empty(),
        "QA1xx findings in the real workspace: {lock_findings:?}"
    );
}
