//! End-to-end lint checks: each seeded fixture tree under
//! `tests/fixtures/` violates exactly one rule, and the real binary
//! exits non-zero on it; the actual workspace stays clean modulo the
//! checked-in baseline.

use std::path::{Path, PathBuf};
use std::process::Command;

use qasom_analysis::lint::{scan_workspace, violations, Baseline, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Rules the fixture tree violates, via the library API with an empty
/// baseline.
fn violated_rules(root: &Path) -> Vec<Rule> {
    let findings = scan_workspace(root).expect("fixture tree scans");
    let mut rules: Vec<Rule> = violations(&findings, &Baseline::new())
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

/// Exit status of the real `qasom-lint` binary over `root`.
fn lint_exit(root: &Path, extra: &[&str]) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_qasom-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .status()
        .expect("qasom-lint binary runs");
    status.code().expect("qasom-lint always exits")
}

#[test]
fn wallclock_fixture_fails_the_wallclock_rule() {
    let root = fixture("wallclock");
    assert_eq!(violated_rules(&root), vec![Rule::Wallclock]);
    assert_eq!(lint_exit(&root, &[]), 1);
}

#[test]
fn unordered_fixture_fails_the_unordered_rule() {
    let root = fixture("unordered");
    assert_eq!(violated_rules(&root), vec![Rule::Unordered]);
    assert_eq!(lint_exit(&root, &[]), 1);
}

#[test]
fn panic_fixture_fails_the_panic_rule_outside_test_code() {
    let root = fixture("panic");
    let findings = scan_workspace(&root).expect("fixture tree scans");
    // One `.expect(` + one `.unwrap()` in library code; the unwraps in
    // the `#[cfg(test)]` module are exempt.
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.rule == Rule::PanicUnwrap));
    assert_eq!(lint_exit(&root, &[]), 1);
}

#[test]
fn clean_fixture_passes_via_comments_strings_and_allow_markers() {
    let root = fixture("clean");
    assert!(scan_workspace(&root)
        .expect("fixture tree scans")
        .is_empty());
    assert_eq!(lint_exit(&root, &[]), 0);
}

#[test]
fn panic_fixture_passes_against_its_own_baseline() {
    // `--write-baseline` then a re-check must come back clean: the
    // grandfathering loop works end to end.
    let root = fixture("panic");
    let baseline = std::env::temp_dir().join("qasom-lint-fixture-baseline.txt");
    let status = Command::new(env!("CARGO_BIN_EXE_qasom-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .arg("--write-baseline")
        .status()
        .expect("qasom-lint binary runs");
    assert!(status.success());
    let baseline_str = baseline.to_string_lossy().into_owned();
    assert_eq!(lint_exit(&root, &["--baseline", &baseline_str]), 0);
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn determinism_findings_cannot_be_baselined() {
    // Writing a baseline over the wallclock fixture records nothing
    // (determinism rules are never grandfathered), so the re-check
    // still fails.
    let root = fixture("wallclock");
    let baseline = std::env::temp_dir().join("qasom-lint-wallclock-baseline.txt");
    let status = Command::new(env!("CARGO_BIN_EXE_qasom-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .arg("--write-baseline")
        .status()
        .expect("qasom-lint binary runs");
    assert!(status.success());
    let baseline_str = baseline.to_string_lossy().into_owned();
    assert_eq!(lint_exit(&root, &["--baseline", &baseline_str]), 1);
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn real_workspace_is_clean_modulo_baseline() {
    assert_eq!(lint_exit(&workspace_root(), &[]), 0);
}

#[test]
fn real_workspace_has_no_determinism_findings_at_all() {
    // Satellite guarantee: the simulated paths (netsim + the
    // distributed protocol) carry zero wall-clock or unordered-map
    // findings — not even allow-marked ones are needed.
    let findings = scan_workspace(&workspace_root()).expect("workspace scans");
    let determinism: Vec<_> = findings
        .iter()
        .filter(|f| f.rule != Rule::PanicUnwrap)
        .collect();
    assert!(
        determinism.is_empty(),
        "determinism findings: {determinism:?}"
    );
}
