//! Observability events emitted by the middleware, and the subscriber
//! API that consumes them.

use std::sync::{Arc, Mutex};

use qasom_obs::keys;
use qasom_registry::ServiceId;

/// Events the middleware emits while composing and executing, in order.
/// They are the trace the examples and integration tests assert on, and
/// what a management console would subscribe to.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareEvent {
    /// A composition was selected for a request.
    Composed {
        /// Task name.
        task: String,
        /// Whether the selection met every global constraint.
        feasible: bool,
        /// Number of QoS levels QASSA explored.
        levels_explored: usize,
    },
    /// An activity invocation succeeded.
    Invoked {
        /// Activity name.
        activity: String,
        /// The service that served it.
        service: ServiceId,
    },
    /// An activity invocation failed.
    InvocationFailed {
        /// Activity name.
        activity: String,
        /// The failing service.
        service: ServiceId,
    },
    /// A (possibly predicted) violation of a global constraint was
    /// detected.
    ViolationDetected {
        /// Name of the violated property.
        property: String,
        /// Whether the violation was predicted rather than observed.
        proactive: bool,
    },
    /// A service was substituted.
    Substituted {
        /// Activity whose binding changed.
        activity: String,
        /// The replaced service.
        from: ServiceId,
        /// The replacement.
        to: ServiceId,
    },
    /// Execution switched to an alternative behaviour of the task class.
    BehaviouralAdaptation {
        /// Name of the abandoned behaviour.
        from: String,
        /// Name of the behaviour taking over.
        to: String,
    },
    /// The static analyzer flagged a non-fatal issue while ingesting
    /// provider descriptions (see [`qasom_analysis::Analyzer`]).
    AnalysisWarning {
        /// The diagnostic, rendered (`QAxxx severity: message (at …)`).
        diagnostic: String,
    },
    /// The task completed (successfully or not).
    Completed {
        /// Task name (the behaviour that actually finished).
        task: String,
        /// Whether every activity was eventually served.
        success: bool,
    },
}

impl MiddlewareEvent {
    /// The metric counter this event variant maps onto (see
    /// [`qasom_obs::keys`]): every emission bumps the matching
    /// `events.*` counter on the environment's recorder.
    pub fn counter_key(&self) -> &'static str {
        match self {
            MiddlewareEvent::Composed { .. } => keys::EVENT_COMPOSED,
            MiddlewareEvent::Invoked { .. } => keys::EVENT_INVOKED,
            MiddlewareEvent::InvocationFailed { .. } => keys::EVENT_INVOCATION_FAILED,
            MiddlewareEvent::ViolationDetected { .. } => keys::EVENT_VIOLATION,
            MiddlewareEvent::Substituted { .. } => keys::EVENT_SUBSTITUTED,
            MiddlewareEvent::BehaviouralAdaptation { .. } => keys::EVENT_BEHAVIOURAL,
            MiddlewareEvent::AnalysisWarning { .. } => keys::EVENT_ANALYSIS_WARNING,
            MiddlewareEvent::Completed { .. } => keys::EVENT_COMPLETED,
        }
    }
}

/// A subscriber notified of every [`MiddlewareEvent`] as it is emitted,
/// in emission order. Sinks observe; they cannot alter the pipeline, so
/// subscribing never changes middleware behaviour.
///
/// Implementations must be `Send + Sync`: per-activity discovery can
/// run on a thread pool, and the environment itself must stay movable
/// across threads.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Called once per event, synchronously, in emission order.
    fn on_event(&self, event: &MiddlewareEvent);
}

/// The standard [`EventSink`]: an in-memory, thread-safe event log.
///
/// The handle is cheaply cloneable (`Arc` inside); clones share the
/// same buffer, so keep one half and hand the other to
/// [`Environment::subscribe`](crate::Environment::subscribe):
///
/// ```
/// use qasom::{Environment, EventLog};
/// use qasom_ontology::OntologyBuilder;
/// use qasom_qos::QosModel;
///
/// let mut env = Environment::new(
///     QosModel::standard(),
///     OntologyBuilder::new("d").build().unwrap(),
///     7,
/// );
/// let log = EventLog::new();
/// env.subscribe(std::sync::Arc::new(log.clone()));
/// // ... compose / execute ...
/// assert!(log.events().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventLog {
    inner: Arc<LogInner>,
}

#[derive(Debug)]
struct LogInner {
    /// `usize::MAX` means unbounded; clones share the same cap.
    capacity: usize,
    events: Mutex<Vec<MiddlewareEvent>>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::bounded(usize::MAX)
    }
}

impl EventLog {
    /// An empty, unbounded log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// An empty log retaining at most `capacity` events: once full, the
    /// oldest event is dropped for each new one — the subscriber-side
    /// replacement for the retired pull API's retention cap.
    pub fn bounded(capacity: usize) -> Self {
        EventLog {
            inner: Arc::new(LogInner {
                capacity,
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<MiddlewareEvent>> {
        // Each mutation is a single push, so a poisoned buffer is still
        // coherent — recover instead of propagating the panic.
        self.inner.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of every event received so far, in order.
    pub fn events(&self) -> Vec<MiddlewareEvent> {
        self.lock().clone()
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<MiddlewareEvent> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Discards the buffered events.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl EventSink for EventLog {
    fn on_event(&self, event: &MiddlewareEvent) {
        if self.inner.capacity == 0 {
            return;
        }
        let mut events = self.lock();
        if events.len() >= self.inner.capacity {
            let excess = events.len() + 1 - self.inner.capacity;
            events.drain(..excess);
        }
        events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_clones_share_the_buffer() {
        let log = EventLog::new();
        let sink: Arc<dyn EventSink> = Arc::new(log.clone());
        sink.on_event(&MiddlewareEvent::Completed {
            task: "t".into(),
            success: true,
        });
        assert_eq!(log.len(), 1);
        assert_eq!(log.take().len(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn bounded_log_drops_oldest_events() {
        let log = EventLog::bounded(2);
        for i in 0..4 {
            log.on_event(&MiddlewareEvent::Completed {
                task: format!("t{i}"),
                success: true,
            });
        }
        let kept = log.events();
        assert_eq!(kept.len(), 2);
        assert!(matches!(&kept[0], MiddlewareEvent::Completed { task, .. } if task == "t2"));
        assert!(matches!(&kept[1], MiddlewareEvent::Completed { task, .. } if task == "t3"));

        let none = EventLog::bounded(0);
        none.on_event(&MiddlewareEvent::Completed {
            task: "t".into(),
            success: true,
        });
        assert!(none.is_empty());
    }

    #[test]
    fn every_variant_has_a_counter_key() {
        let composed = MiddlewareEvent::Composed {
            task: "t".into(),
            feasible: true,
            levels_explored: 1,
        };
        assert_eq!(composed.counter_key(), keys::EVENT_COMPOSED);
        let warn = MiddlewareEvent::AnalysisWarning {
            diagnostic: "QA020".into(),
        };
        assert_eq!(warn.counter_key(), keys::EVENT_ANALYSIS_WARNING);
    }
}
