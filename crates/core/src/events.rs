//! Observability events emitted by the middleware.

use qasom_registry::ServiceId;

/// Events the middleware emits while composing and executing, in order.
/// They are the trace the examples and integration tests assert on, and
/// what a management console would subscribe to.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareEvent {
    /// A composition was selected for a request.
    Composed {
        /// Task name.
        task: String,
        /// Whether the selection met every global constraint.
        feasible: bool,
        /// Number of QoS levels QASSA explored.
        levels_explored: usize,
    },
    /// An activity invocation succeeded.
    Invoked {
        /// Activity name.
        activity: String,
        /// The service that served it.
        service: ServiceId,
    },
    /// An activity invocation failed.
    InvocationFailed {
        /// Activity name.
        activity: String,
        /// The failing service.
        service: ServiceId,
    },
    /// A (possibly predicted) violation of a global constraint was
    /// detected.
    ViolationDetected {
        /// Name of the violated property.
        property: String,
        /// Whether the violation was predicted rather than observed.
        proactive: bool,
    },
    /// A service was substituted.
    Substituted {
        /// Activity whose binding changed.
        activity: String,
        /// The replaced service.
        from: ServiceId,
        /// The replacement.
        to: ServiceId,
    },
    /// Execution switched to an alternative behaviour of the task class.
    BehaviouralAdaptation {
        /// Name of the abandoned behaviour.
        from: String,
        /// Name of the behaviour taking over.
        to: String,
    },
    /// The static analyzer flagged a non-fatal issue while ingesting
    /// provider descriptions (see [`qasom_analysis::Analyzer`]).
    AnalysisWarning {
        /// The diagnostic, rendered (`QAxxx severity: message (at …)`).
        diagnostic: String,
    },
    /// The task completed (successfully or not).
    Completed {
        /// Task name (the behaviour that actually finished).
        task: String,
        /// Whether every activity was eventually served.
        success: bool,
    },
}
