//! Thread-safe middleware handle for multi-session deployments.

use std::sync::{Arc, RwLock};

use qasom_analysis::Diagnostic;
use qasom_netsim::runtime::SyntheticService;
use qasom_obs::keys;
use qasom_ontology::Ontology;
use qasom_registry::{RegistrySync, ReplicaCursor, ServiceDescription, ServiceId};

use crate::{
    ComposeError, Environment, ExecutableComposition, ExecutionError, ExecutionReport, UserRequest,
};

/// A composition session as submitted to the serving layer: the user's
/// request plus the client identity admission control keys quotas on.
///
/// `SessionRequest` is the one request type both serving front-ends
/// accept — [`SharedEnvironment::serve_session`] for the library path
/// and the `qasomd` daemon for the wire path — so outcome semantics
/// ([`ServeOutcome`]) are identical regardless of how a session arrived.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    client: Option<String>,
    request: UserRequest,
}

impl SessionRequest {
    /// A session with no client identity (library calls, tests).
    pub fn new(request: UserRequest) -> Self {
        SessionRequest {
            client: None,
            request,
        }
    }

    /// Tags the session with the submitting client's identity; the
    /// daemon's per-client quotas are keyed on it.
    #[must_use]
    pub fn for_client(mut self, client: impl Into<String>) -> Self {
        self.client = Some(client.into());
        self
    }

    /// The client identity, if any.
    pub fn client(&self) -> Option<&str> {
        self.client.as_deref()
    }

    /// The underlying user request.
    pub fn request(&self) -> &UserRequest {
        &self.request
    }
}

impl From<UserRequest> for SessionRequest {
    fn from(request: UserRequest) -> Self {
        SessionRequest::new(request)
    }
}

/// The typed outcome of one serving session.
///
/// Every way a session can end that is *not* an internal failure is a
/// variant here, so callers match on outcomes instead of decoding
/// stringly errors: the daemon turns each variant into its own wire
/// frame, and load-shedding is a first-class `Busy` value rather than a
/// collapsed connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// The session composed and executed; the report carries delivered
    /// QoS, substitutions and adaptations.
    Completed(ExecutionReport),
    /// Admission control shed the session (queue at capacity or client
    /// over quota). Retry after the given number of broker ticks.
    ///
    /// Produced only by serving front-ends with an admission queue
    /// (`qasomd`); the direct library path never sheds.
    Busy {
        /// Deterministic back-off hint, in broker scheduling rounds.
        retry_after_ticks: u32,
    },
    /// The static analyzer rejected the request before discovery ran.
    Rejected(Vec<Diagnostic>),
}

impl ServeOutcome {
    /// Whether the session completed successfully end to end.
    pub fn is_completed(&self) -> bool {
        matches!(self, ServeOutcome::Completed(_))
    }
}

/// A batch of registry mutations applied as one transaction under the
/// write lock ([`SharedEnvironment::apply_churn`]).
///
/// Purpose-built so serving front-ends never hold an arbitrary closure
/// over the environment's write lock: the delta is constructed lock-free
/// and applied atomically, in insertion order.
#[derive(Default)]
pub struct RegistryDelta {
    ops: Vec<ChurnOp>,
}

enum ChurnOp {
    Deploy(Box<(ServiceDescription, SyntheticService)>),
    Undeploy(ServiceId),
    UndeployNamed(String),
}

impl RegistryDelta {
    /// An empty delta.
    pub fn new() -> Self {
        RegistryDelta::default()
    }

    /// Queues a deployment with an explicit synthetic behaviour.
    #[must_use]
    pub fn deploy(mut self, description: ServiceDescription, behaviour: SyntheticService) -> Self {
        self.ops
            .push(ChurnOp::Deploy(Box::new((description, behaviour))));
        self
    }

    /// Queues a deployment whose behaviour faithfully delivers the
    /// advertised QoS.
    #[must_use]
    pub fn deploy_faithful(self, description: ServiceDescription) -> Self {
        let nominal = description.qos().clone();
        self.deploy(description, SyntheticService::new(nominal))
    }

    /// Queues a departure by service id.
    #[must_use]
    pub fn undeploy(mut self, id: ServiceId) -> Self {
        self.ops.push(ChurnOp::Undeploy(id));
        self
    }

    /// Queues a departure by service name (ignored when no live service
    /// carries the name at apply time).
    #[must_use]
    pub fn undeploy_named(mut self, name: impl Into<String>) -> Self {
        self.ops.push(ChurnOp::UndeployNamed(name.into()));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operation is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What [`SharedEnvironment::apply_churn`] did, and the registry epoch
/// after the transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnReceipt {
    /// Registry epoch after the delta was applied.
    pub epoch: u64,
    /// Event-log position after the delta was applied: the
    /// [`RegistrySync`] cursor a replica (or a cluster peer) must reach
    /// to have observed this churn.
    pub cursor: ReplicaCursor,
    /// Ids of the services the delta deployed, in delta order.
    pub deployed: Vec<ServiceId>,
    /// Departures actually performed (named departures that matched no
    /// live service are not counted).
    pub undeployed: usize,
}

/// A clonable, thread-safe handle to an [`Environment`].
///
/// A deployed middleware instance serves many user sessions at once:
/// composition requests and executions arrive from different threads while
/// providers keep registering and departing. `SharedEnvironment` wraps the
/// [`Environment`] in an `Arc<RwLock<…>>`. A poisoned lock (a panic inside
/// a session) is recovered rather than propagated — the environment's
/// state stays consistent because every mutating operation is applied
/// transactionally under the write lock.
///
/// The lock discipline splits the serving pipeline by what it touches:
///
/// * **read lock (concurrent):** queries ([`SharedEnvironment::with`])
///   and the full composition pipeline — analysis, discovery and QASSA
///   selection ([`SharedEnvironment::compose`]) — which only read the
///   registry/ontology/QoS model and use interior-mutable, concurrency-
///   safe structures (`MatchCache`, event buffer, recorder) for their
///   side channels. Any number of sessions compose simultaneously.
/// * **write lock (exclusive):** provider churn and execution
///   ([`SharedEnvironment::apply_churn`], [`SharedEnvironment::execute`])
///   — executions mutate the QoS monitor, SLA records and the synthetic
///   runtime, so they are transactions over the environment's state.
///
/// [`SharedEnvironment::serve_session`] composes under the read lock,
/// then executes under the write lock. Churn may slip between the two
/// phases; that is safe because execution re-validates liveness at
/// binding time (dynamic binding substitutes departed services), exactly
/// as it already must for services failing mid-execution.
///
/// # Examples
///
/// ```
/// use qasom::{Environment, SharedEnvironment};
/// use qasom_ontology::OntologyBuilder;
/// use qasom_qos::QosModel;
///
/// let env = Environment::new(
///     QosModel::standard(),
///     OntologyBuilder::new("d").build().unwrap(),
///     1,
/// );
/// let shared = SharedEnvironment::new(env);
/// let clone = shared.clone();
/// let services = clone.with(|e| e.registry().len());
/// assert_eq!(services, 0);
/// ```
#[derive(Clone)]
pub struct SharedEnvironment {
    inner: Arc<RwLock<Environment>>,
}

impl SharedEnvironment {
    /// Wraps an environment.
    pub fn new(environment: Environment) -> Self {
        SharedEnvironment {
            inner: Arc::new(RwLock::new(environment)),
        }
    }

    /// Runs a read-only query under the shared lock. Since the whole
    /// composition pipeline works through `&Environment`, sessions may
    /// compose inside the closure — e.g. to read the composition and the
    /// [`Environment::epoch`] that produced it atomically.
    pub fn with<R>(&self, f: impl FnOnce(&Environment) -> R) -> R {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        f(&env)
    }

    /// Runs a mutating operation under the exclusive lock (deployments,
    /// fault injection, task-class registration, …).
    ///
    /// Serving front-ends should not reach for this: provider churn has
    /// the purpose-built [`SharedEnvironment::apply_churn`] and ontology
    /// swaps [`SharedEnvironment::reload_ontology`], both of which apply
    /// a *value* under the lock instead of holding a caller-supplied
    /// closure over it (`qasom-lint` forbids `with_mut` in
    /// `crates/daemon`).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Environment) -> R) -> R {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        f(&mut env)
    }

    /// Applies a batch of registry mutations as one transaction under
    /// the write lock and reports the resulting epoch.
    ///
    /// This is the churn entry point for serving front-ends: the delta
    /// is built lock-free, applied in order, and the receipt carries the
    /// epoch sessions need to tag compositions raced against the churn.
    pub fn apply_churn(&self, delta: RegistryDelta) -> ChurnReceipt {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        let mut receipt = ChurnReceipt::default();
        for op in delta.ops {
            match op {
                ChurnOp::Deploy(boxed) => {
                    let (description, behaviour) = *boxed;
                    receipt.deployed.push(env.deploy(description, behaviour));
                }
                ChurnOp::Undeploy(id) => {
                    if env.registry().get(id).is_some() {
                        env.undeploy(id);
                        receipt.undeployed += 1;
                    }
                }
                ChurnOp::UndeployNamed(name) => {
                    let found = env
                        .registry()
                        .iter()
                        .find(|(_, d)| d.name() == name)
                        .map(|(id, _)| id);
                    if let Some(id) = found {
                        env.undeploy(id);
                        receipt.undeployed += 1;
                    }
                }
            }
        }
        receipt.epoch = env.epoch();
        receipt.cursor = env.registry().sync_cursor();
        receipt
    }

    /// Swaps the domain ontology under the write lock (capability index
    /// rebuilt, match cache stamp-invalidated). Returns the new
    /// ontology's stamp.
    pub fn reload_ontology(&self, ontology: Ontology) -> u64 {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        env.reload_ontology(ontology)
    }

    /// Takes a registry persistence checkpoint under the write lock
    /// (snapshot + WAL truncation, see DESIGN.md §14) and reports
    /// whether one was taken (`false` when no journal is attached).
    ///
    /// This is the typed shutdown/flush entry point for serving
    /// front-ends — the daemon is not allowed arbitrary `with_mut`
    /// closures (lint `daemon-with-mut`), and a checkpoint is a bounded,
    /// accounted write like churn or an ontology reload.
    pub fn checkpoint_registry(&self) -> bool {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        env.checkpoint_registry()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Environment> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Environment> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Composes a request under the **read** lock: any number of
    /// sessions run discovery + selection concurrently, and provider
    /// churn (which needs the write lock) waits rather than being
    /// interleaved mid-pipeline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn compose(&self, request: &UserRequest) -> Result<ExecutableComposition, ComposeError> {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        env.compose(request)
    }

    /// Composes a request and returns it together with the registry
    /// epoch ([`Environment::epoch`]) it was computed against, read
    /// atomically under one read-lock acquisition. Sessions use the
    /// epoch to compare concurrent results against a deterministic
    /// single-threaded replay of the same registry state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn compose_with_epoch(
        &self,
        request: &UserRequest,
    ) -> Result<(u64, ExecutableComposition), ComposeError> {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        let composition = env.compose(request)?;
        Ok((env.epoch(), composition))
    }

    /// Re-selects an existing composition under the **read** lock:
    /// delta-first ([`Environment::recompose`]), so adaptation re-ranks
    /// only the activities touched by churn or delivery history while
    /// other sessions keep composing concurrently.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn recompose(
        &self,
        composition: &ExecutableComposition,
    ) -> Result<ExecutableComposition, ComposeError> {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        env.recompose(composition)
    }

    /// Executes a composition as one transaction over the environment
    /// (write lock: execution mutates the monitor, SLAs and runtime).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::execute`].
    pub fn execute(
        &self,
        composition: ExecutableComposition,
    ) -> Result<ExecutionReport, ExecutionError> {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        env.execute(composition)
    }

    /// One full session with a typed outcome: composes under the read
    /// lock (concurrently with other sessions), then executes under the
    /// write lock.
    ///
    /// Analyzer rejections come back as [`ServeOutcome::Rejected`] — an
    /// expected, typed end of the session — while infrastructure
    /// failures (no candidate, selection, execution) are [`ServeError`]s
    /// carrying the registry epoch at failure time so a retrying caller
    /// can tell whether the environment has changed since.
    ///
    /// The direct library path never produces [`ServeOutcome::Busy`]:
    /// there is no admission queue here. The `qasomd` daemon layers
    /// admission control on top and sheds with `Busy` before a session
    /// ever reaches this method.
    ///
    /// A provider may depart between the two phases; execution handles
    /// that exactly like a mid-execution departure — dynamic binding
    /// re-checks liveness and substitutes from the ranked alternates —
    /// so the relaxation never returns a binding to a dead service.
    ///
    /// # Errors
    ///
    /// Non-analyzer composition failures and execution failures, each
    /// tagged with the epoch they occurred at.
    pub fn serve_session(&self, session: &SessionRequest) -> Result<ServeOutcome, ServeError> {
        let composition = {
            let env = self.read();
            if let Some(rec) = env.recorder() {
                rec.incr(keys::SERVING_SESSIONS, 1);
                rec.incr(keys::SERVING_READ_LOCKS, 1);
            }
            match env.compose(session.request()) {
                Ok(composition) => composition,
                Err(ComposeError::Rejected(diags)) => return Ok(ServeOutcome::Rejected(diags)),
                Err(error) => {
                    return Err(ServeError::Compose {
                        epoch: env.epoch(),
                        error,
                    })
                }
            }
        };
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        match env.execute(composition) {
            Ok(report) => Ok(ServeOutcome::Completed(report)),
            Err(error) => Err(ServeError::Execute {
                epoch: env.epoch(),
                error,
            }),
        }
    }

    /// One full session, legacy shape: the typed outcome flattened back
    /// into `Result<ExecutionReport, ServeError>`.
    ///
    /// # Errors
    ///
    /// Propagates composition and execution errors; analyzer rejections
    /// surface as [`ServeError::Compose`] with
    /// [`ComposeError::Rejected`], exactly as before the typed API.
    #[deprecated(
        since = "0.3.0",
        note = "use serve_session(&SessionRequest) and match the typed ServeOutcome"
    )]
    pub fn serve(&self, request: &UserRequest) -> Result<ExecutionReport, ServeError> {
        match self.serve_session(&SessionRequest::new(request.clone()))? {
            ServeOutcome::Completed(report) => Ok(report),
            ServeOutcome::Rejected(diags) => {
                let epoch = self.with(|e| e.epoch());
                Err(ServeError::Compose {
                    epoch,
                    error: ComposeError::Rejected(diags),
                })
            }
            // serve_session never sheds (no admission queue on the
            // library path); keep the legacy signature total anyway.
            ServeOutcome::Busy { .. } => {
                let epoch = self.with(|e| e.epoch());
                Err(ServeError::Compose {
                    epoch,
                    error: ComposeError::Rejected(Vec::new()),
                })
            }
        }
    }
}

/// Errors of [`SharedEnvironment::serve_session`]: infrastructure
/// failures of the two pipeline phases, each carrying the registry epoch
/// at failure time so retry logic can distinguish "environment unchanged,
/// retrying is futile" from "providers churned since, retry may succeed".
///
/// Marked `#[non_exhaustive]`: serving front-ends grow failure classes
/// (transport, protocol) without breaking downstream matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The composition pipeline failed (discovery/selection — analyzer
    /// rejections are a typed [`ServeOutcome::Rejected`], not an error).
    Compose {
        /// Registry epoch when composition failed.
        epoch: u64,
        /// The underlying composition error.
        error: ComposeError,
    },
    /// The execution engine failed.
    Execute {
        /// Registry epoch when execution failed.
        epoch: u64,
        /// The underlying execution error.
        error: ExecutionError,
    },
}

impl ServeError {
    /// The registry epoch at failure time.
    pub fn epoch(&self) -> u64 {
        match self {
            ServeError::Compose { epoch, .. } | ServeError::Execute { epoch, .. } => *epoch,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Compose { error, epoch } => write!(f, "{error} (registry epoch {epoch})"),
            ServeError::Execute { error, epoch } => write!(f, "{error} (registry epoch {epoch})"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::QosModel;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn shared() -> SharedEnvironment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 5);
        let rt = env.model().property("ResponseTime").unwrap();
        for i in 0..4 {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 50.0 + f64::from(i));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
        SharedEnvironment::new(env)
    }

    fn request() -> UserRequest {
        UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
    }

    fn session() -> SessionRequest {
        SessionRequest::new(request()).for_client("tester")
    }

    #[test]
    fn serve_session_composes_and_executes() {
        let shared = shared();
        match shared.serve_session(&session()).unwrap() {
            ServeOutcome::Completed(report) => assert!(report.success),
            other => panic!("expected Completed, got {other:?}"),
        }
    }

    #[test]
    fn serve_session_types_analyzer_rejections() {
        let shared = shared();
        let bad = SessionRequest::new(
            request()
                .constraint("Bogus", 1.0, qasom_qos::Unit::Dimensionless)
                .unwrap(),
        );
        match shared.serve_session(&bad).unwrap() {
            ServeOutcome::Rejected(diags) => {
                assert!(diags.iter().any(|d| d.code.code() == "QA010"), "{diags:?}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn serve_errors_carry_the_failure_epoch() {
        let shared = shared();
        // Remove every provider: composition fails with NoServiceFor at
        // the post-churn epoch.
        let ids = shared.with(|e| e.registry().iter().map(|(id, _)| id).collect::<Vec<_>>());
        let mut delta = RegistryDelta::new();
        for id in ids {
            delta = delta.undeploy(id);
        }
        let receipt = shared.apply_churn(delta);
        let err = shared.serve_session(&session()).unwrap_err();
        match err {
            ServeError::Compose { epoch, ref error } => {
                assert_eq!(epoch, receipt.epoch);
                assert!(matches!(error, ComposeError::NoServiceFor { .. }));
            }
            other => panic!("expected Compose error, got {other:?}"),
        }
        assert_eq!(err.epoch(), receipt.epoch);
    }

    #[test]
    fn legacy_request_serves_through_the_typed_session_api() {
        // Replaces the old shim test: a bare UserRequest wrapped in a
        // SessionRequest must complete just like `serve` used to.
        let shared = shared();
        match shared
            .serve_session(&SessionRequest::new(request()))
            .unwrap()
        {
            ServeOutcome::Completed(report) => assert!(report.success),
            other => panic!("expected a completed session, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_sessions_all_complete() {
        let shared = shared();
        let log = crate::EventLog::new();
        shared.with_mut(|e| e.subscribe(std::sync::Arc::new(log.clone())));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.serve_session(&session()).unwrap().is_completed())
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        // All eight sessions' invocations are visible to the shared sink.
        let invoked = log
            .events()
            .iter()
            .filter(|ev| matches!(ev, crate::MiddlewareEvent::Invoked { .. }))
            .count();
        assert_eq!(invoked, 8);
    }

    #[test]
    fn reads_run_while_handle_is_cloned() {
        let shared = shared();
        let clone = shared.clone();
        let (a, b) = (
            shared.with(|e| e.registry().len()),
            clone.with(|e| e.registry().len()),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn apply_churn_deploys_and_undeploys_transactionally() {
        let shared = shared();
        let rt = shared.with(|e| e.model().property("ResponseTime").unwrap());
        let before = shared.with(|e| e.epoch());
        let receipt = shared.apply_churn(
            RegistryDelta::new()
                .deploy_faithful(ServiceDescription::new("burst", "d#A").with_qos(rt, 10.0))
                .undeploy_named("s0")
                .undeploy_named("no-such-service"),
        );
        assert_eq!(receipt.deployed.len(), 1);
        assert_eq!(receipt.undeployed, 1);
        // One deploy + one departure = two registry events.
        assert_eq!(receipt.epoch, before + 2);
        // The receipt's sync cursor names the same log position, typed.
        assert_eq!(receipt.cursor.seq() as u64, receipt.epoch);
        assert_eq!(shared.with(|e| e.registry().sync_cursor()), receipt.cursor);
        shared.with(|e| {
            assert!(e.registry().iter().any(|(_, d)| d.name() == "burst"));
            assert!(e.registry().iter().all(|(_, d)| d.name() != "s0"));
        });
    }

    #[test]
    fn reload_ontology_swaps_taxonomy_and_rebuilds_index() {
        let shared = shared();
        let old_stamp = shared.with(|e| e.ontology().stamp());
        let mut b = OntologyBuilder::new("d");
        let a = b.concept("A");
        b.subconcept("A1", a);
        let new_stamp = shared.reload_ontology(b.build().unwrap());
        assert_ne!(old_stamp, new_stamp);
        shared.with(|e| {
            assert_eq!(e.ontology().stamp(), new_stamp);
            assert!(e.registry().index_matches_rebuild());
            // Services registered before the swap stay discoverable
            // through the rebuilt index.
            assert_eq!(e.discover(&Activity::new("x", "d#A")).len(), 4);
        });
    }

    /// Proof that `compose` takes only the read lock: one thread holds a
    /// read guard (via `with`) for the entire duration of another
    /// thread's `compose`. If `compose` needed the write lock it could
    /// never finish while the guard is held, and the bounded wait below
    /// would fail the test instead of deadlocking.
    #[test]
    fn compose_overlaps_a_held_read_lock() {
        use std::sync::mpsc;
        use std::time::Duration;

        let shared = shared();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();

        let holder = {
            let s = shared.clone();
            std::thread::spawn(move || {
                s.with(|_| {
                    entered_tx.send(()).unwrap();
                    // Keep the read guard until the composer reports back.
                    done_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("compose must complete while this read guard is held");
                })
            })
        };

        entered_rx.recv().unwrap();
        let composed = shared.compose(&request());
        done_tx.send(()).unwrap();
        holder.join().unwrap();
        assert!(composed.is_ok());
    }

    #[test]
    fn compose_with_epoch_tracks_churn() {
        let shared = shared();
        let (before, _) = shared.compose_with_epoch(&request()).unwrap();
        let id = shared.with(|e| e.registry().iter().next().unwrap().0);
        shared.apply_churn(RegistryDelta::new().undeploy(id));
        let (after, _) = shared.compose_with_epoch(&request()).unwrap();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn recompose_runs_under_the_read_lock_and_takes_the_delta_path() {
        use qasom_obs::{MemoryRecorder, Recorder};
        let shared = shared();
        let recorder = std::sync::Arc::new(MemoryRecorder::new());
        shared.with_mut(|e| {
            e.set_recorder(std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn Recorder>)
        });
        let comp = shared.compose(&request()).unwrap();
        let rt = shared.with(|e| e.model().property("ResponseTime").unwrap());
        let receipt = shared.apply_churn(
            RegistryDelta::new()
                .deploy_faithful(ServiceDescription::new("fresh", "d#A").with_qos(rt, 1.0)),
        );
        let recomposed = shared.recompose(&comp).unwrap();
        // The newcomer entered the re-ranked candidate hierarchy…
        assert!(recomposed.outcome().ranked[0]
            .iter()
            .any(|c| c.id() == receipt.deployed[0]));
        // …and the incremental path agrees with the full oracle.
        let full = shared.with(|e| e.recompose_full(&comp).unwrap());
        assert_eq!(recomposed.outcome().assignment, full.outcome().assignment);
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::SELECTION_DELTA_ATTEMPTS), 1);
        assert_eq!(snap.counter(keys::SELECTION_DELTA_INCREMENTAL), 1);
        // compose + the rt lookup + recompose + the oracle `with` = 4.
        assert_eq!(snap.counter(keys::SERVING_READ_LOCKS), 4);
        assert_eq!(snap.counter(keys::SERVING_WRITE_LOCKS), 1);
    }

    #[test]
    fn serving_counters_record_lock_traffic() {
        use qasom_obs::{MemoryRecorder, Recorder};
        let shared = shared();
        let recorder = std::sync::Arc::new(MemoryRecorder::new());
        shared.with_mut(|e| {
            e.set_recorder(std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn Recorder>)
        });
        for _ in 0..3 {
            shared.serve_session(&session()).unwrap();
        }
        let _ = shared.compose(&request()).unwrap();
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::SERVING_SESSIONS), 3);
        // 3 sessions (read each) + 1 compose.
        assert_eq!(snap.counter(keys::SERVING_READ_LOCKS), 4);
        // 3 sessions (write each); the set_recorder with_mut predates
        // the recorder, so it is not counted.
        assert_eq!(snap.counter(keys::SERVING_WRITE_LOCKS), 3);
    }
}
