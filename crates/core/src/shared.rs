//! Thread-safe middleware handle for multi-session deployments.

use std::sync::{Arc, RwLock};

use crate::{
    ComposeError, Environment, ExecutableComposition, ExecutionError, ExecutionReport, UserRequest,
};

/// A clonable, thread-safe handle to an [`Environment`].
///
/// A deployed middleware instance serves many user sessions at once:
/// composition requests and executions arrive from different threads while
/// providers keep registering and departing. `SharedEnvironment` wraps the
/// single-threaded [`Environment`] in an `Arc<RwLock<…>>`. A poisoned
/// lock (a panic inside a session) is recovered rather than propagated —
/// the environment's state stays consistent because every mutating
/// operation is applied transactionally under the write lock:
///
/// * read-only queries ([`SharedEnvironment::with`]) run concurrently;
/// * mutating operations (compose, execute, deploy) serialise on the
///   write lock — executions mutate the shared monitor, SLA records and
///   the synthetic runtime, so they are transactions over the
///   environment's state.
///
/// # Examples
///
/// ```
/// use qasom::{Environment, SharedEnvironment};
/// use qasom_ontology::OntologyBuilder;
/// use qasom_qos::QosModel;
///
/// let env = Environment::new(
///     QosModel::standard(),
///     OntologyBuilder::new("d").build().unwrap(),
///     1,
/// );
/// let shared = SharedEnvironment::new(env);
/// let clone = shared.clone();
/// let services = clone.with(|e| e.registry().len());
/// assert_eq!(services, 0);
/// ```
#[derive(Clone)]
pub struct SharedEnvironment {
    inner: Arc<RwLock<Environment>>,
}

impl SharedEnvironment {
    /// Wraps an environment.
    pub fn new(environment: Environment) -> Self {
        SharedEnvironment {
            inner: Arc::new(RwLock::new(environment)),
        }
    }

    /// Runs a read-only query under the shared lock.
    pub fn with<R>(&self, f: impl FnOnce(&Environment) -> R) -> R {
        f(&self.read())
    }

    /// Runs a mutating operation under the exclusive lock (deployments,
    /// fault injection, task-class registration, …).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Environment) -> R) -> R {
        f(&mut self.write())
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Environment> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Environment> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Composes a request (exclusive: composition emits events).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn compose(&self, request: &UserRequest) -> Result<ExecutableComposition, ComposeError> {
        self.write().compose(request)
    }

    /// Executes a composition as one transaction over the environment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::execute`].
    pub fn execute(
        &self,
        composition: ExecutableComposition,
    ) -> Result<ExecutionReport, ExecutionError> {
        self.write().execute(composition)
    }

    /// Composes and executes in one exclusive section, so no churn can
    /// slip between selection and binding.
    ///
    /// # Errors
    ///
    /// Propagates composition and execution errors.
    pub fn serve(&self, request: &UserRequest) -> Result<ExecutionReport, ServeError> {
        let mut env = self.write();
        let composition = env.compose(request).map_err(ServeError::Compose)?;
        env.execute(composition).map_err(ServeError::Execute)
    }
}

/// Errors of [`SharedEnvironment::serve`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The composition pipeline failed.
    Compose(ComposeError),
    /// The execution engine failed.
    Execute(ExecutionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Compose(e) => write!(f, "{e}"),
            ServeError::Execute(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_netsim::runtime::SyntheticService;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::QosModel;
    use qasom_registry::ServiceDescription;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn shared() -> SharedEnvironment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 5);
        let rt = env.model().property("ResponseTime").unwrap();
        for i in 0..4 {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 50.0 + f64::from(i));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
        SharedEnvironment::new(env)
    }

    fn request() -> UserRequest {
        UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
    }

    #[test]
    fn serve_composes_and_executes() {
        let shared = shared();
        let report = shared.serve(&request()).unwrap();
        assert!(report.success);
    }

    #[test]
    fn concurrent_sessions_all_complete() {
        let shared = shared();
        let log = crate::EventLog::new();
        shared.with_mut(|e| e.subscribe(std::sync::Arc::new(log.clone())));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.serve(&request()).unwrap().success)
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        // All eight sessions' invocations are visible to the shared sink.
        let invoked = log
            .events()
            .iter()
            .filter(|ev| matches!(ev, crate::MiddlewareEvent::Invoked { .. }))
            .count();
        assert_eq!(invoked, 8);
    }

    #[test]
    fn reads_run_while_handle_is_cloned() {
        let shared = shared();
        let clone = shared.clone();
        let (a, b) = (
            shared.with(|e| e.registry().len()),
            clone.with(|e| e.registry().len()),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn with_mut_allows_churn() {
        let shared = shared();
        let id = shared.with(|e| e.registry().iter().next().unwrap().0);
        shared.with_mut(|e| e.undeploy(id));
        assert!(shared.with(|e| e.registry().get(id).is_none()));
    }
}
