//! Thread-safe middleware handle for multi-session deployments.

use std::sync::{Arc, RwLock};

use qasom_obs::keys;

use crate::{
    ComposeError, Environment, ExecutableComposition, ExecutionError, ExecutionReport, UserRequest,
};

/// A clonable, thread-safe handle to an [`Environment`].
///
/// A deployed middleware instance serves many user sessions at once:
/// composition requests and executions arrive from different threads while
/// providers keep registering and departing. `SharedEnvironment` wraps the
/// [`Environment`] in an `Arc<RwLock<…>>`. A poisoned lock (a panic inside
/// a session) is recovered rather than propagated — the environment's
/// state stays consistent because every mutating operation is applied
/// transactionally under the write lock.
///
/// The lock discipline splits the serving pipeline by what it touches:
///
/// * **read lock (concurrent):** queries ([`SharedEnvironment::with`])
///   and the full composition pipeline — analysis, discovery and QASSA
///   selection ([`SharedEnvironment::compose`]) — which only read the
///   registry/ontology/QoS model and use interior-mutable, concurrency-
///   safe structures (`MatchCache`, event buffer, recorder) for their
///   side channels. Any number of sessions compose simultaneously.
/// * **write lock (exclusive):** provider churn and execution
///   ([`SharedEnvironment::with_mut`], [`SharedEnvironment::execute`]) —
///   executions mutate the QoS monitor, SLA records and the synthetic
///   runtime, so they are transactions over the environment's state.
///
/// [`SharedEnvironment::serve`] composes under the read lock, then
/// executes under the write lock. Churn may slip between the two phases;
/// that is safe because execution re-validates liveness at binding time
/// (dynamic binding substitutes departed services), exactly as it already
/// must for services failing mid-execution.
///
/// # Examples
///
/// ```
/// use qasom::{Environment, SharedEnvironment};
/// use qasom_ontology::OntologyBuilder;
/// use qasom_qos::QosModel;
///
/// let env = Environment::new(
///     QosModel::standard(),
///     OntologyBuilder::new("d").build().unwrap(),
///     1,
/// );
/// let shared = SharedEnvironment::new(env);
/// let clone = shared.clone();
/// let services = clone.with(|e| e.registry().len());
/// assert_eq!(services, 0);
/// ```
#[derive(Clone)]
pub struct SharedEnvironment {
    inner: Arc<RwLock<Environment>>,
}

impl SharedEnvironment {
    /// Wraps an environment.
    pub fn new(environment: Environment) -> Self {
        SharedEnvironment {
            inner: Arc::new(RwLock::new(environment)),
        }
    }

    /// Runs a read-only query under the shared lock. Since the whole
    /// composition pipeline works through `&Environment`, sessions may
    /// compose inside the closure — e.g. to read the composition and the
    /// [`Environment::epoch`] that produced it atomically.
    pub fn with<R>(&self, f: impl FnOnce(&Environment) -> R) -> R {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        f(&env)
    }

    /// Runs a mutating operation under the exclusive lock (deployments,
    /// fault injection, task-class registration, …).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Environment) -> R) -> R {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        f(&mut env)
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Environment> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Environment> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Composes a request under the **read** lock: any number of
    /// sessions run discovery + selection concurrently, and provider
    /// churn (which needs the write lock) waits rather than being
    /// interleaved mid-pipeline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn compose(&self, request: &UserRequest) -> Result<ExecutableComposition, ComposeError> {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        env.compose(request)
    }

    /// Composes a request and returns it together with the registry
    /// epoch ([`Environment::epoch`]) it was computed against, read
    /// atomically under one read-lock acquisition. Sessions use the
    /// epoch to compare concurrent results against a deterministic
    /// single-threaded replay of the same registry state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn compose_with_epoch(
        &self,
        request: &UserRequest,
    ) -> Result<(u64, ExecutableComposition), ComposeError> {
        let env = self.read();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_READ_LOCKS, 1);
        }
        let composition = env.compose(request)?;
        Ok((env.epoch(), composition))
    }

    /// Executes a composition as one transaction over the environment
    /// (write lock: execution mutates the monitor, SLAs and runtime).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::execute`].
    pub fn execute(
        &self,
        composition: ExecutableComposition,
    ) -> Result<ExecutionReport, ExecutionError> {
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        env.execute(composition)
    }

    /// One full session: composes under the read lock (concurrently
    /// with other sessions), then executes under the write lock.
    ///
    /// A provider may depart between the two phases; execution handles
    /// that exactly like a mid-execution departure — dynamic binding
    /// re-checks liveness and substitutes from the ranked alternates —
    /// so the relaxation never returns a binding to a dead service.
    ///
    /// # Errors
    ///
    /// Propagates composition and execution errors.
    pub fn serve(&self, request: &UserRequest) -> Result<ExecutionReport, ServeError> {
        let composition = {
            let env = self.read();
            if let Some(rec) = env.recorder() {
                rec.incr(keys::SERVING_SESSIONS, 1);
                rec.incr(keys::SERVING_READ_LOCKS, 1);
            }
            env.compose(request).map_err(ServeError::Compose)?
        };
        let mut env = self.write();
        if let Some(rec) = env.recorder() {
            rec.incr(keys::SERVING_WRITE_LOCKS, 1);
        }
        env.execute(composition).map_err(ServeError::Execute)
    }
}

/// Errors of [`SharedEnvironment::serve`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The composition pipeline failed.
    Compose(ComposeError),
    /// The execution engine failed.
    Execute(ExecutionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Compose(e) => write!(f, "{e}"),
            ServeError::Execute(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_netsim::runtime::SyntheticService;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::QosModel;
    use qasom_registry::ServiceDescription;
    use qasom_task::{Activity, TaskNode, UserTask};

    fn shared() -> SharedEnvironment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        let mut env = Environment::new(QosModel::standard(), b.build().unwrap(), 5);
        let rt = env.model().property("ResponseTime").unwrap();
        for i in 0..4 {
            let desc =
                ServiceDescription::new(format!("s{i}"), "d#A").with_qos(rt, 50.0 + f64::from(i));
            let nominal = desc.qos().clone();
            env.deploy(desc, SyntheticService::new(nominal));
        }
        SharedEnvironment::new(env)
    }

    fn request() -> UserRequest {
        UserRequest::new(UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap())
    }

    #[test]
    fn serve_composes_and_executes() {
        let shared = shared();
        let report = shared.serve(&request()).unwrap();
        assert!(report.success);
    }

    #[test]
    fn concurrent_sessions_all_complete() {
        let shared = shared();
        let log = crate::EventLog::new();
        shared.with_mut(|e| e.subscribe(std::sync::Arc::new(log.clone())));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.serve(&request()).unwrap().success)
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        // All eight sessions' invocations are visible to the shared sink.
        let invoked = log
            .events()
            .iter()
            .filter(|ev| matches!(ev, crate::MiddlewareEvent::Invoked { .. }))
            .count();
        assert_eq!(invoked, 8);
    }

    #[test]
    fn reads_run_while_handle_is_cloned() {
        let shared = shared();
        let clone = shared.clone();
        let (a, b) = (
            shared.with(|e| e.registry().len()),
            clone.with(|e| e.registry().len()),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn with_mut_allows_churn() {
        let shared = shared();
        let id = shared.with(|e| e.registry().iter().next().unwrap().0);
        shared.with_mut(|e| e.undeploy(id));
        assert!(shared.with(|e| e.registry().get(id).is_none()));
    }

    /// Proof that `compose` takes only the read lock: one thread holds a
    /// read guard (via `with`) for the entire duration of another
    /// thread's `compose`. If `compose` needed the write lock it could
    /// never finish while the guard is held, and the bounded wait below
    /// would fail the test instead of deadlocking.
    #[test]
    fn compose_overlaps_a_held_read_lock() {
        use std::sync::mpsc;
        use std::time::Duration;

        let shared = shared();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();

        let holder = {
            let s = shared.clone();
            std::thread::spawn(move || {
                s.with(|_| {
                    entered_tx.send(()).unwrap();
                    // Keep the read guard until the composer reports back.
                    done_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("compose must complete while this read guard is held");
                })
            })
        };

        entered_rx.recv().unwrap();
        let composed = shared.compose(&request());
        done_tx.send(()).unwrap();
        holder.join().unwrap();
        assert!(composed.is_ok());
    }

    #[test]
    fn compose_with_epoch_tracks_churn() {
        let shared = shared();
        let (before, _) = shared.compose_with_epoch(&request()).unwrap();
        let id = shared.with(|e| e.registry().iter().next().unwrap().0);
        shared.with_mut(|e| e.undeploy(id));
        let (after, _) = shared.compose_with_epoch(&request()).unwrap();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn serving_counters_record_lock_traffic() {
        use qasom_obs::{MemoryRecorder, Recorder};
        let shared = shared();
        let recorder = std::sync::Arc::new(MemoryRecorder::new());
        shared.with_mut(|e| {
            e.set_recorder(std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn Recorder>)
        });
        for _ in 0..3 {
            shared.serve(&request()).unwrap();
        }
        let _ = shared.compose(&request()).unwrap();
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::SERVING_SESSIONS), 3);
        // 3 serves (read each) + 1 compose.
        assert_eq!(snap.counter(keys::SERVING_READ_LOCKS), 4);
        // 3 serves (write each); the set_recorder with_mut predates the
        // recorder, so it is not counted.
        assert_eq!(snap.counter(keys::SERVING_WRITE_LOCKS), 3);
    }
}
