//! # QASOM — QoS-aware Service-Oriented Middleware for Pervasive
//! # Environments
//!
//! The facade crate of the middleware: it wires the semantic QoS model
//! ([`qasom_qos`]), the task model ([`qasom_task`]), service discovery
//! ([`qasom_registry`]), the QASSA selection algorithm
//! ([`qasom_selection`]) and the adaptation engine ([`qasom_adaptation`])
//! into the end-to-end pipeline of the original platform:
//!
//! ```text
//! user request ─▶ task lookup ─▶ QoS-aware discovery ─▶ QASSA selection
//!      ─▶ executable composition (dynamic binding)
//!      ─▶ execution + global/proactive monitoring
//!      ─▶ service substitution ─▶ behavioural adaptation
//! ```
//!
//! # Examples
//!
//! ```
//! use qasom::{Environment, UserRequest};
//! use qasom_netsim::runtime::SyntheticService;
//! use qasom_ontology::OntologyBuilder;
//! use qasom_qos::{QosModel, Unit};
//! use qasom_registry::ServiceDescription;
//! use qasom_task::{Activity, TaskNode, UserTask};
//!
//! // 1. A pervasive environment with one service.
//! let mut onto = OntologyBuilder::new("demo");
//! onto.concept("Echo");
//! let mut env = Environment::new(QosModel::standard(), onto.build().unwrap(), 42);
//! let rt = env.model().property("ResponseTime").unwrap();
//! let desc = ServiceDescription::new("echo", "demo#Echo").with_qos(rt, 50.0);
//! let nominal = desc.qos().clone();
//! env.deploy(desc, SyntheticService::new(nominal));
//!
//! // 2. A one-activity task and a request.
//! let task = UserTask::new(
//!     "hello",
//!     TaskNode::activity(Activity::new("echo", "demo#Echo")),
//! )
//! .unwrap();
//! let request = UserRequest::new(task)
//!     .constraint("ResponseTime", 1.0, Unit::Seconds)
//!     .unwrap();
//!
//! // 3. Compose and execute.
//! let composition = env.compose(&request).unwrap();
//! let report = env.execute(composition).unwrap();
//! assert!(report.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod composition;
pub mod demo;
mod environment;
mod events;
mod execution;
mod request;
mod shared;

pub use composition::{ComposeError, ExecutableComposition};
pub use environment::{Environment, EnvironmentBuilder, EnvironmentConfig};
pub use events::{EventLog, EventSink, MiddlewareEvent};
pub use execution::{ExecutionError, ExecutionReport, InvocationRecord, TimelineEntry};
pub use request::UserRequest;
pub use shared::{
    ChurnReceipt, RegistryDelta, ServeError, ServeOutcome, SessionRequest, SharedEnvironment,
};
