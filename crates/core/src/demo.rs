//! The builtin seeded end-to-end scenario behind `qasom-cli report`,
//! the golden report tests and the CI observability job.
//!
//! One deterministic run exercises every pipeline stage the
//! [`RunReport`] covers: QoS-aware discovery (indexed queries, match
//! cache), QASSA selection, execution with a forced substitution, and a
//! distributed QASSA run over the network simulator. The report is a
//! pure function of the seed — identical seeds must produce
//! byte-identical JSON.

use std::sync::Arc;

use qasom_netsim::runtime::SyntheticService;
use qasom_obs::report::{ComposeSection, ExecutionSection, RunReport};
use qasom_obs::{MemoryRecorder, Recorder};
use qasom_ontology::OntologyBuilder;
use qasom_qos::{QosModel, Unit};
use qasom_registry::ServiceDescription;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup};
use qasom_selection::workload::WorkloadSpec;
use qasom_task::{Activity, TaskNode, UserTask};

use crate::{Environment, EnvironmentConfig, EventLog, ExecutionReport, UserRequest};

/// Name of the scenario label stamped into the demo report.
pub const DEMO_SCENARIO: &str = "builtin-demo";

/// Builds the demo environment: a three-concept shopping ontology, nine
/// services with spread QoS (the best `Pay` provider crashes on first
/// invocation, forcing one substitution), an attached
/// [`MemoryRecorder`] and [`EventLog`].
fn demo_environment(seed: u64, recorder: Arc<MemoryRecorder>, log: &EventLog) -> Environment {
    let mut onto = OntologyBuilder::new("shop");
    onto.concept("Locate");
    onto.concept("Guide");
    onto.concept("Pay");
    let mut env = EnvironmentConfig::builder()
        .seed(seed)
        .recorder(recorder as Arc<dyn Recorder>)
        .sink(Arc::new(log.clone()))
        .build(
            QosModel::standard(),
            onto.build().expect("demo ontology is well-formed"),
        );

    let rt = env
        .model()
        .property("ResponseTime")
        .expect("standard model has ResponseTime");
    let av = env
        .model()
        .property("Availability")
        .expect("standard model has Availability");
    let services: &[(&str, &str, f64)] = &[
        ("locate-kiosk", "shop#Locate", 40.0),
        ("locate-phone", "shop#Locate", 90.0),
        ("locate-cloud", "shop#Locate", 250.0),
        ("guide-map", "shop#Guide", 60.0),
        ("guide-audio", "shop#Guide", 120.0),
        ("guide-avatar", "shop#Guide", 400.0),
        ("pay-nfc", "shop#Pay", 30.0),
        ("pay-card", "shop#Pay", 80.0),
        ("pay-gateway", "shop#Pay", 300.0),
    ];
    for &(name, function, rt_ms) in services {
        let desc = ServiceDescription::new(name, function)
            .with_qos(rt, rt_ms)
            .with_qos(av, 0.99);
        let nominal = desc.qos().clone();
        // The top-ranked payment provider dies on first contact so the
        // execution engine demonstrably substitutes (deterministically).
        let behaviour = if name == "pay-nfc" {
            SyntheticService::new(nominal).with_crash_after(0)
        } else {
            SyntheticService::new(nominal)
        };
        env.deploy(desc, behaviour);
    }
    env
}

fn demo_task() -> UserTask {
    UserTask::new(
        "shopping-trip",
        TaskNode::sequence([
            TaskNode::activity(Activity::new("locate", "shop#Locate")),
            TaskNode::activity(Activity::new("guide", "shop#Guide")),
            TaskNode::activity(Activity::new("pay", "shop#Pay")),
        ]),
    )
    .expect("demo task is well-formed")
}

fn execution_section(env: &Environment, report: &ExecutionReport) -> ExecutionSection {
    let model = env.model();
    ExecutionSection {
        success: report.success,
        invocations: report.invocations.len() as u64,
        failures: report
            .invocations
            .iter()
            .filter(|r| r.qos.is_none())
            .count() as u64,
        substitutions: report.substitutions as u64,
        behavioural_adaptations: report.behavioural_adaptations as u64,
        violations: report.violations.len() as u64,
        delivered: report
            .delivered
            .iter()
            .map(|(p, v)| (model.def(p).name().to_owned(), v))
            .collect(),
    }
}

/// Runs the builtin scenario and assembles the full [`RunReport`].
///
/// The report covers every section: compose + execution from the
/// centralized pipeline, discovery/selection/metrics from the attached
/// recorder, and a distributed QASSA run (same seed) over the network
/// simulator.
///
/// # Panics
///
/// Panics only if the builtin scenario itself is broken (it is fixed at
/// compile time and covered by tests).
pub fn demo_run_report(seed: u64) -> RunReport {
    let recorder = Arc::new(MemoryRecorder::new());
    let log = EventLog::new();
    let mut env = demo_environment(seed, Arc::clone(&recorder), &log);

    let request = UserRequest::new(demo_task())
        .constraint("ResponseTime", 1.0, Unit::Seconds)
        .expect("ResponseTime is a standard property")
        .weight("ResponseTime", 0.7)
        .weight("Availability", 0.3);
    let composition = env.compose(&request).expect("demo composition succeeds");
    let compose = ComposeSection {
        task: composition.task().name().to_owned(),
        feasible: composition.outcome().feasible,
        levels_explored: composition.outcome().levels_explored as u64,
        utility: composition.outcome().utility,
        analyzer_warnings: composition.warnings().len() as u64,
    };
    let executed = env.execute(composition).expect("demo execution succeeds");
    let execution = execution_section(&env, &executed);

    // The distributed leg: the same seed drives a synthetic workload
    // sharded over seven simulated providers, flushing protocol counts
    // and RTTs into the same recorder.
    let model = env.model().clone();
    let workload = WorkloadSpec::evaluation_default()
        .activities(3)
        .services_per_activity(12)
        .build(&model, seed);
    let setup = DistributedSetup {
        providers: 7,
        ..DistributedSetup::default()
    };
    let distributed = DistributedQassa::new(&model)
        .run_recorded(&workload, &setup, seed, Some(recorder.as_ref()))
        .expect("demo distributed run succeeds");

    let mut report = env.run_report(DEMO_SCENARIO);
    report.compose = Some(compose);
    report.execution = Some(execution);
    report.distributed = Some(distributed.to_section());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_report_covers_every_section() {
        let report = demo_run_report(42);
        assert_eq!(report.seed, 42);
        assert_eq!(report.scenario, DEMO_SCENARIO);
        let compose = report.compose.as_ref().expect("compose section");
        assert!(compose.feasible);
        let execution = report.execution.as_ref().expect("execution section");
        assert!(execution.success);
        // pay-nfc crashes once: at least one failure and a substitution.
        assert!(execution.failures >= 1);
        assert!(execution.substitutions >= 1);
        let discovery = report.discovery.as_ref().expect("discovery section");
        assert!(discovery.indexed_queries >= 3);
        let selection = report.selection.as_ref().expect("selection section");
        assert!(selection.runs >= 1);
        let distributed = report.distributed.as_ref().expect("distributed section");
        assert_eq!(distributed.providers, 7);
        assert!(distributed.net.sent > 0);
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = demo_run_report(7).to_compact_string();
        let b = demo_run_report(7).to_compact_string();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = demo_run_report(7).to_compact_string();
        let b = demo_run_report(8).to_compact_string();
        assert_ne!(a, b);
    }
}
