//! Executable compositions.

use std::fmt;

use qasom_analysis::Diagnostic;
use qasom_qos::{ConstraintSet, Preferences, QosModelError, QosVector};
use qasom_selection::{AggregationApproach, SelectionError, SelectionOutcome};
use qasom_task::UserTask;

/// Errors of the composition pipeline (discovery + selection).
#[derive(Debug, Clone, PartialEq)]
pub enum ComposeError {
    /// The static analyzer rejected the request before discovery even
    /// ran (error-level diagnostics; see [`qasom_analysis::Analyzer`]).
    Rejected(Vec<Diagnostic>),
    /// A QoS name in the request is unknown to the model.
    Qos(QosModelError),
    /// An activity found no candidate service at all.
    NoServiceFor {
        /// The uncovered activity's name.
        activity: String,
    },
    /// The selection algorithm rejected the problem.
    Selection(SelectionError),
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Rejected(diags) => {
                write!(f, "request rejected by static analysis:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            ComposeError::Qos(e) => write!(f, "{e}"),
            ComposeError::NoServiceFor { activity } => {
                write!(
                    f,
                    "no service in the environment can serve activity {activity:?}"
                )
            }
            ComposeError::Selection(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ComposeError {}

impl From<QosModelError> for ComposeError {
    fn from(e: QosModelError) -> Self {
        ComposeError::Qos(e)
    }
}

impl From<SelectionError> for ComposeError {
    fn from(e: SelectionError) -> Self {
        ComposeError::Selection(e)
    }
}

/// A composition ready for execution: the task, the QASSA outcome (chosen
/// binding per activity plus ranked alternates for dynamic binding) and
/// the request's QoS context.
#[derive(Debug, Clone)]
pub struct ExecutableComposition {
    pub(crate) task: UserTask,
    pub(crate) outcome: SelectionOutcome,
    pub(crate) constraints: ConstraintSet,
    pub(crate) preferences: Preferences,
    pub(crate) approach: AggregationApproach,
    pub(crate) warnings: Vec<Diagnostic>,
    /// Registry event-log cursor at compose time: delta re-selection
    /// syncs only the churn after this point.
    pub(crate) registry_cursor: qasom_registry::ReplicaCursor,
    /// The environment's perturbation stamp at compose time; a mismatch
    /// means non-churn state (infrastructure QoS, reputation, ontology)
    /// moved and cached levels cannot be trusted.
    pub(crate) perturbations: u64,
}

impl ExecutableComposition {
    /// The task being realised.
    pub fn task(&self) -> &UserTask {
        &self.task
    }

    /// The selection outcome backing this composition.
    pub fn outcome(&self) -> &SelectionOutcome {
        &self.outcome
    }

    /// The global constraints the composition was selected under.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The preference weights of the request.
    pub fn preferences(&self) -> &Preferences {
        &self.preferences
    }

    /// The aggregation approach of the request.
    pub fn approach(&self) -> AggregationApproach {
        self.approach
    }

    /// The QoS the composition promises (aggregated advertised QoS).
    pub fn promised_qos(&self) -> &QosVector {
        &self.outcome.aggregated
    }

    /// Warning-level diagnostics the static analyzer attached to the
    /// request (the composition went ahead regardless).
    pub fn warnings(&self) -> &[Diagnostic] {
        &self.warnings
    }
}
