//! The middleware instance: environment state + composition pipeline.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use qasom_adaptation::{MonitorConfig, QosMonitor};
use qasom_analysis::{Analyzer, ApproachKind, RequestSpec};
use qasom_netsim::runtime::{ServiceRuntime, SyntheticService};
use qasom_obs::report::{
    CheckSection, DaemonSection, DiscoverySection, HotpathSection, PersistenceSection, RunReport,
    SelectionSection, ServingSection,
};
use qasom_obs::{keys, Recorder};
use qasom_ontology::Ontology;
use qasom_qos::{EndToEnd, QosModel, QosVector};
use qasom_registry::persist::{PersistStats, RegistryJournal};
use qasom_registry::{
    CacheStats, Discovery, DiscoveryQuery, MatchCache, RegistryEvent, RegistrySync,
    ServiceDescription, ServiceId, ServiceRegistry, SyncResponse,
};
use qasom_selection::{Qassa, QassaConfig, SelectionProblem, ServiceCandidate};
use qasom_task::{Activity, TaskClass, TaskClassRepository};

use crate::{ComposeError, EventSink, ExecutableComposition, MiddlewareEvent, UserRequest};

/// Tunables of a middleware instance.
#[derive(Debug, Clone, Copy)]
pub struct EnvironmentConfig {
    /// Seed of the synthetic service runtime (and the stamp carried by
    /// exported [`RunReport`]s).
    pub seed: u64,
    /// How many [`MiddlewareEvent`]s the environment retains for the
    /// deprecated pull API ([`Environment::events`]). Subscribed sinks
    /// always see every event regardless of this cap.
    pub retention: usize,
    /// QASSA parameters.
    pub qassa: QassaConfig,
    /// Monitoring parameters.
    pub monitor: MonitorConfig,
    /// Invocation attempts per activity (across substitutions) before
    /// escalating to behavioural adaptation.
    pub max_attempts_per_activity: usize,
    /// Behavioural-adaptation budget per execution.
    pub max_behavioural_adaptations: usize,
    /// SLA tolerance: how much worse than advertised a delivery may be
    /// before it counts as a contract breach (fraction, `0.2` = 20 %).
    pub sla_tolerance: f64,
}

impl Default for EnvironmentConfig {
    fn default() -> Self {
        EnvironmentConfig {
            seed: 0,
            retention: usize::MAX,
            qassa: QassaConfig::default(),
            monitor: MonitorConfig::default(),
            max_attempts_per_activity: 5,
            max_behavioural_adaptations: 2,
            sla_tolerance: 0.2,
        }
    }
}

impl EnvironmentConfig {
    /// A typed builder over the configuration plus the non-`Copy`
    /// attachments (recorder, event sinks), ending in
    /// [`EnvironmentBuilder::build`]:
    ///
    /// ```
    /// use qasom::{Environment, EnvironmentConfig};
    /// use qasom_ontology::OntologyBuilder;
    /// use qasom_qos::QosModel;
    ///
    /// let env: Environment = EnvironmentConfig::builder()
    ///     .seed(42)
    ///     .retention(1024)
    ///     .build(QosModel::standard(), OntologyBuilder::new("d").build().unwrap());
    /// assert_eq!(env.config().seed, 42);
    /// ```
    pub fn builder() -> EnvironmentBuilder {
        EnvironmentBuilder::new()
    }
}

/// Builder for [`Environment`]: every [`EnvironmentConfig`] field plus
/// the observability attachments ([`Recorder`], [`EventSink`]s) that a
/// `Copy` config cannot carry. Created by [`EnvironmentConfig::builder`].
#[derive(Debug, Default)]
pub struct EnvironmentBuilder {
    config: EnvironmentConfig,
    recorder: Option<Arc<dyn Recorder>>,
    sinks: Vec<Arc<dyn EventSink>>,
}

impl EnvironmentBuilder {
    /// A builder over the default configuration.
    pub fn new() -> Self {
        EnvironmentBuilder {
            config: EnvironmentConfig::default(),
            recorder: None,
            sinks: Vec::new(),
        }
    }

    /// Seed of the synthetic service runtime.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Cap on the retained event buffer (oldest events are dropped
    /// first once the cap is reached).
    #[must_use]
    pub fn retention(mut self, retention: usize) -> Self {
        self.config.retention = retention;
        self
    }

    /// QASSA parameters.
    #[must_use]
    pub fn qassa(mut self, qassa: QassaConfig) -> Self {
        self.config.qassa = qassa;
        self
    }

    /// Monitoring parameters.
    #[must_use]
    pub fn monitor(mut self, monitor: MonitorConfig) -> Self {
        self.config.monitor = monitor;
        self
    }

    /// Invocation attempts per activity before behavioural adaptation.
    #[must_use]
    pub fn max_attempts_per_activity(mut self, attempts: usize) -> Self {
        self.config.max_attempts_per_activity = attempts;
        self
    }

    /// Behavioural-adaptation budget per execution.
    #[must_use]
    pub fn max_behavioural_adaptations(mut self, budget: usize) -> Self {
        self.config.max_behavioural_adaptations = budget;
        self
    }

    /// SLA tolerance (fraction; `0.2` = 20 %).
    #[must_use]
    pub fn sla_tolerance(mut self, tolerance: f64) -> Self {
        self.config.sla_tolerance = tolerance;
        self
    }

    /// Attaches a [`Recorder`]: discovery, selection and event counters
    /// flow into it (see [`Environment::run_report`]).
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Subscribes an [`EventSink`] from the start (equivalent to calling
    /// [`Environment::subscribe`] right after construction).
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the environment over a QoS model and a domain ontology.
    pub fn build(self, model: QosModel, ontology: Ontology) -> Environment {
        let mut env = Environment::with_config(model, ontology, self.config.seed, self.config);
        env.recorder = self.recorder;
        env.sinks = self.sinks;
        env
    }
}

/// A QASOM middleware instance bound to one pervasive environment: the
/// service registry and synthetic runtime (the environment side), the
/// task-class repository, the QoS monitor and the event trace (the
/// middleware side).
pub struct Environment {
    model: QosModel,
    ontology: Arc<Ontology>,
    // Behind an `Arc` so readers can take a copy-on-write snapshot
    // ([`Environment::registry_snapshot`]) that stays valid across
    // subsequent churn: `deploy`/`undeploy` mutate through
    // `Arc::make_mut`, cloning only while a snapshot is outstanding.
    registry: Arc<ServiceRegistry>,
    // When attached, every registration/departure is journaled to the
    // WAL before control returns to the caller; a journal I/O failure
    // is counted and detaches the journal (the instance degrades to
    // in-memory rather than diverging from its own store).
    journal: Option<RegistryJournal>,
    match_cache: MatchCache,
    runtime: ServiceRuntime<ServiceId>,
    tasks: TaskClassRepository,
    infra: HashMap<u64, QosVector>,
    end_to_end: EndToEnd,
    // Counts every mutation that changes how candidates are *perceived*
    // without going through the registry event log (infrastructure QoS,
    // end-to-end rules, reputation re-advertisement, ontology reloads).
    // Compositions carry the stamp they were computed under; a mismatch
    // disqualifies their cached levels from delta re-selection.
    perturbations: u64,
    slas: HashMap<ServiceId, qasom_qos::Sla>,
    pub(crate) monitor: QosMonitor,
    // Interior mutability so `emit` (and hence the whole composition
    // pipeline) works through `&self`: that is what lets
    // `SharedEnvironment` run compose/select under the read lock.
    events: Mutex<Vec<MiddlewareEvent>>,
    pub(crate) config: EnvironmentConfig,
    recorder: Option<Arc<dyn Recorder>>,
    sinks: Vec<Arc<dyn EventSink>>,
}

impl Environment {
    /// Creates an environment over a QoS model and a domain ontology;
    /// `seed` drives the synthetic service runtime.
    pub fn new(model: QosModel, ontology: Ontology, seed: u64) -> Self {
        Environment::with_config(model, ontology, seed, EnvironmentConfig::default())
    }

    /// Creates an environment with explicit tunables.
    pub fn with_config(
        model: QosModel,
        ontology: Ontology,
        seed: u64,
        config: EnvironmentConfig,
    ) -> Self {
        let end_to_end = EndToEnd::standard(&model);
        let ontology = Arc::new(ontology);
        // The explicit seed argument wins over the one carried by the
        // config, so pre-builder call sites keep their exact behaviour.
        let config = EnvironmentConfig { seed, ..config };
        Environment {
            model,
            // The registry is bound to the domain ontology so it maintains
            // the inverted capability index discovery probes.
            registry: Arc::new(ServiceRegistry::with_ontology(Arc::clone(&ontology))),
            journal: None,
            ontology,
            match_cache: MatchCache::new(),
            runtime: ServiceRuntime::new(seed),
            tasks: TaskClassRepository::new(),
            infra: HashMap::new(),
            end_to_end,
            perturbations: 0,
            slas: HashMap::new(),
            monitor: QosMonitor::with_config(config.monitor),
            events: Mutex::new(Vec::new()),
            config,
            recorder: None,
            sinks: Vec::new(),
        }
    }

    /// The QoS model in force.
    pub fn model(&self) -> &QosModel {
        &self.model
    }

    /// The domain ontology in force.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The service directory.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// A cheap copy-on-write snapshot of the service directory (with its
    /// capability index): the returned handle pins the provider
    /// population of this instant even while churn continues —
    /// subsequent [`Environment::deploy`]/[`Environment::undeploy`]
    /// clone-on-write instead of mutating the snapshot in place. Pair
    /// with [`Environment::epoch`] to tag results with the registry
    /// state that produced them.
    pub fn registry_snapshot(&self) -> Arc<ServiceRegistry> {
        if let Some(rec) = &self.recorder {
            rec.incr(keys::SERVING_SNAPSHOTS, 1);
        }
        Arc::clone(&self.registry)
    }

    /// The registry epoch: the monotone event cursor every
    /// registration/departure advances. Two compositions computed at
    /// the same epoch saw the identical provider population, so the
    /// epoch is what concurrent sessions use to compare results
    /// against a single-threaded replay.
    pub fn epoch(&self) -> u64 {
        self.registry.event_cursor() as u64
    }

    /// The task-class repository.
    pub fn task_repository(&self) -> &TaskClassRepository {
        &self.tasks
    }

    /// The QoS monitor.
    pub fn monitor(&self) -> &QosMonitor {
        &self.monitor
    }

    /// The configuration in force.
    pub fn config(&self) -> &EnvironmentConfig {
        &self.config
    }

    /// The retained event buffer, poison-recovering: every mutation is
    /// a single push/drain, so a poisoned buffer is still coherent.
    fn retained(&self) -> std::sync::MutexGuard<'_, Vec<MiddlewareEvent>> {
        self.events.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A snapshot of the retained event trace (bounded by
    /// [`EnvironmentConfig::retention`]).
    #[deprecated(
        since = "0.2.0",
        note = "subscribe an EventLog via Environment::subscribe and read it instead"
    )]
    pub fn events(&self) -> Vec<MiddlewareEvent> {
        self.retained().clone()
    }

    /// Drains and returns the retained event trace.
    #[deprecated(
        since = "0.2.0",
        note = "subscribe an EventLog via Environment::subscribe and take() from it instead"
    )]
    pub fn take_events(&mut self) -> Vec<MiddlewareEvent> {
        std::mem::take(&mut *self.retained())
    }

    /// Subscribes a sink to the event stream: it sees every subsequent
    /// [`MiddlewareEvent`] synchronously, in emission order. The
    /// standard sink is [`crate::EventLog`].
    pub fn subscribe(&mut self, sink: Arc<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Attaches (or replaces) the metrics recorder. Pipeline counters —
    /// discovery index/cache behaviour, QASSA phase statistics, per-type
    /// event counts — flow into it from now on.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// Routes one event to the recorder (per-type counter), every
    /// subscribed sink, and the bounded retained buffer — the single
    /// emission path for the whole pipeline. Takes `&self` (the buffer
    /// has interior mutability) so composition can emit under a shared
    /// reference — the requirement for serving compositions from many
    /// sessions concurrently.
    pub(crate) fn emit(&self, event: MiddlewareEvent) {
        if let Some(rec) = &self.recorder {
            rec.incr(event.counter_key(), 1);
        }
        for sink in &self.sinks {
            sink.on_event(&event);
        }
        if self.config.retention == 0 {
            return;
        }
        let mut events = self.retained();
        if events.len() >= self.config.retention {
            let excess = events.len() + 1 - self.config.retention;
            events.drain(..excess);
        }
        events.push(event);
    }

    /// Hit/miss statistics of the semantic match cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.match_cache.stats()
    }

    /// Assembles a [`RunReport`] from the recorder's current snapshot:
    /// the discovery and selection sections are derived from the
    /// pipeline counters, the match-cache statistics are folded in, and
    /// the full [`qasom_obs::MetricsSnapshot`] rides along. Compose/execution/
    /// distributed sections are left for the caller to fill from the
    /// corresponding reports. Without a recorder the report carries an
    /// empty snapshot and no derived sections.
    pub fn run_report(&self, scenario: &str) -> RunReport {
        let mut report = RunReport::new(self.config.seed, scenario);
        let Some(snapshot) = self.recorder.as_ref().and_then(|r| r.snapshot()) else {
            return report;
        };
        let cache = self.match_cache.stats();
        report.discovery = Some(DiscoverySection {
            indexed_queries: snapshot.counter(keys::DISCOVERY_INDEXED),
            linear_queries: snapshot.counter(keys::DISCOVERY_LINEAR),
            services_evaluated: snapshot.counter(keys::DISCOVERY_EVALUATED),
            candidates: snapshot.counter(keys::DISCOVERY_CANDIDATES),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        });
        report.persistence = Some(PersistenceSection {
            wal_appends: snapshot.counter(keys::PERSIST_WAL_APPENDS),
            wal_bytes: snapshot.counter(keys::PERSIST_WAL_BYTES),
            checkpoints: snapshot.counter(keys::PERSIST_CHECKPOINTS),
            replayed_events: snapshot.counter(keys::PERSIST_REPLAY_EVENTS),
            torn_tails: snapshot.counter(keys::PERSIST_TORN_TAIL),
            snapshot_loads: snapshot.counter(keys::PERSIST_SNAPSHOT_LOADS),
            errors: snapshot.counter(keys::PERSIST_ERRORS),
        });
        report.serving = Some(ServingSection {
            sessions: snapshot.counter(keys::SERVING_SESSIONS),
            read_locks: snapshot.counter(keys::SERVING_READ_LOCKS),
            write_locks: snapshot.counter(keys::SERVING_WRITE_LOCKS),
            snapshot_refreshes: snapshot.counter(keys::SERVING_SNAPSHOTS),
        });
        report.daemon = Some(DaemonSection {
            sessions_admitted: snapshot.counter(keys::DAEMON_ADMITTED),
            sessions_shed: snapshot.counter(keys::DAEMON_SHED),
            quota_denials: snapshot.counter(keys::DAEMON_QUOTA_DENIALS),
            sessions_completed: snapshot.counter(keys::DAEMON_COMPLETED),
            sessions_rejected: snapshot.counter(keys::DAEMON_REJECTED),
            sessions_failed: snapshot.counter(keys::DAEMON_FAILED),
            batches: snapshot.counter(keys::DAEMON_BATCHES),
            batched_sessions: snapshot.counter(keys::DAEMON_BATCHED_SESSIONS),
            frames_read: snapshot.counter(keys::DAEMON_FRAMES_READ),
            frames_written: snapshot.counter(keys::DAEMON_FRAMES_WRITTEN),
            ticks: snapshot.counter(keys::DAEMON_TICKS),
        });
        report.hotpath = Some(HotpathSection {
            columns_built: snapshot.counter(keys::SELECTION_HOTPATH_COLUMNS),
            scratch_reuses: snapshot.counter(keys::SELECTION_HOTPATH_SCRATCH_REUSES),
            interned_iris: self.match_cache.interned_iris(),
            delta_attempts: snapshot.counter(keys::SELECTION_DELTA_ATTEMPTS),
            delta_incremental: snapshot.counter(keys::SELECTION_DELTA_INCREMENTAL),
            delta_full_recomposes: snapshot.counter(keys::SELECTION_DELTA_FULL),
            delta_activities_reranked: snapshot.counter(keys::SELECTION_DELTA_RERANKED),
        });
        // Checker counters are zero in ordinary runs (qasom-check fills
        // them in its own process); the section still rides along so
        // the report's top-level key set is stable across binaries.
        report.check = Some(CheckSection {
            schedules: snapshot.counter(keys::CHECK_SCHEDULES),
            steps: snapshot.counter(keys::CHECK_STEPS),
            deadlocks: snapshot.counter(keys::CHECK_DEADLOCKS),
            violations: snapshot.counter(keys::CHECK_VIOLATIONS),
            models: Vec::new(),
        });
        report.selection = Some(SelectionSection {
            runs: snapshot.counter(keys::SELECTION_RUNS),
            local_ranks: snapshot.counter(keys::SELECTION_LOCAL_RANKS),
            local_levels: snapshot.counter(keys::SELECTION_LOCAL_LEVELS),
            local_candidates: snapshot.counter(keys::SELECTION_LOCAL_CANDIDATES),
            levels_explored: snapshot.counter(keys::SELECTION_LEVELS_EXPLORED),
            utility_evaluations: snapshot.counter(keys::SELECTION_UTILITY_EVALS),
            repair_swaps: snapshot.counter(keys::SELECTION_REPAIR_SWAPS),
            pruned_candidates: snapshot.counter(keys::SELECTION_PRUNED),
            exact_fallbacks: snapshot.counter(keys::SELECTION_EXACT_FALLBACKS),
        });
        report.metrics = snapshot;
        report
    }

    /// Replaces the domain ontology: the registry is re-bound (the
    /// inverted capability index is rebuilt over the new concept
    /// hierarchy) and the semantic `MatchCache` invalidates lazily —
    /// every shard flushes on first use because the new ontology carries
    /// a fresh [`Ontology::stamp`]. Returns the new stamp.
    ///
    /// This is the purpose-built mutator behind
    /// [`crate::SharedEnvironment::reload_ontology`]; daemon code uses
    /// it instead of reaching for a raw `with_mut` closure.
    pub fn reload_ontology(&mut self, ontology: Ontology) -> u64 {
        self.perturbations += 1;
        let ontology = Arc::new(ontology);
        let stamp = ontology.stamp();
        Arc::make_mut(&mut self.registry).bind_ontology(Arc::clone(&ontology));
        self.ontology = ontology;
        stamp
    }

    /// Publishes a service: registers the description and deploys its
    /// synthetic behaviour. With a journal attached the registration is
    /// WAL-journaled (and may trigger a checkpoint) before returning.
    pub fn deploy(
        &mut self,
        description: ServiceDescription,
        behaviour: SyntheticService,
    ) -> ServiceId {
        let registry = Arc::make_mut(&mut self.registry);
        let id = registry.register(description);
        if let Some(journal) = &mut self.journal {
            let before = journal.stats();
            let outcome = match registry.get(id) {
                Some(desc) => journal.record_registered(id, desc),
                None => Ok(()),
            }
            .and_then(|()| journal.maybe_checkpoint(registry).map(|_| ()));
            let after = journal.stats();
            self.settle_journal(before, after, outcome);
        }
        self.runtime.deploy(id, behaviour);
        id
    }

    /// Removes a service (provider departure / churn). Journaled like
    /// [`Environment::deploy`] when the service was live.
    pub fn undeploy(&mut self, id: ServiceId) {
        let registry = Arc::make_mut(&mut self.registry);
        let removed = registry.deregister(id).is_some();
        if removed {
            if let Some(journal) = &mut self.journal {
                let before = journal.stats();
                let outcome = journal
                    .record_deregistered(id)
                    .and_then(|()| journal.maybe_checkpoint(registry).map(|_| ()));
                let after = journal.stats();
                self.settle_journal(before, after, outcome);
            }
        }
        self.runtime.undeploy(&id);
    }

    /// Mirrors journal counter movement into the recorder and detaches
    /// the journal on its first I/O failure (in-memory state and store
    /// would otherwise diverge silently).
    fn settle_journal(
        &mut self,
        before: PersistStats,
        after: PersistStats,
        outcome: Result<(), qasom_registry::persist::PersistError>,
    ) {
        if let Some(rec) = &self.recorder {
            rec.incr(keys::PERSIST_WAL_APPENDS, after.appends - before.appends);
            rec.incr(keys::PERSIST_WAL_BYTES, after.wal_bytes - before.wal_bytes);
            rec.incr(
                keys::PERSIST_CHECKPOINTS,
                after.checkpoints - before.checkpoints,
            );
            rec.incr(
                keys::PERSIST_REPLAY_EVENTS,
                after.replayed_events - before.replayed_events,
            );
            rec.incr(
                keys::PERSIST_TORN_TAIL,
                after.torn_tails - before.torn_tails,
            );
            rec.incr(
                keys::PERSIST_SNAPSHOT_LOADS,
                after.snapshot_loads - before.snapshot_loads,
            );
        }
        if outcome.is_err() {
            if let Some(rec) = &self.recorder {
                rec.incr(keys::PERSIST_ERRORS, 1);
            }
            self.journal = None;
        }
    }

    /// Replaces the registry wholesale with one recovered from a
    /// persistence backend. The recovered instance is re-bound to this
    /// environment's own ontology `Arc` — ontology stamps are
    /// per-instance, so keeping the stamp the recovery path bound would
    /// silently disqualify the capability index and the match cache.
    /// Counts as a perturbation: cached composition levels are stale.
    pub fn adopt_registry(&mut self, mut registry: ServiceRegistry) {
        registry.bind_ontology(Arc::clone(&self.ontology));
        self.perturbations += 1;
        self.registry = Arc::new(registry);
    }

    /// Attaches the journal continuing the WAL the adopted registry was
    /// recovered from; recovery-time counter movement (replays, torn
    /// tails, snapshot loads) is mirrored into the recorder here.
    pub fn attach_journal(&mut self, journal: RegistryJournal) {
        let after = journal.stats();
        self.journal = Some(journal);
        self.settle_journal(PersistStats::default(), after, Ok(()));
    }

    /// Whether a journal is currently attached.
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Counter snapshot of the attached journal, if any.
    pub fn journal_stats(&self) -> Option<PersistStats> {
        self.journal.as_ref().map(RegistryJournal::stats)
    }

    /// Takes an explicit persistence checkpoint (snapshot + WAL
    /// truncation + event-log compaction); returns whether a journal
    /// was attached to checkpoint through.
    pub fn checkpoint_registry(&mut self) -> bool {
        let Some(mut journal) = self.journal.take() else {
            return false;
        };
        let before = journal.stats();
        let outcome = journal.checkpoint(Arc::make_mut(&mut self.registry));
        let after = journal.stats();
        self.journal = Some(journal);
        self.settle_journal(before, after, outcome);
        true
    }

    /// Re-attaches a synthetic behaviour to an already-registered
    /// service: the warm-restart path, where the registry rows were
    /// recovered from the WAL but runtime behaviours live only in
    /// memory and must be re-created by the host.
    pub fn attach_behaviour(&mut self, id: ServiceId, behaviour: SyntheticService) {
        self.runtime.deploy(id, behaviour);
    }

    /// Direct access to a deployed synthetic service (fault injection in
    /// tests and examples).
    pub fn runtime_mut(&mut self, id: ServiceId) -> Option<&mut SyntheticService> {
        self.runtime.get_mut(&id)
    }

    pub(crate) fn invoke(
        &mut self,
        id: ServiceId,
    ) -> Option<qasom_netsim::runtime::InvocationOutcome> {
        self.runtime.invoke(&id)
    }

    /// Registers a task class.
    pub fn register_task_class(&mut self, class: TaskClass) {
        self.tasks.insert(class);
    }

    /// Loads a QSD document (see [`qasom_registry::qsd`]) and deploys
    /// every described service with a faithful synthetic behaviour
    /// (delivers its advertised QoS exactly; tune via
    /// [`Environment::runtime_mut`]).
    ///
    /// Ingestion is analyzer-gated: providers publishing inconsistent
    /// QoS specifications (error-level diagnostics) are rejected with
    /// [`qasom_registry::qsd::QsdError::Rejected`] instead of being
    /// admitted and silently mis-ranked; warning-level diagnostics are
    /// recorded as [`MiddlewareEvent::AnalysisWarning`] events.
    ///
    /// # Errors
    ///
    /// Fails on malformed QSD or analyzer-rejected specifications.
    pub fn load_services(
        &mut self,
        qsd_document: &str,
    ) -> Result<Vec<ServiceId>, qasom_registry::qsd::QsdError> {
        let (descriptions, warnings) = qasom_registry::qsd::parse_with_diagnostics(
            qsd_document,
            &self.model,
            Some(&self.ontology),
        )?;
        for warning in warnings {
            self.emit(MiddlewareEvent::AnalysisWarning {
                diagnostic: warning.to_string(),
            });
        }
        Ok(descriptions
            .into_iter()
            .map(|desc| {
                let nominal = desc.qos().clone();
                self.deploy(desc, SyntheticService::new(nominal))
            })
            .collect())
    }

    /// Loads a `<taskclasses>` document (see
    /// [`TaskClassRepository::from_xml`]) into the repository, returning
    /// the number of classes added.
    ///
    /// # Errors
    ///
    /// Fails on malformed XML or invalid embedded processes.
    pub fn load_task_classes(
        &mut self,
        xml_document: &str,
    ) -> Result<usize, qasom_task::bpel::BpelError> {
        let repo = TaskClassRepository::from_xml(xml_document)?;
        let mut count = 0;
        for class in repo.iter() {
            self.tasks.insert(class.clone());
            count += 1;
        }
        Ok(count)
    }

    /// Publishes the infrastructure-layer QoS of the path towards a
    /// hosting node (network latency, packet loss, …). Subsequent
    /// discovery perceives services on that host through the end-to-end
    /// rules, so degraded paths degrade candidates before selection even
    /// runs.
    pub fn set_infrastructure(&mut self, host: u64, qos: QosVector) {
        self.perturbations += 1;
        self.infra.insert(host, qos);
    }

    /// The currently published infrastructure QoS towards a host.
    pub fn infrastructure(&self, host: u64) -> Option<&QosVector> {
        self.infra.get(&host)
    }

    /// Removes the infrastructure information of a host.
    pub fn clear_infrastructure(&mut self, host: u64) {
        self.perturbations += 1;
        self.infra.remove(&host);
    }

    /// The end-to-end rule system used to perceive service QoS through
    /// infrastructure QoS.
    pub fn end_to_end_mut(&mut self) -> &mut EndToEnd {
        // Handing out `&mut` counts as a perturbation unconditionally: the
        // borrow checker cannot see whether the caller actually mutates.
        self.perturbations += 1;
        &mut self.end_to_end
    }

    /// The SLA record of a service (created lazily at first delivery).
    pub fn sla(&self, id: ServiceId) -> Option<&qasom_qos::Sla> {
        self.slas.get(&id)
    }

    /// Records a delivery (or failure) against the service's SLA, which
    /// is derived from its advertised QoS with the configured tolerance
    /// on first use.
    pub(crate) fn record_delivery(&mut self, id: ServiceId, delivered: Option<&QosVector>) {
        let Some(desc) = self.registry.get(id) else {
            return;
        };
        let sla = self.slas.entry(id).or_insert_with(|| {
            // Feedback-derived properties (Reputation) are written into
            // advertisements by the middleware itself and never appear in
            // deliveries — they must not become contract terms.
            let agreed: QosVector = desc
                .qos()
                .iter()
                .filter(|&(p, _)| self.model.def(p).category() != qasom_qos::Category::Reputation)
                .collect();
            qasom_qos::Sla::from_agreed(&self.model, &agreed, self.config.sla_tolerance)
        });
        match delivered {
            Some(qos) => {
                sla.record(qos);
            }
            None => sla.record_failure(),
        }
    }

    /// Reputation feedback: re-advertises every SLA-tracked service's
    /// `Reputation` as `5 × compliance` (the standard model's 0–5 scale),
    /// so chronically breaching providers sink in future selections.
    /// Returns the number of services updated.
    pub fn apply_reputation_feedback(&mut self) -> usize {
        let Some(reputation) = self.model.property("Reputation") else {
            return 0;
        };
        let mut updated = 0;
        for (&id, sla) in &self.slas {
            if sla.checks() == 0 {
                continue;
            }
            if let Some(desc) = Arc::make_mut(&mut self.registry).get_mut(id) {
                desc.qos_mut().set(reputation, 5.0 * sla.compliance());
                updated += 1;
            }
        }
        if updated > 0 {
            // Re-advertisement mutates descriptions in place, invisible to
            // the registry event log.
            self.perturbations += 1;
        }
        updated
    }

    /// QoS-aware discovery for one activity: the candidate set `S_i`.
    ///
    /// Discovery is white-box aware (a service may qualify through one of
    /// its conversation operations) and *end-to-end*: when the hosting
    /// node's infrastructure QoS is known, the candidate's QoS is the
    /// user-perceived one (service QoS degraded by the path).
    pub fn discover(&self, activity: &Activity) -> Vec<ServiceCandidate> {
        let mut discovery = Discovery::with_cache(&self.ontology, &self.model, &self.match_cache);
        if let Some(rec) = &self.recorder {
            discovery = discovery.with_recorder(rec.as_ref());
        }
        discovery
            .discover(
                &self.registry,
                &DiscoveryQuery::new(activity).white_box(true),
            )
            .into_iter()
            .filter_map(|c| {
                let desc = self.registry.get(c.service)?;
                let qos = match desc.host().and_then(|h| self.infra.get(&h)) {
                    Some(infra) => self.end_to_end.perceive(&c.effective_qos, infra),
                    None => c.effective_qos,
                };
                Some(ServiceCandidate::new(c.service, qos))
            })
            .collect()
    }

    /// Whether at least one discoverable, deployed service can serve the
    /// activity — the realisability check of behavioural adaptation.
    pub(crate) fn realisable(&self, activity: &Activity) -> bool {
        !self.discover(activity).is_empty()
    }

    /// Runs the static analyzer over a request without composing: the
    /// full pre-selection validation pass (task structure, QoS
    /// dimensional analysis, constraint satisfiability, vocabulary
    /// alignment, ontology sanity).
    pub fn analyze(&self, request: &UserRequest) -> Vec<qasom_analysis::Diagnostic> {
        let approach = match request.aggregation_approach() {
            qasom_selection::AggregationApproach::Pessimistic => ApproachKind::Pessimistic,
            qasom_selection::AggregationApproach::Optimistic => ApproachKind::Optimistic,
            qasom_selection::AggregationApproach::MeanValue => ApproachKind::MeanValue,
        };
        let spec = RequestSpec {
            task: request.task(),
            constraints: request.raw_constraints(),
            weights: request.raw_weights(),
            approach,
        };
        Analyzer::new(&self.model)
            .with_ontology(&self.ontology)
            .check_request(&spec)
    }

    /// Runs the composition pipeline: static analysis of the request,
    /// then discovery per activity, then QASSA. Error-level diagnostics
    /// reject the request before discovery runs
    /// ([`ComposeError::Rejected`]); warnings are carried on the
    /// returned composition
    /// ([`ExecutableComposition::warnings`]).
    ///
    /// # Errors
    ///
    /// Fails when the analyzer rejects the request, an activity has no
    /// candidate, or the request's QoS names are unknown.
    pub fn compose(&self, request: &UserRequest) -> Result<ExecutableComposition, ComposeError> {
        let (errors, warnings) = qasom_analysis::partition(self.analyze(request));
        if !errors.is_empty() {
            return Err(ComposeError::Rejected(errors));
        }
        let constraints = request.constraints(&self.model)?;
        let preferences = request.preferences(&self.model)?;
        let mut composition = self.compose_task(
            request.task().clone(),
            constraints,
            preferences,
            request.aggregation_approach(),
        )?;
        composition.warnings = warnings;
        Ok(composition)
    }

    /// Composition from already-resolved QoS parts (also used when
    /// behavioural adaptation re-composes an alternative behaviour).
    pub(crate) fn compose_task(
        &self,
        task: qasom_task::UserTask,
        constraints: qasom_qos::ConstraintSet,
        preferences: qasom_qos::Preferences,
        approach: qasom_selection::AggregationApproach,
    ) -> Result<ExecutableComposition, ComposeError> {
        self.compose_task_with(task, constraints, preferences, approach, false)
    }

    /// Re-runs discovery and selection for an existing composition's task
    /// and QoS context, but reasons on *monitored* QoS where delivery
    /// history exists instead of trusting advertisements — the
    /// re-selection step of QoS-driven adaptation.
    ///
    /// Delta-first: when the composition's cached local-phase levels are
    /// still trustworthy (same perturbation stamp, registry churn fully
    /// replayable from the composition's event cursor), only the
    /// activities actually touched by churn or delivery history are
    /// re-discovered and re-ranked; the rest reuse their cached level
    /// hierarchies and the global phase re-runs over the mix. The result
    /// is identical to [`Environment::recompose_full`] — the local phase
    /// is a pure function of each activity's candidate set — but skips
    /// the discovery and clustering work of untouched activities.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn recompose(
        &self,
        composition: &ExecutableComposition,
    ) -> Result<ExecutableComposition, ComposeError> {
        if let Some(rec) = &self.recorder {
            rec.incr(keys::SELECTION_DELTA_ATTEMPTS, 1);
        }
        if let Some(result) = self.recompose_delta(composition) {
            return result;
        }
        if let Some(rec) = &self.recorder {
            rec.incr(keys::SELECTION_DELTA_FULL, 1);
        }
        self.recompose_full(composition)
    }

    /// Full re-selection: discovery and local ranking re-run for every
    /// activity. This is the oracle [`Environment::recompose`] must agree
    /// with (and its fallback whenever delta guards trip).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Environment::compose`].
    pub fn recompose_full(
        &self,
        composition: &ExecutableComposition,
    ) -> Result<ExecutableComposition, ComposeError> {
        self.compose_task_with(
            composition.task().clone(),
            composition.constraints().clone(),
            composition.preferences().clone(),
            composition.approach(),
            true,
        )
    }

    /// The delta path of [`Environment::recompose`]: `None` means a guard
    /// tripped and the caller must fall back to the full oracle.
    fn recompose_delta(
        &self,
        composition: &ExecutableComposition,
    ) -> Option<Result<ExecutableComposition, ComposeError>> {
        let task = composition.task();
        let levels = &composition.outcome().levels;
        // Guard 1: the composition carries no reusable levels (produced by
        // a baseline or a borrowed-levels run) or they do not line up with
        // the task.
        if levels.len() != task.activity_count() {
            return None;
        }
        // Guard 2: non-churn state moved (infrastructure QoS, end-to-end
        // rules, reputation, ontology) — cached levels reflect a perception
        // of the environment that no longer holds.
        if composition.perturbations != self.perturbations {
            return None;
        }
        // Guard 3: the registry compacted churn away before we replayed
        // it — a snapshot response means incremental replay is
        // impossible, so fall back to the full oracle.
        let events = match self.registry.sync_from(composition.registry_cursor) {
            SyncResponse::Delta(events) => events,
            SyncResponse::Snapshot(_) => return None,
        };

        let activities: Vec<&Activity> = task.activities().map(|a| a.activity()).collect();
        let mut affected = vec![false; activities.len()];

        // Delivery history: full recompose overlays monitored QoS onto
        // every candidate, so any activity holding an observed service must
        // re-rank. (For the rest the overlay is the identity.)
        let observed = self.monitor.observed_services();
        if !observed.is_empty() {
            for (i, level) in levels.iter().enumerate() {
                if level
                    .iter_best_first()
                    .any(|r| observed.binary_search(&r.candidate().id()).is_ok())
                {
                    affected[i] = true;
                }
            }
        }

        // Churn since compose time. Departures matter where the service was
        // actually a candidate (levels are complete: the local phase ranks
        // every discovered candidate). Arrivals are mapped conservatively —
        // a semantic profile/operation match without the I/O-compatibility
        // filter — so the affected set is a superset of the true one;
        // over-marking costs a redundant re-rank, never a wrong result.
        for event in events {
            match *event {
                RegistryEvent::Deregistered(id) => {
                    for (i, level) in levels.iter().enumerate() {
                        if !affected[i] && level.iter_best_first().any(|r| r.candidate().id() == id)
                        {
                            affected[i] = true;
                        }
                    }
                }
                RegistryEvent::Registered(id) => {
                    // A service registered and already gone again never
                    // changes the current candidate sets.
                    let Some(desc) = self.registry.get(id) else {
                        continue;
                    };
                    for (i, activity) in activities.iter().enumerate() {
                        if !affected[i] && self.could_serve(activity, desc) {
                            affected[i] = true;
                        }
                    }
                }
            }
        }

        let reranked = affected.iter().filter(|&&a| a).count() as u64;
        let task = task.clone();
        // Candidates stay empty: the global phase is levels-driven, so
        // unaffected activities cost neither a discovery pass nor a pool
        // clone.
        let problem = SelectionProblem::new(&task)
            .with_constraints(composition.constraints().clone())
            .with_preferences(composition.preferences().clone())
            .with_approach(composition.approach());
        let properties = problem.properties();

        let mut mixed: Vec<Arc<qasom_selection::QosLevels>> = Vec::with_capacity(activities.len());
        for (i, activity) in activities.iter().enumerate() {
            if affected[i] {
                let cands = match self.discover_for_selection(activity, true) {
                    Ok(c) => c,
                    Err(e) => return Some(Err(e)),
                };
                mixed.push(Arc::new(self.config.qassa.local.rank(
                    &self.model,
                    &cands,
                    &properties,
                    problem.preferences(),
                )));
            } else {
                mixed.push(Arc::clone(&levels[i]));
            }
        }

        let mut qassa = Qassa::with_config(&self.model, self.config.qassa);
        if let Some(rec) = &self.recorder {
            qassa = qassa.with_recorder(rec.as_ref());
        }
        let outcome = match qassa.select_with_shared_levels(&problem, &mixed) {
            Ok(outcome) => outcome,
            Err(e) => return Some(Err(e.into())),
        };
        drop(problem);

        if let Some(rec) = &self.recorder {
            rec.incr(keys::SELECTION_DELTA_INCREMENTAL, 1);
            rec.incr(keys::SELECTION_DELTA_RERANKED, reranked);
        }
        self.emit(MiddlewareEvent::Composed {
            task: task.name().to_owned(),
            feasible: outcome.feasible,
            levels_explored: outcome.levels_explored,
        });

        Some(Ok(ExecutableComposition {
            registry_cursor: self.registry.sync_cursor(),
            perturbations: self.perturbations,
            task,
            outcome,
            constraints: composition.constraints().clone(),
            preferences: composition.preferences().clone(),
            approach: composition.approach(),
            warnings: Vec::new(),
        }))
    }

    /// Conservative reachability of a (newly registered) service for an
    /// activity: a semantic profile or operation match, skipping the
    /// I/O-compatibility filter real discovery applies. A superset of
    /// discovery's verdict by construction.
    fn could_serve(&self, activity: &Activity, desc: &ServiceDescription) -> bool {
        let discovery = Discovery::with_cache(&self.ontology, &self.model, &self.match_cache);
        discovery
            .match_functions(activity.function(), desc.function())
            .is_usable()
            || desc.operations().iter().any(|op| {
                discovery
                    .match_functions(activity.function(), op.function())
                    .is_usable()
            })
    }

    /// Discovery for one activity as selection will see it: monitored QoS
    /// overlaid where delivery history exists (when `use_monitor`), and a
    /// [`ComposeError::NoServiceFor`] when nothing qualifies. The shared
    /// per-activity step of full composition and delta re-selection.
    fn discover_for_selection(
        &self,
        activity: &Activity,
        use_monitor: bool,
    ) -> Result<Vec<ServiceCandidate>, ComposeError> {
        let mut found = self.discover(activity);
        if use_monitor {
            found = found
                .into_iter()
                .map(|c| match self.monitor.estimate(c.id()) {
                    Some(mut observed) => {
                        // Properties never observed keep their
                        // (perceived) advertisement.
                        for (p, v) in c.qos().iter() {
                            if !observed.contains(p) {
                                observed.set(p, v);
                            }
                        }
                        ServiceCandidate::new(c.id(), observed)
                    }
                    None => c,
                })
                .collect();
        }
        if found.is_empty() {
            return Err(ComposeError::NoServiceFor {
                activity: activity.name().to_owned(),
            });
        }
        Ok(found)
    }

    fn compose_task_with(
        &self,
        task: qasom_task::UserTask,
        constraints: qasom_qos::ConstraintSet,
        preferences: qasom_qos::Preferences,
        approach: qasom_selection::AggregationApproach,
        use_monitor: bool,
    ) -> Result<ExecutableComposition, ComposeError> {
        // Stamp the registry cursor before discovery: churn between the
        // stamp and discovery is replayed (redundantly but soundly) by a
        // later delta re-selection instead of being missed.
        let registry_cursor = self.registry.sync_cursor();
        let activities: Vec<&Activity> = task.activities().map(|a| a.activity()).collect();

        // Per-activity discovery is independent, so fan it out when the
        // `parallel` feature is on; errors are still surfaced in activity
        // order so the first missing activity wins deterministically.
        #[cfg(feature = "parallel")]
        let gathered: Vec<Result<Vec<ServiceCandidate>, ComposeError>> = {
            use rayon::prelude::*;
            activities
                .par_iter()
                .map(|a| self.discover_for_selection(a, use_monitor))
                .collect()
        };
        #[cfg(not(feature = "parallel"))]
        let gathered: Vec<Result<Vec<ServiceCandidate>, ComposeError>> = activities
            .iter()
            .map(|a| self.discover_for_selection(a, use_monitor))
            .collect();

        let mut candidates = Vec::with_capacity(gathered.len());
        for found in gathered {
            candidates.push(found?);
        }

        let problem = SelectionProblem::new(&task)
            .with_candidates(candidates)
            .with_constraints(constraints.clone())
            .with_preferences(preferences.clone())
            .with_approach(approach);
        let mut qassa = Qassa::with_config(&self.model, self.config.qassa);
        if let Some(rec) = &self.recorder {
            qassa = qassa.with_recorder(rec.as_ref());
        }
        #[cfg(feature = "parallel")]
        let outcome = qassa.select_parallel(&problem)?;
        #[cfg(not(feature = "parallel"))]
        let outcome = qassa.select(&problem)?;

        self.emit(MiddlewareEvent::Composed {
            task: task.name().to_owned(),
            feasible: outcome.feasible,
            levels_explored: outcome.levels_explored,
        });

        Ok(ExecutableComposition {
            task,
            outcome,
            constraints,
            preferences,
            approach,
            warnings: Vec::new(),
            registry_cursor,
            perturbations: self.perturbations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_netsim::runtime::SyntheticService;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::Unit;
    use qasom_task::{TaskNode, UserTask};

    fn env() -> Environment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        b.concept("B");
        Environment::new(QosModel::standard(), b.build().unwrap(), 7)
    }

    fn deploy(env: &mut Environment, name: &str, function: &str, rt_ms: f64) -> ServiceId {
        let rt = env.model().property("ResponseTime").unwrap();
        let av = env.model().property("Availability").unwrap();
        let desc = ServiceDescription::new(name, function)
            .with_qos(rt, rt_ms)
            .with_qos(av, 0.99);
        let nominal = desc.qos().clone();
        env.deploy(desc, SyntheticService::new(nominal))
    }

    fn two_step_task() -> UserTask {
        UserTask::new(
            "t",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("first", "d#A")),
                TaskNode::activity(Activity::new("second", "d#B")),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn compose_selects_discovered_services() {
        let mut e = env();
        let log = crate::EventLog::new();
        e.subscribe(Arc::new(log.clone()));
        deploy(&mut e, "a1", "d#A", 50.0);
        deploy(&mut e, "a2", "d#A", 500.0);
        deploy(&mut e, "b1", "d#B", 60.0);
        let request = UserRequest::new(two_step_task())
            .constraint("ResponseTime", 1.0, Unit::Seconds)
            .unwrap();
        let comp = e.compose(&request).unwrap();
        assert!(comp.outcome().feasible);
        assert_eq!(comp.outcome().assignment.len(), 2);
        assert!(matches!(
            log.events()[0],
            MiddlewareEvent::Composed { feasible: true, .. }
        ));
    }

    #[test]
    fn builder_configures_recorder_sinks_and_retention() {
        use qasom_obs::MemoryRecorder;

        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        b.concept("B");
        let recorder = Arc::new(MemoryRecorder::new());
        let log = crate::EventLog::new();
        let bounded = crate::EventLog::bounded(1);
        let mut e = EnvironmentConfig::builder()
            .seed(7)
            .retention(1)
            .recorder(Arc::clone(&recorder) as Arc<dyn qasom_obs::Recorder>)
            .sink(Arc::new(log.clone()))
            .sink(Arc::new(bounded.clone()))
            .build(QosModel::standard(), b.build().unwrap());
        assert_eq!(e.config().seed, 7);
        deploy(&mut e, "a1", "d#A", 50.0);
        deploy(&mut e, "b1", "d#B", 60.0);
        let comp = e.compose(&UserRequest::new(two_step_task())).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);

        // The sink saw the full stream: Composed, 2 × Invoked, Completed.
        assert_eq!(log.len(), 4);
        // The bounded sink retains only the most recent event.
        let retained = bounded.events();
        assert_eq!(retained.len(), 1);
        assert!(matches!(retained[0], MiddlewareEvent::Completed { .. }));

        // The recorder counted per-type events and the pipeline phases.
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(qasom_obs::keys::EVENT_COMPOSED), 1);
        assert_eq!(snap.counter(qasom_obs::keys::EVENT_INVOKED), 2);
        assert_eq!(snap.counter(qasom_obs::keys::EVENT_COMPLETED), 1);
        assert_eq!(snap.counter(qasom_obs::keys::SELECTION_RUNS), 1);
        assert!(snap.counter(qasom_obs::keys::DISCOVERY_INDEXED) >= 2);

        // And the derived report sections reflect those counters.
        let rr = e.run_report("unit");
        assert_eq!(rr.seed, 7);
        let selection = rr.selection.expect("selection section");
        assert_eq!(selection.runs, 1);
        let discovery = rr.discovery.expect("discovery section");
        assert!(discovery.indexed_queries >= 2);
    }

    #[test]
    fn recorder_does_not_change_composition_outcomes() {
        use qasom_obs::MemoryRecorder;

        let run = |recorded: bool| {
            let mut e = env();
            if recorded {
                e.set_recorder(Arc::new(MemoryRecorder::new()));
            }
            deploy(&mut e, "a1", "d#A", 50.0);
            deploy(&mut e, "a2", "d#A", 500.0);
            deploy(&mut e, "b1", "d#B", 60.0);
            let request = UserRequest::new(two_step_task())
                .constraint("ResponseTime", 1.0, Unit::Seconds)
                .unwrap();
            let comp = e.compose(&request).unwrap();
            (
                comp.outcome().feasible,
                comp.outcome().levels_explored,
                comp.outcome()
                    .assignment
                    .iter()
                    .map(|c| c.id())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn compose_fails_without_a_candidate() {
        let mut e = env();
        deploy(&mut e, "a1", "d#A", 50.0);
        let request = UserRequest::new(two_step_task());
        assert_eq!(
            e.compose(&request).err(),
            Some(ComposeError::NoServiceFor {
                activity: "second".to_owned()
            })
        );
    }

    #[test]
    fn undeployed_services_are_not_discovered() {
        let mut e = env();
        let id = deploy(&mut e, "a1", "d#A", 50.0);
        e.undeploy(id);
        assert!(e.discover(&Activity::new("x", "d#A")).is_empty());
    }

    #[test]
    fn sla_tracks_deliveries_and_feeds_reputation() {
        let mut e = env();
        let rt = e.model().property("ResponseTime").unwrap();
        let rep = e.model().property("Reputation").unwrap();
        // Advertises 50 ms but delivers 200 ms (beyond the 20 % default
        // tolerance).
        let liar = {
            let desc = describe(&e, "liar", "d#A", 50.0);
            let mut delivered = desc.qos().clone();
            delivered.set(rt, 200.0);
            e.deploy(desc, SyntheticService::new(delivered))
        };
        let honest = deploy(&mut e, "honest", "d#B", 50.0);

        let req = UserRequest::new(two_step_task());
        let comp = e.compose(&req).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);

        let liar_sla = e.sla(liar).expect("delivery recorded");
        assert_eq!(liar_sla.checks(), 1);
        assert_eq!(liar_sla.breaches(), 1);
        let honest_sla = e.sla(honest).expect("delivery recorded");
        assert_eq!(honest_sla.compliance(), 1.0);

        let updated = e.apply_reputation_feedback();
        assert_eq!(updated, 2);
        assert_eq!(e.registry().get(liar).unwrap().qos().get(rep), Some(0.0));
        assert_eq!(e.registry().get(honest).unwrap().qos().get(rep), Some(5.0));
    }

    fn describe(e: &Environment, name: &str, function: &str, rt_ms: f64) -> ServiceDescription {
        let rt = e.model().property("ResponseTime").unwrap();
        let av = e.model().property("Availability").unwrap();
        ServiceDescription::new(name, function)
            .with_qos(rt, rt_ms)
            .with_qos(av, 0.99)
    }

    #[test]
    fn reputation_feedback_does_not_poison_future_slas() {
        let mut e = env();
        let rep = e.model().property("Reputation").unwrap();
        // An honest service; reputation feedback writes Reputation into
        // its advertisement between two execution rounds.
        let id = deploy(&mut e, "honest", "d#A", 50.0);
        let task = UserTask::new("t", TaskNode::activity(Activity::new("a", "d#A"))).unwrap();
        let comp = e.compose(&UserRequest::new(task.clone())).unwrap();
        assert!(e.execute(comp).unwrap().success);
        assert_eq!(e.apply_reputation_feedback(), 1);
        assert_eq!(e.registry().get(id).unwrap().qos().get(rep), Some(5.0));

        // A new SLA created after feedback (fresh environment state for
        // the SLA map): re-deploy the same advertisement.
        let desc = e.registry().get(id).unwrap().clone();
        let nominal_without_rep: qasom_qos::QosVector =
            desc.qos().iter().filter(|&(p, _)| p != rep).collect();
        let id2 = e.deploy(
            desc.clone().with_qos_vector(desc.qos().clone()),
            SyntheticService::new(nominal_without_rep),
        );
        let comp = e.compose(&UserRequest::new(task)).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);
        // Whichever service served, no SLA may count the feedback-derived
        // Reputation as a breached contract term.
        for sid in [id, id2] {
            if let Some(sla) = e.sla(sid) {
                assert_eq!(
                    sla.breaches(),
                    0,
                    "feedback-derived Reputation must not breach SLAs"
                );
            }
        }
    }

    #[test]
    fn recompose_uses_monitored_history() {
        let mut e = env();
        let rt = e.model().property("ResponseTime").unwrap();
        // Advertised-fast-but-actually-slow vs advertised-slow-but-fine.
        let liar = deploy(&mut e, "liar", "d#A", 10.0);
        let honest = deploy(&mut e, "honest", "d#A", 80.0);
        deploy(&mut e, "b1", "d#B", 50.0);
        let request = UserRequest::new(two_step_task())
            .constraint("ResponseTime", 0.2, Unit::Seconds)
            .unwrap();
        let comp = e.compose(&request).unwrap();
        assert_eq!(comp.outcome().assignment[0].id(), liar);

        // The monitor learns the truth.
        for _ in 0..5 {
            let mut q = qasom_qos::QosVector::new();
            q.set(rt, 500.0);
            e.monitor.observe(liar, &q);
        }
        let recomposed = e.recompose(&comp).unwrap();
        assert_eq!(recomposed.outcome().assignment[0].id(), honest);
    }

    #[test]
    fn recompose_takes_the_delta_path_and_falls_back_on_perturbation() {
        use qasom_obs::MemoryRecorder;
        let mut e = env();
        let recorder = Arc::new(MemoryRecorder::new());
        e.set_recorder(Arc::clone(&recorder) as Arc<dyn qasom_obs::Recorder>);
        deploy(&mut e, "a1", "d#A", 50.0);
        deploy(&mut e, "b1", "d#B", 60.0);
        let comp = e.compose(&UserRequest::new(two_step_task())).unwrap();

        // Churn touching only "first" (d#A): delta re-ranks one activity
        // and reuses the cached levels of the other.
        deploy(&mut e, "a2", "d#A", 40.0);
        let recomposed = e.recompose(&comp).unwrap();
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::SELECTION_DELTA_ATTEMPTS), 1);
        assert_eq!(snap.counter(keys::SELECTION_DELTA_INCREMENTAL), 1);
        assert_eq!(snap.counter(keys::SELECTION_DELTA_FULL), 0);
        assert_eq!(snap.counter(keys::SELECTION_DELTA_RERANKED), 1);
        // …and agrees with the full oracle.
        let full = e.recompose_full(&comp).unwrap();
        assert_eq!(recomposed.outcome().assignment, full.outcome().assignment);
        assert_eq!(recomposed.outcome().ranked, full.outcome().ranked);

        // A non-churn perturbation (infrastructure QoS) disqualifies the
        // cached levels: the next recompose is a full one.
        e.set_infrastructure(9, qasom_qos::QosVector::new());
        e.recompose(&comp).unwrap();
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.counter(keys::SELECTION_DELTA_ATTEMPTS), 2);
        assert_eq!(snap.counter(keys::SELECTION_DELTA_INCREMENTAL), 1);
        assert_eq!(snap.counter(keys::SELECTION_DELTA_FULL), 1);
    }

    #[test]
    fn delta_recompose_survives_departure_of_the_chosen_service() {
        let mut e = env();
        let a1 = deploy(&mut e, "a1", "d#A", 50.0);
        deploy(&mut e, "a2", "d#A", 500.0);
        deploy(&mut e, "b1", "d#B", 60.0);
        let request = UserRequest::new(two_step_task())
            .constraint("ResponseTime", 1.0, Unit::Seconds)
            .unwrap();
        let comp = e.compose(&request).unwrap();
        assert_eq!(comp.outcome().assignment[0].id(), a1);

        e.undeploy(a1);
        let recomposed = e.recompose(&comp).unwrap();
        assert_ne!(recomposed.outcome().assignment[0].id(), a1);
        let full = e.recompose_full(&comp).unwrap();
        assert_eq!(recomposed.outcome().assignment, full.outcome().assignment);
    }

    #[test]
    fn load_services_from_qsd() {
        let mut e = env();
        let ids = e
            .load_services(
                r#"<services>
                     <service name="a1" function="d#A">
                       <qos property="ResponseTime" value="0.05" unit="s"/>
                     </service>
                     <service name="b1" function="d#B">
                       <qos property="ResponseTime" value="60" unit="ms"/>
                     </service>
                   </services>"#,
            )
            .unwrap();
        assert_eq!(ids.len(), 2);
        let rt = e.model().property("ResponseTime").unwrap();
        assert_eq!(e.registry().get(ids[0]).unwrap().qos().get(rt), Some(50.0));
        // The loaded services are immediately usable end to end.
        let request = UserRequest::new(two_step_task());
        let comp = e.compose(&request).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);
    }

    #[test]
    fn load_task_classes_from_xml() {
        let mut e = env();
        let n = e
            .load_task_classes(
                r#"<taskclasses>
                     <taskclass name="demo">
                       <process name="v1"><invoke name="a" function="d#A"/></process>
                       <process name="v2"><invoke name="b" function="d#B"/></process>
                     </taskclass>
                   </taskclasses>"#,
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(e.task_repository().alternatives("v1").count(), 1);
    }

    #[test]
    fn infrastructure_degrades_perceived_candidates() {
        let mut e = env();
        let rt = e.model().property("ResponseTime").unwrap();
        let lat = e.model().property("NetworkLatency").unwrap();
        // Two identical services on different hosts; host 2's path is slow.
        let mk = |host: u64| {
            ServiceDescription::new(format!("svc-{host}"), "d#A")
                .with_qos(rt, 100.0)
                .with_host(host)
        };
        for host in [1, 2] {
            let d = mk(host);
            let nominal = d.qos().clone();
            e.deploy(d, SyntheticService::new(nominal));
        }
        let mut infra = qasom_qos::QosVector::new();
        infra.set(lat, 200.0);
        e.set_infrastructure(2, infra);

        let found = e.discover(&Activity::new("x", "d#A"));
        assert_eq!(found.len(), 2);
        let by_host: std::collections::HashMap<_, _> = found
            .iter()
            .map(|c| {
                (
                    e.registry().get(c.id()).unwrap().host().unwrap(),
                    c.qos().get(rt).unwrap(),
                )
            })
            .collect();
        assert_eq!(by_host[&1], 100.0);
        assert_eq!(by_host[&2], 500.0); // 100 + 2 × 200 round trip
                                        // Selection will therefore prefer host 1.
        e.clear_infrastructure(2);
        let found = e.discover(&Activity::new("x", "d#A"));
        assert!(found.iter().all(|c| c.qos().get(rt) == Some(100.0)));
    }

    #[test]
    fn white_box_services_are_discovered_through_operations() {
        let mut e = env();
        let rt = e.model().property("ResponseTime").unwrap();
        let desc = ServiceDescription::new("kiosk", "misc#Multi")
            .with_qos(rt, 900.0)
            .with_operation(qasom_registry::Operation::new("fast-a", "d#A").with_qos(rt, 45.0));
        let nominal = desc.qos().clone();
        e.deploy(desc, SyntheticService::new(nominal));
        let found = e.discover(&Activity::new("x", "d#A"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].qos().get(rt), Some(45.0));
    }

    #[test]
    fn unknown_constraint_name_is_rejected_by_analysis() {
        let mut e = env();
        deploy(&mut e, "a1", "d#A", 50.0);
        deploy(&mut e, "b1", "d#B", 50.0);
        let request = UserRequest::new(two_step_task())
            .constraint("Bogus", 1.0, Unit::Dimensionless)
            .unwrap();
        match e.compose(&request) {
            Err(ComposeError::Rejected(diags)) => {
                assert!(diags.iter().any(|d| d.code.code() == "QA010"), "{diags:?}");
            }
            other => panic!("expected analysis rejection, got {other:?}"),
        }
    }

    #[test]
    fn analyzer_warnings_ride_on_the_composition() {
        let mut e = env();
        deploy(&mut e, "a1", "d#A", 50.0);
        // `misc#X` is not a concept of the `d` ontology: QA020 warning,
        // but composition still goes ahead (it still resolves by exact
        // IRI match).
        let rt = e.model().property("ResponseTime").unwrap();
        let desc = ServiceDescription::new("x1", "misc#X").with_qos(rt, 10.0);
        let nominal = desc.qos().clone();
        e.deploy(desc, SyntheticService::new(nominal));
        let task = UserTask::new(
            "t",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("first", "d#A")),
                TaskNode::activity(Activity::new("odd", "misc#X")),
            ]),
        )
        .unwrap();
        let comp = e.compose(&UserRequest::new(task)).unwrap();
        assert!(
            comp.warnings().iter().any(|d| d.code.code() == "QA020"),
            "{:?}",
            comp.warnings()
        );
    }

    #[test]
    fn inconsistent_qsd_is_rejected_with_diagnostics() {
        use qasom_registry::qsd::QsdError;
        let mut e = env();
        // Availability is a probability; 1.2 is out of range → QA030.
        let err = e
            .load_services(
                r#"<services>
                     <service name="liar" function="d#A">
                       <qos property="Availability" value="1.2"/>
                     </service>
                   </services>"#,
            )
            .unwrap_err();
        match err {
            QsdError::Rejected(diags) => {
                assert!(diags.iter().any(|d| d.code.code() == "QA030"), "{diags:?}");
            }
            other => panic!("expected analyzer rejection, got {other:?}"),
        }
        // Nothing was deployed.
        assert!(e.discover(&Activity::new("x", "d#A")).is_empty());
    }
}
