//! The execution engine: dynamic binding, monitoring, substitution and
//! behavioural adaptation at run time.

use std::collections::{HashMap, HashSet};
use std::fmt;

use qasom_adaptation::{BehaviouralAdapter, CompositionMonitor, Substitution, Violation};
use qasom_qos::{PropertyId, QosVector};
use qasom_registry::ServiceId;
use qasom_selection::Aggregator;
use qasom_task::{TaskNode, UserTask};

use crate::{ComposeError, Environment, ExecutableComposition, MiddlewareEvent};

/// One activity invocation, as recorded in the execution report.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    /// Activity name (in the behaviour that was executing at the time).
    pub activity: String,
    /// The invoked service.
    pub service: ServiceId,
    /// The delivered QoS (`None` for failed invocations).
    pub qos: Option<QosVector>,
}

/// Outcome of executing a composition.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Whether every planned activity was eventually served.
    pub success: bool,
    /// Name of the behaviour that actually completed (differs from the
    /// requested one after behavioural adaptation).
    pub final_task: String,
    /// Every invocation attempted, in order.
    pub invocations: Vec<InvocationRecord>,
    /// Number of service substitutions performed.
    pub substitutions: usize,
    /// Number of behavioural adaptations performed.
    pub behavioural_adaptations: usize,
    /// Constraint violations outstanding at completion (on believed QoS).
    pub violations: Vec<Violation>,
    /// Aggregated delivered QoS (observed values where available,
    /// advertised ones elsewhere).
    pub delivered: QosVector,
    /// Logical execution timeline derived from the task structure and
    /// the observed per-activity response times: sequential activities
    /// follow each other, parallel branches overlap, loop rounds repeat.
    pub timeline: Vec<TimelineEntry>,
}

/// One activity occurrence on the execution timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Activity name.
    pub activity: String,
    /// Logical start, in milliseconds from composition start.
    pub start_ms: f64,
    /// Logical end (`start + observed response time`).
    pub end_ms: f64,
}

/// Terminal execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionError {
    /// An activity could not be served and no adaptation remained.
    Abandoned {
        /// The activity that could not be served.
        activity: String,
    },
    /// Behavioural adaptation chose an alternative that then failed to
    /// compose.
    Recompose(ComposeError),
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::Abandoned { activity } => {
                write!(
                    f,
                    "activity {activity:?} could not be served by any strategy"
                )
            }
            ExecutionError::Recompose(e) => write!(f, "re-composition failed: {e}"),
        }
    }
}

impl std::error::Error for ExecutionError {}

impl From<ComposeError> for ExecutionError {
    fn from(e: ComposeError) -> Self {
        ExecutionError::Recompose(e)
    }
}

/// A relative schedule: entries `(activity index, start, end)` plus the
/// total makespan, all in milliseconds from the schedule's own origin.
struct Schedule {
    entries: Vec<(usize, f64, f64)>,
    duration: f64,
}

/// Builds the logical timeline of an executed task: observed response
/// times (`rt_of(activity index)`) laid out over the task structure.
/// Activities that never ran (skipped choice branches) produce no entry
/// and contribute no time.
fn build_timeline(task: &UserTask, rt_of: &dyn Fn(usize) -> Option<f64>) -> Schedule {
    fn walk(node: &TaskNode, idx: &mut usize, rt_of: &dyn Fn(usize) -> Option<f64>) -> Schedule {
        match node {
            TaskNode::Activity(_) => {
                let i = *idx;
                *idx += 1;
                match rt_of(i) {
                    Some(rt) => Schedule {
                        entries: vec![(i, 0.0, rt)],
                        duration: rt,
                    },
                    None => Schedule {
                        entries: Vec::new(),
                        duration: 0.0,
                    },
                }
            }
            TaskNode::Sequence(cs) => {
                let mut entries = Vec::new();
                let mut offset = 0.0;
                for c in cs {
                    let s = walk(c, idx, rt_of);
                    entries.extend(
                        s.entries
                            .into_iter()
                            .map(|(i, a, b)| (i, a + offset, b + offset)),
                    );
                    offset += s.duration;
                }
                Schedule {
                    entries,
                    duration: offset,
                }
            }
            TaskNode::Parallel(cs) => {
                let mut entries = Vec::new();
                let mut duration: f64 = 0.0;
                for c in cs {
                    let s = walk(c, idx, rt_of);
                    duration = duration.max(s.duration);
                    entries.extend(s.entries);
                }
                Schedule { entries, duration }
            }
            TaskNode::Choice(bs) => {
                // Only the branch that actually executed produces entries.
                let mut chosen = Schedule {
                    entries: Vec::new(),
                    duration: 0.0,
                };
                for (_, c) in bs {
                    let s = walk(c, idx, rt_of);
                    if !s.entries.is_empty() {
                        chosen = s;
                    }
                }
                chosen
            }
            TaskNode::Loop { body, bound } => {
                let rounds = (bound.expected().round() as u32).clamp(1, bound.max());
                let once = walk(body, idx, rt_of);
                let mut entries = Vec::new();
                for r in 0..rounds {
                    let shift = f64::from(r) * once.duration;
                    entries.extend(
                        once.entries
                            .iter()
                            .map(|&(i, a, b)| (i, a + shift, b + shift)),
                    );
                }
                Schedule {
                    entries,
                    duration: f64::from(rounds) * once.duration,
                }
            }
        }
    }
    let mut idx = 0;
    walk(task.root(), &mut idx, rt_of)
}

/// Deterministic execution order of a task: activity indices in the order
/// they run. Choices take their most probable branch (ties: first); loops
/// run `round(expected)` clamped to `[1, max]` times.
fn execution_order(task: &UserTask) -> Vec<usize> {
    fn walk(node: &TaskNode, emit: bool, idx: &mut usize, out: &mut Vec<usize>) {
        match node {
            TaskNode::Activity(_) => {
                if emit {
                    out.push(*idx);
                }
                *idx += 1;
            }
            TaskNode::Sequence(cs) | TaskNode::Parallel(cs) => {
                for c in cs {
                    walk(c, emit, idx, out);
                }
            }
            TaskNode::Choice(bs) => {
                // First maximal branch (ties go to the earliest one).
                let mut chosen = 0;
                for (i, (p, _)) in bs.iter().enumerate().skip(1) {
                    if *p > bs[chosen].0 {
                        chosen = i;
                    }
                }
                for (i, (_, c)) in bs.iter().enumerate() {
                    walk(c, emit && i == chosen, idx, out);
                }
            }
            TaskNode::Loop { body, bound } => {
                let rounds = (bound.expected().round() as u32).clamp(1, bound.max());
                let mut body_plan = Vec::new();
                let start_idx = *idx;
                walk(body, emit, idx, &mut body_plan);
                let _ = start_idx;
                if emit {
                    for _ in 1..rounds {
                        out.extend(body_plan.iter().copied());
                    }
                    out.extend(body_plan);
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut idx = 0;
    walk(task.root(), true, &mut idx, &mut out);
    out
}

impl Environment {
    /// Executes a composition to completion, adapting as needed.
    ///
    /// The engine invokes activities in execution order with *dynamic
    /// binding* (the best live candidate at invocation time). Delivered
    /// QoS feeds the global/proactive monitor; violations trigger
    /// *service substitution* of not-yet-executed activities, and
    /// repeated failures without substitutes escalate to *behavioural
    /// adaptation* through the task-class repository.
    ///
    /// # Errors
    ///
    /// Fails when an activity cannot be served by any strategy, or a
    /// behavioural adaptation cannot be re-composed.
    pub fn execute(
        &mut self,
        composition: ExecutableComposition,
    ) -> Result<ExecutionReport, ExecutionError> {
        let mut comp = composition;
        let mut invocations = Vec::new();
        let mut substitutions = 0usize;
        let mut adaptations = 0usize;
        // Observed QoS per executed activity *of the current behaviour*
        // (loops overwrite with the latest observation).
        let mut executed: HashMap<String, QosVector> = HashMap::new();
        // Activities already served in a *previous* behaviour, carried
        // over by behavioural adaptation: each is skipped exactly once
        // (loop re-invocations within a behaviour must still run).
        let mut carried_over: HashSet<String> = HashSet::new();

        'behaviour: loop {
            let task = comp.task.clone();
            let names: Vec<String> = task
                .activities()
                .map(|r| r.activity().name().to_owned())
                .collect();
            let bindings: Vec<ServiceId> = comp.outcome.assignment.iter().map(|c| c.id()).collect();
            let advertised: Vec<QosVector> = comp
                .outcome
                .assignment
                .iter()
                .map(|c| c.qos().clone())
                .collect();
            let mut cm = CompositionMonitor::new(
                task.clone(),
                bindings,
                advertised,
                comp.constraints.clone(),
                comp.approach,
            );

            let order = execution_order(&task);
            for pos in 0..order.len() {
                let idx = order[pos];
                let name = names[idx].clone();
                if carried_over.remove(&name) {
                    continue;
                }
                let mut tried: HashSet<ServiceId> = HashSet::new();
                let mut attempts = 0usize;
                loop {
                    if attempts >= self.config.max_attempts_per_activity {
                        match self.adapt_behaviour(
                            &mut comp,
                            &task,
                            &mut executed,
                            &mut carried_over,
                            &mut adaptations,
                            &name,
                        )? {
                            true => continue 'behaviour,
                            false => return Err(ExecutionError::Abandoned { activity: name }),
                        }
                    }
                    attempts += 1;

                    let Some(service) = self.dynamic_bind(&cm, &comp, idx, &tried) else {
                        // Nothing left to bind: escalate immediately.
                        match self.adapt_behaviour(
                            &mut comp,
                            &task,
                            &mut executed,
                            &mut carried_over,
                            &mut adaptations,
                            &name,
                        )? {
                            true => continue 'behaviour,
                            false => return Err(ExecutionError::Abandoned { activity: name }),
                        }
                    };
                    if service != cm.bindings()[idx] {
                        let from = cm.bindings()[idx];
                        let advertised_qos = comp.outcome.ranked[idx]
                            .iter()
                            .find(|c| c.id() == service)
                            .map(|c| c.qos().clone())
                            .unwrap_or_default();
                        cm.rebind(idx, service, advertised_qos);
                        substitutions += 1;
                        self.emit(MiddlewareEvent::Substituted {
                            activity: name.clone(),
                            from,
                            to: service,
                        });
                    }
                    tried.insert(service);

                    // A successful outcome always carries delivered QoS
                    // (`qos()` is `Some` iff `is_success()`), so matching
                    // on the QoS itself covers both checks at once.
                    match self.invoke(service).and_then(|o| o.qos().cloned()) {
                        Some(qos) => {
                            self.monitor.observe(service, &qos);
                            self.monitor.reset_failures(service);
                            self.record_delivery(service, Some(&qos));
                            self.emit(MiddlewareEvent::Invoked {
                                activity: name.clone(),
                                service,
                            });
                            invocations.push(InvocationRecord {
                                activity: name.clone(),
                                service,
                                qos: Some(qos.clone()),
                            });
                            executed.insert(name.clone(), qos);

                            // Global + proactive check, then pre-emptive
                            // substitution of activities that still have
                            // upcoming invocations (loop bodies included).
                            substitutions += self.check_and_substitute(
                                &mut cm,
                                &comp,
                                &order[pos + 1..],
                                &names,
                            );
                            break;
                        }
                        None => {
                            self.monitor.observe_failure(service);
                            self.record_delivery(service, None);
                            self.emit(MiddlewareEvent::InvocationFailed {
                                activity: name.clone(),
                                service,
                            });
                            invocations.push(InvocationRecord {
                                activity: name.clone(),
                                service,
                                qos: None,
                            });
                            // Loop: dynamic_bind will skip `tried`.
                        }
                    }
                }
            }

            // Every activity of this behaviour served.
            let delivered = self.delivered_qos(&cm, &executed, &names);
            let violations = cm.check(&self.model().clone(), &self.monitor);
            let timeline = {
                let rt_property = self.model().property("ResponseTime");
                let rt_of = |i: usize| -> Option<f64> {
                    let q = executed.get(&names[i])?;
                    Some(rt_property.and_then(|p| q.get(p)).unwrap_or(0.0))
                };
                build_timeline(&task, &rt_of)
                    .entries
                    .into_iter()
                    .map(|(i, start_ms, end_ms)| TimelineEntry {
                        activity: names[i].clone(),
                        start_ms,
                        end_ms,
                    })
                    .collect()
            };
            self.emit(MiddlewareEvent::Completed {
                task: task.name().to_owned(),
                success: true,
            });
            return Ok(ExecutionReport {
                success: true,
                final_task: task.name().to_owned(),
                invocations,
                substitutions,
                behavioural_adaptations: adaptations,
                violations,
                delivered,
                timeline,
            });
        }
    }

    /// Picks the service to invoke for activity `idx`: the currently
    /// bound service when it is live and untried, otherwise the best
    /// ranked live alternate.
    fn dynamic_bind(
        &self,
        cm: &CompositionMonitor,
        comp: &ExecutableComposition,
        idx: usize,
        tried: &HashSet<ServiceId>,
    ) -> Option<ServiceId> {
        let alive = |id: ServiceId| self.registry().get(id).is_some();
        let current = cm.bindings()[idx];
        if alive(current) && !tried.contains(&current) {
            return Some(current);
        }
        comp.outcome.ranked[idx]
            .iter()
            .map(|c| c.id())
            .find(|&id| alive(id) && !tried.contains(&id))
    }

    /// Checks the global constraints and, on violation, rebinds a future
    /// activity to a restoring alternate. Returns the number of
    /// substitutions performed.
    fn check_and_substitute(
        &mut self,
        cm: &mut CompositionMonitor,
        comp: &ExecutableComposition,
        upcoming: &[usize],
        names: &[String],
    ) -> usize {
        let model = self.model().clone();
        let violations = cm.check(&model, &self.monitor);
        if violations.is_empty() {
            return 0;
        }
        for v in &violations {
            self.emit(MiddlewareEvent::ViolationDetected {
                property: model.def(v.constraint.property()).name().to_owned(),
                proactive: v.proactive,
            });
        }
        let planner = Substitution::new(&model);
        // Activities with no upcoming invocation cannot be rebound: strip
        // their alternates so the planner only proposes viable plans.
        let masked: Vec<Vec<qasom_selection::ServiceCandidate>> = comp
            .outcome
            .ranked
            .iter()
            .enumerate()
            .map(|(i, alts)| {
                if upcoming.contains(&i) {
                    alts.clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        if let Some(plan) = planner.plan(cm, &self.monitor, &masked) {
            if upcoming.contains(&plan.activity) {
                cm.rebind(plan.activity, plan.to.id(), plan.to.qos().clone());
                self.emit(MiddlewareEvent::Substituted {
                    activity: names[plan.activity].clone(),
                    from: plan.from,
                    to: plan.to.id(),
                });
                return 1;
            }
        }
        0
    }

    /// Attempts behavioural adaptation; `Ok(true)` when a new behaviour
    /// was composed into `comp`.
    fn adapt_behaviour(
        &mut self,
        comp: &mut ExecutableComposition,
        task: &UserTask,
        executed: &mut HashMap<String, QosVector>,
        carried_over: &mut HashSet<String>,
        adaptations: &mut usize,
        _failing_activity: &str,
    ) -> Result<bool, ExecutionError> {
        if *adaptations >= self.config.max_behavioural_adaptations {
            return Ok(false);
        }
        let executed_names: Vec<&str> = task
            .activities()
            .map(|r| r.activity().name())
            .filter(|n| executed.contains_key(*n))
            .collect();
        let plan = {
            let this: &Environment = &*self;
            let adapter = BehaviouralAdapter::new(this.ontology());
            // A remaining activity is realisable when a live service can
            // be discovered for it.
            adapter.plan(this.task_repository(), task, &executed_names, &mut |a| {
                this.realisable(a)
            })
        };
        let Some(plan) = plan else {
            return Ok(false);
        };
        *adaptations += 1;
        self.emit(MiddlewareEvent::BehaviouralAdaptation {
            from: task.name().to_owned(),
            to: plan.behaviour.name().to_owned(),
        });

        // Carry the executed activities over into the new behaviour's
        // namespace.
        let mut carried = HashMap::new();
        for (old, new) in &plan.executed_map {
            if let Some(q) = executed.get(old) {
                carried.insert(new.clone(), q.clone());
            }
        }
        *carried_over = carried.keys().cloned().collect();
        *executed = carried;

        *comp = self.compose_task(
            plan.behaviour,
            comp.constraints.clone(),
            comp.preferences.clone(),
            comp.approach,
        )?;
        Ok(true)
    }

    /// Aggregated delivered QoS: observed values for executed activities,
    /// advertised ones elsewhere.
    fn delivered_qos(
        &self,
        cm: &CompositionMonitor,
        executed: &HashMap<String, QosVector>,
        names: &[String],
    ) -> QosVector {
        let model = self.model();
        // Report every property the bindings advertise, not only the
        // constrained ones — an unconstrained request still wants to know
        // what it got.
        let mut props: Vec<PropertyId> = cm.constraints().properties().collect();
        for advertised in cm.advertised() {
            props.extend(advertised.properties());
        }
        props.sort();
        props.dedup();
        let vectors: Vec<QosVector> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                executed
                    .get(n)
                    .cloned()
                    .unwrap_or_else(|| cm.advertised()[i].clone())
            })
            .collect();
        Aggregator::new(model, cm.approach()).aggregate(cm.task(), &vectors, &props)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserRequest;
    use qasom_netsim::runtime::SyntheticService;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::{QosModel, Unit};
    use qasom_registry::ServiceDescription;
    use qasom_task::{Activity, LoopBound, TaskClass};

    fn env() -> Environment {
        let mut b = OntologyBuilder::new("d");
        b.concept("A");
        b.concept("B");
        b.concept("C");
        Environment::new(QosModel::standard(), b.build().unwrap(), 11)
    }

    fn describe(e: &Environment, name: &str, function: &str, rt_ms: f64) -> ServiceDescription {
        let rt = e.model().property("ResponseTime").unwrap();
        let av = e.model().property("Availability").unwrap();
        ServiceDescription::new(name, function)
            .with_qos(rt, rt_ms)
            .with_qos(av, 0.99)
    }

    fn deploy_ok(e: &mut Environment, name: &str, function: &str, rt_ms: f64) -> ServiceId {
        let d = describe(e, name, function, rt_ms);
        let nominal = d.qos().clone();
        e.deploy(d, SyntheticService::new(nominal))
    }

    fn deploy_crashing(e: &mut Environment, name: &str, function: &str, rt_ms: f64) -> ServiceId {
        let d = describe(e, name, function, rt_ms);
        let nominal = d.qos().clone();
        e.deploy(d, SyntheticService::new(nominal).with_crash_after(0))
    }

    fn seq_task(pairs: &[(&str, &str)]) -> UserTask {
        UserTask::new(
            "t",
            TaskNode::sequence(
                pairs
                    .iter()
                    .map(|(n, f)| TaskNode::activity(Activity::new(*n, f))),
            ),
        )
        .unwrap()
    }

    #[test]
    fn happy_path_executes_all_activities() {
        let mut e = env();
        deploy_ok(&mut e, "a1", "d#A", 50.0);
        deploy_ok(&mut e, "b1", "d#B", 60.0);
        let req = UserRequest::new(seq_task(&[("first", "d#A"), ("second", "d#B")]))
            .constraint("ResponseTime", 1.0, Unit::Seconds)
            .unwrap();
        let comp = e.compose(&req).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);
        assert_eq!(report.invocations.len(), 2);
        assert_eq!(report.substitutions, 0);
        let rt = e.model().property("ResponseTime").unwrap();
        assert_eq!(report.delivered.get(rt), Some(110.0));
    }

    #[test]
    fn failed_service_is_substituted() {
        let mut e = env();
        let bad = deploy_crashing(&mut e, "a-bad", "d#A", 10.0); // ranked best
        let good = deploy_ok(&mut e, "a-good", "d#A", 50.0);
        let req = UserRequest::new(seq_task(&[("only", "d#A")]));
        let comp = e.compose(&req).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);
        assert!(report.substitutions >= 1);
        let last = report.invocations.last().unwrap();
        assert_eq!(last.service, good);
        assert!(report
            .invocations
            .iter()
            .any(|r| r.service == bad && r.qos.is_none()));
    }

    #[test]
    fn behavioural_adaptation_rescues_execution() {
        let mut e = env();
        // v1 needs d#B which only has a crashing provider; v2 realises the
        // same class via d#C which is healthy.
        deploy_ok(&mut e, "a1", "d#A", 50.0);
        deploy_crashing(&mut e, "b1", "d#B", 50.0);
        deploy_ok(&mut e, "c1", "d#C", 50.0);

        let v1 = UserTask::new(
            "v1",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("start", "d#A")),
                TaskNode::activity(Activity::new("broken", "d#B")),
            ]),
        )
        .unwrap();
        let v2 = UserTask::new(
            "v2",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("start2", "d#A")),
                TaskNode::activity(Activity::new("alt", "d#C")),
            ]),
        )
        .unwrap();
        let mut class = TaskClass::new("demo");
        class.add_behaviour(v1.clone());
        class.add_behaviour(v2);
        e.register_task_class(class);

        let req = UserRequest::new(v1);
        let comp = e.compose(&req).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);
        assert_eq!(report.behavioural_adaptations, 1);
        assert_eq!(report.final_task, "v2");
        // The executed prefix (start) was not re-invoked.
        assert_eq!(
            report
                .invocations
                .iter()
                .filter(|r| r.activity.starts_with("start") && r.qos.is_some())
                .count(),
            1
        );
    }

    #[test]
    fn execution_fails_when_nothing_can_serve() {
        let mut e = env();
        deploy_crashing(&mut e, "a1", "d#A", 50.0);
        let req = UserRequest::new(seq_task(&[("only", "d#A")]));
        let comp = e.compose(&req).unwrap();
        let err = e.execute(comp).unwrap_err();
        assert!(matches!(err, ExecutionError::Abandoned { .. }));
    }

    #[test]
    fn loops_reinvoke_their_body() {
        let mut e = env();
        deploy_ok(&mut e, "a1", "d#A", 10.0);
        let task = UserTask::new(
            "loop",
            TaskNode::repeat(
                TaskNode::activity(Activity::new("body", "d#A")),
                LoopBound::new(3.0, 5),
            ),
        )
        .unwrap();
        let comp = e.compose(&UserRequest::new(task)).unwrap();
        let report = e.execute(comp).unwrap();
        assert!(report.success);
        // expected=3 rounds → the body is invoked three times.
        assert_eq!(
            report
                .invocations
                .iter()
                .filter(|r| r.activity == "body" && r.qos.is_some())
                .count(),
            3
        );
    }

    #[test]
    fn timeline_sequences_and_overlaps() {
        let mut e = env();
        deploy_ok(&mut e, "a1", "d#A", 100.0);
        deploy_ok(&mut e, "b1", "d#B", 50.0);
        deploy_ok(&mut e, "c1", "d#C", 80.0);
        let task = UserTask::new(
            "tl",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("first", "d#A")),
                TaskNode::parallel([
                    TaskNode::activity(Activity::new("left", "d#B")),
                    TaskNode::activity(Activity::new("right", "d#C")),
                ]),
            ]),
        )
        .unwrap();
        let comp = e.compose(&UserRequest::new(task)).unwrap();
        let report = e.execute(comp).unwrap();
        let by_name = |n: &str| {
            report
                .timeline
                .iter()
                .find(|t| t.activity == n)
                .unwrap()
                .clone()
        };
        let first = by_name("first");
        let left = by_name("left");
        let right = by_name("right");
        assert_eq!(first.start_ms, 0.0);
        assert_eq!(first.end_ms, 100.0);
        // The parallel branches both start when `first` ends and overlap.
        assert_eq!(left.start_ms, 100.0);
        assert_eq!(right.start_ms, 100.0);
        assert_eq!(left.end_ms, 150.0);
        assert_eq!(right.end_ms, 180.0);
    }

    #[test]
    fn timeline_repeats_loop_rounds() {
        let mut e = env();
        deploy_ok(&mut e, "a1", "d#A", 10.0);
        let task = UserTask::new(
            "tl",
            TaskNode::repeat(
                TaskNode::activity(Activity::new("body", "d#A")),
                LoopBound::new(3.0, 5),
            ),
        )
        .unwrap();
        let comp = e.compose(&UserRequest::new(task)).unwrap();
        let report = e.execute(comp).unwrap();
        let body_entries: Vec<_> = report
            .timeline
            .iter()
            .filter(|t| t.activity == "body")
            .collect();
        assert_eq!(body_entries.len(), 3);
        assert_eq!(body_entries[0].start_ms, 0.0);
        assert_eq!(body_entries[1].start_ms, 10.0);
        assert_eq!(body_entries[2].start_ms, 20.0);
    }

    #[test]
    fn choice_takes_most_probable_branch() {
        let task = UserTask::new(
            "c",
            TaskNode::choice([
                (0.2, TaskNode::activity(Activity::new("rare", "d#A"))),
                (0.8, TaskNode::activity(Activity::new("likely", "d#B"))),
            ]),
        )
        .unwrap();
        let order = execution_order(&task);
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn execution_order_resolves_nested_structures() {
        let task = UserTask::new(
            "n",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("a", "d#A")),
                TaskNode::parallel([
                    TaskNode::activity(Activity::new("b", "d#B")),
                    TaskNode::activity(Activity::new("c", "d#C")),
                ]),
                TaskNode::repeat(
                    TaskNode::activity(Activity::new("d", "d#A")),
                    LoopBound::new(2.0, 3),
                ),
            ]),
        )
        .unwrap();
        assert_eq!(execution_order(&task), vec![0, 1, 2, 3, 3]);
    }
}
