//! User requests: functional part + QoS part.

use qasom_qos::{ConstraintSet, Preferences, QosModel, QosModelError, Unit};
use qasom_selection::AggregationApproach;
use qasom_task::UserTask;

/// A user request: the task to accomplish (the functional requirements)
/// plus the QoS requirements — global constraints, preference weights and
/// the aggregation approach non-deterministic patterns are folded under.
///
/// # Examples
///
/// ```
/// use qasom::UserRequest;
/// use qasom_qos::Unit;
/// use qasom_task::{Activity, TaskNode, UserTask};
///
/// let task = UserTask::new(
///     "t",
///     TaskNode::activity(Activity::new("a", "x#A")),
/// )
/// .unwrap();
/// let request = UserRequest::new(task)
///     .constraint("ResponseTime", 2.0, Unit::Seconds)
///     .unwrap()
///     .constraint("Availability", 0.9, Unit::Ratio)
///     .unwrap();
/// assert_eq!(request.constraints(&qasom_qos::QosModel::standard()).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UserRequest {
    task: UserTask,
    raw_constraints: Vec<(String, f64, Unit)>,
    raw_weights: Vec<(String, f64)>,
    approach: AggregationApproach,
}

impl UserRequest {
    /// Creates a request for `task` with no QoS requirement.
    pub fn new(task: UserTask) -> Self {
        UserRequest {
            task,
            raw_constraints: Vec::new(),
            raw_weights: Vec::new(),
            approach: AggregationApproach::MeanValue,
        }
    }

    /// Adds a global QoS constraint, by property name (the user
    /// vocabulary is accepted: names are resolved through the QoS model's
    /// ontology at composition time).
    ///
    /// # Errors
    ///
    /// Never fails at this point — the name is validated at composition
    /// time; the `Result` keeps the signature stable for eager-validation
    /// implementations.
    #[allow(clippy::unnecessary_wraps)]
    pub fn constraint(
        mut self,
        property: impl Into<String>,
        bound: f64,
        unit: Unit,
    ) -> Result<Self, QosModelError> {
        self.raw_constraints.push((property.into(), bound, unit));
        Ok(self)
    }

    /// Adds a preference weight for a property (raw weights are
    /// normalised to sum to one).
    pub fn weight(mut self, property: impl Into<String>, weight: f64) -> Self {
        self.raw_weights.push((property.into(), weight));
        self
    }

    /// Sets the aggregation approach (default: mean-value).
    pub fn approach(mut self, approach: AggregationApproach) -> Self {
        self.approach = approach;
        self
    }

    /// The requested task.
    pub fn task(&self) -> &UserTask {
        &self.task
    }

    /// The raw (unresolved) global constraints, exactly as phrased by the
    /// user: `(property name, bound, unit)`. This is what the static
    /// analyzer validates before resolution.
    pub fn raw_constraints(&self) -> &[(String, f64, Unit)] {
        &self.raw_constraints
    }

    /// The raw (unnormalised) preference weights: `(property name, weight)`.
    pub fn raw_weights(&self) -> &[(String, f64)] {
        &self.raw_weights
    }

    /// The chosen aggregation approach.
    pub fn aggregation_approach(&self) -> AggregationApproach {
        self.approach
    }

    /// Resolves the constraint names against a QoS model, mapping
    /// user-layer vocabulary onto the service layer.
    ///
    /// # Errors
    ///
    /// Fails on names unknown to the model.
    pub fn constraints(&self, model: &QosModel) -> Result<ConstraintSet, QosModelError> {
        self.raw_constraints
            .iter()
            .map(|(name, bound, unit)| {
                let c = model.constraint(name, *bound, *unit)?;
                // A user-layer property is re-anchored on its service-layer
                // equivalent so aggregation sees provider vocabulary.
                let id = model
                    .resolve_to_layer(c.property(), qasom_qos::Layer::Service)
                    .unwrap_or(c.property());
                Ok(qasom_qos::Constraint::new(id, c.tendency(), c.bound()))
            })
            .collect()
    }

    /// Resolves the preference weights against a QoS model.
    ///
    /// # Errors
    ///
    /// Fails on names unknown to the model.
    pub fn preferences(&self, model: &QosModel) -> Result<Preferences, QosModelError> {
        let weights = self
            .raw_weights
            .iter()
            .map(|(name, w)| {
                let id = model.require(name)?;
                let id = model
                    .resolve_to_layer(id, qasom_qos::Layer::Service)
                    .unwrap_or(id);
                Ok((id, *w))
            })
            .collect::<Result<Vec<_>, QosModelError>>()?;
        Ok(Preferences::from_weights(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_task::{Activity, TaskNode};

    fn task() -> UserTask {
        UserTask::new("t", TaskNode::activity(Activity::new("a", "x#A"))).unwrap()
    }

    #[test]
    fn constraints_resolve_units_and_layers() {
        let m = QosModel::standard();
        let r = UserRequest::new(task())
            .constraint("Delay", 2.0, Unit::Seconds) // user vocabulary
            .unwrap();
        let cs = r.constraints(&m).unwrap();
        let rt = m.property("ResponseTime").unwrap();
        let c = cs.get(rt).expect("Delay re-anchored on ResponseTime");
        assert_eq!(c.bound(), 2000.0);
    }

    #[test]
    fn unknown_constraint_name_fails_at_resolution() {
        let m = QosModel::standard();
        let r = UserRequest::new(task())
            .constraint("Nope", 1.0, Unit::Dimensionless)
            .unwrap();
        assert!(r.constraints(&m).is_err());
    }

    #[test]
    fn weights_resolve_and_normalise() {
        let m = QosModel::standard();
        let r = UserRequest::new(task())
            .weight("ResponseTime", 3.0)
            .weight("Availability", 1.0);
        let p = r.preferences(&m).unwrap();
        let rt = m.property("ResponseTime").unwrap();
        assert!((p.weight(rt) - 0.75).abs() < 1e-12);
    }
}
