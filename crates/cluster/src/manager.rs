//! The cluster run driver and its report.
//!
//! [`ClusterSim`] builds a deterministic world from a seed — a capability
//! taxonomy, an initial service pool and a churn script — then runs the
//! gossip replication plane of [`peer`](crate::peer) over the network
//! simulator and closes with a scatter/gather audit: every capability is
//! probed across the shard replicas and the merged candidates are
//! compared against the single-registry oracle. The whole run is a pure
//! function of `(config, seed)`, so reports are byte-reproducible.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qasom_netsim::{DeviceProfile, LinkConfig, NodeId, SimDuration, Simulation};
use qasom_obs::report::{ClusterSection, NetsimSection};
use qasom_obs::{keys, Recorder};
use qasom_ontology::{Ontology, OntologyBuilder};
use qasom_qos::QosModel;
use qasom_registry::{
    DiscoveredCandidate, Discovery, DiscoveryQuery, ServiceDescription, ServiceRegistry,
};
use qasom_selection::distributed::RetryPolicy;
use qasom_task::Activity;

use crate::peer::{ChurnOp, ClusterRole, OriginState, ShardPeerState};
use crate::protocol::PeerMessage;
use crate::shard::ShardReplica;

/// Parameters of one clustered-registry run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of capability-bucket shards.
    pub shards: usize,
    /// Initial service pool size.
    pub services: usize,
    /// Number of capability concepts (each with one subconcept).
    pub functions: usize,
    /// Churn rounds the origin applies (one per gossip round).
    pub churn_rounds: usize,
    /// Registry operations per churn round.
    pub churn_per_round: usize,
    /// Gossip period, milliseconds.
    pub gossip_period_ms: u64,
    /// Hard cap on gossip rounds (bounds runs with dead shards).
    pub max_gossip_rounds: usize,
    /// Shard-peer pull retransmission policy.
    pub retry: RetryPolicy,
    /// Link model between all nodes.
    pub link: LinkConfig,
    /// Origin event-log retention (`None` = unbounded; small values
    /// force snapshot fallbacks).
    pub event_retention: Option<usize>,
    /// Shard buckets to fail before the run starts.
    pub fail_shards: Vec<usize>,
    /// Simulator event cap.
    pub max_sim_events: Option<u64>,
    /// Modelled per-candidate evaluation cost for the scatter latency
    /// figure, microseconds.
    pub per_candidate_cost_us: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            services: 32,
            functions: 6,
            churn_rounds: 8,
            churn_per_round: 4,
            gossip_period_ms: 10,
            max_gossip_rounds: 256,
            retry: RetryPolicy::default(),
            link: LinkConfig::default(),
            event_retention: None,
            fail_shards: Vec::new(),
            max_sim_events: Some(1_000_000),
            per_candidate_cost_us: 50,
        }
    }
}

/// What one cluster run did, on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Shards the registry was partitioned into.
    pub shards: usize,
    /// Shards failed before the run.
    pub shards_lost: usize,
    /// Gossip rounds the origin completed.
    pub gossip_rounds: u64,
    /// Incremental deltas the origin shipped.
    pub deltas_shipped: u64,
    /// Events replicated onto peers (bucket-filtered).
    pub events_replicated: u64,
    /// Pulls answered with a snapshot.
    pub snapshot_fallbacks: u64,
    /// Pull retransmissions peers issued.
    pub retries: u64,
    /// Scatter/gather probes run by the closing audit.
    pub scatter_queries: u64,
    /// Candidates the single-registry oracle yields over the probes.
    pub oracle_candidates: u64,
    /// Candidates the scatter/gather merge yields over the probes.
    pub gathered_candidates: u64,
    /// Whether the merged candidates equal the oracle's, byte for byte
    /// (always true when no shard was lost and the run converged).
    pub oracle_match: bool,
    /// Whether every live shard reached the origin head.
    pub converged: bool,
    /// Events the most-lagged live shard trails the head by.
    pub max_staleness_events: usize,
    /// Modelled scatter/gather latency per probe (parallel fan-out):
    /// one round trip plus the widest shard's evaluation work.
    pub scatter_latency_us: u64,
    /// Protocol messages handed to links.
    pub messages: u64,
    /// Discrete events the simulation processed.
    pub sim_events: u64,
    /// Network totals.
    pub net: NetsimSection,
}

impl ClusterReport {
    /// Fraction of the oracle's candidates the gather produced.
    pub fn coverage_ratio(&self) -> f64 {
        if self.oracle_candidates == 0 {
            1.0
        } else {
            self.gathered_candidates as f64 / self.oracle_candidates as f64
        }
    }

    /// Whether coverage is below the oracle (some shard was lost).
    pub fn degraded(&self) -> bool {
        self.shards_lost > 0
    }

    /// The serialisable face of the report.
    pub fn to_section(&self) -> ClusterSection {
        ClusterSection {
            shards: self.shards as u64,
            shards_lost: self.shards_lost as u64,
            gossip_rounds: self.gossip_rounds,
            deltas_shipped: self.deltas_shipped,
            events_replicated: self.events_replicated,
            snapshot_fallbacks: self.snapshot_fallbacks,
            retries: self.retries,
            scatter_queries: self.scatter_queries,
            coverage_ratio: self.coverage_ratio(),
            degraded: self.degraded(),
            converged: self.converged,
            max_staleness_events: self.max_staleness_events as u64,
            net: self.net,
        }
    }

    /// Flushes the run's counters to `recorder` after the fact, so
    /// instrumentation can never perturb protocol counts.
    pub fn record(&self, recorder: &dyn Recorder) {
        recorder.incr(keys::CLUSTER_GOSSIP_ROUNDS, self.gossip_rounds);
        recorder.incr(keys::CLUSTER_DELTAS_SHIPPED, self.deltas_shipped);
        recorder.incr(keys::CLUSTER_EVENTS_REPLICATED, self.events_replicated);
        recorder.incr(keys::CLUSTER_SNAPSHOT_FALLBACKS, self.snapshot_fallbacks);
        recorder.incr(keys::CLUSTER_RETRIES, self.retries);
        recorder.incr(keys::CLUSTER_SCATTER_QUERIES, self.scatter_queries);
        recorder.incr(keys::CLUSTER_SHARDS_LOST, self.shards_lost as u64);
        recorder.incr(keys::NETSIM_DELIVERED, self.net.delivered);
        recorder.incr(keys::NETSIM_DROPPED, self.net.dropped);
        recorder.incr(keys::NETSIM_TIMERS_CANCELLED, self.net.timers_cancelled);
    }
}

/// Drives clustered-registry runs over the network simulator.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: ClusterConfig,
}

impl ClusterSim {
    /// A driver for `config`.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterSim { config }
    }

    /// The taxonomy a run with `functions` capabilities uses: `cl#F{i}`
    /// with one subconcept `cl#F{i}Sub` each.
    pub fn build_ontology(functions: usize) -> Arc<Ontology> {
        let mut b = OntologyBuilder::new("cl");
        for i in 0..functions.max(1) {
            let base = b.concept(&format!("F{i}"));
            b.subconcept(&format!("F{i}Sub"), base);
        }
        match b.build() {
            Ok(o) => Arc::new(o),
            // The generated taxonomy has no cycles or duplicate IRIs.
            Err(e) => panic!("generated taxonomy must build: {e}"),
        }
    }

    /// One deterministic service advertisement.
    fn service(
        rng: &mut StdRng,
        model: &QosModel,
        name: String,
        functions: usize,
    ) -> ServiceDescription {
        let f = rng.gen_range(0..functions.max(1));
        let sub = rng.gen_range(0..2) == 1;
        let iri = if sub {
            format!("cl#F{f}Sub")
        } else {
            format!("cl#F{f}")
        };
        let mut desc = ServiceDescription::new(name, &iri);
        if let Some(rt) = model.property("ResponseTime") {
            desc = desc.with_qos(rt, 10.0 + f64::from(rng.gen_range(0..90u32)));
        }
        if let Some(av) = model.property("Availability") {
            desc = desc.with_qos(av, 0.9 + f64::from(rng.gen_range(0..10u32)) / 100.0);
        }
        desc
    }

    /// Runs the replication plane and the closing scatter/gather audit,
    /// deterministically from `seed`.
    pub fn run(&self, seed: u64) -> ClusterReport {
        let cfg = &self.config;
        assert!(cfg.shards > 0, "a cluster needs at least one shard");
        let ontology = Self::build_ontology(cfg.functions);
        let model = QosModel::standard();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995_9e37_79b9);

        // Initial pool.
        let mut registry = ServiceRegistry::with_ontology(Arc::clone(&ontology));
        for j in 0..cfg.services {
            registry.register(Self::service(
                &mut rng,
                &model,
                format!("s{j}"),
                cfg.functions,
            ));
        }
        if let Some(keep) = cfg.event_retention {
            registry.set_event_retention(keep);
        }

        // Churn script: drawn up-front from the same stream, applied by
        // the origin inside the simulation.
        let churn: Vec<Vec<ChurnOp>> = (0..cfg.churn_rounds)
            .map(|r| {
                (0..cfg.churn_per_round)
                    .map(|j| {
                        if rng.gen_range(0..2) == 0 {
                            ChurnOp::Deploy(Self::service(
                                &mut rng,
                                &model,
                                format!("churn-{r}-{j}"),
                                cfg.functions,
                            ))
                        } else {
                            ChurnOp::UndeployNth(rng.gen_range(0..1usize << 16))
                        }
                    })
                    .collect()
            })
            .collect();

        let mut sim: Simulation<PeerMessage, ClusterRole> = Simulation::new(seed);
        sim.set_default_link(cfg.link);
        if let Some(cap) = cfg.max_sim_events {
            sim.set_max_events(cap);
        }
        let origin = sim.add_node(
            DeviceProfile::new(1.0),
            ClusterRole::Origin(Box::new(OriginState::new(
                registry,
                churn,
                SimDuration::from_millis(cfg.gossip_period_ms),
                cfg.max_gossip_rounds,
            ))),
        );
        let mut peers: Vec<NodeId> = Vec::with_capacity(cfg.shards);
        for bucket in 0..cfg.shards {
            let replica = ShardReplica::new(bucket, Arc::clone(&ontology));
            peers.push(sim.add_node(
                DeviceProfile::new(1.0),
                ClusterRole::Shard(Box::new(ShardPeerState::new(
                    replica, cfg.shards, origin, cfg.retry, seed,
                ))),
            ));
        }
        let mut shards_lost = 0;
        for &bucket in &cfg.fail_shards {
            if bucket < peers.len() {
                sim.fail_node(peers[bucket]);
                shards_lost += 1;
            }
        }

        let sim_events = match sim.run_checked() {
            Ok(processed) => processed,
            Err(cap) => cap.processed,
        };
        let stats = sim.stats();
        let sim_time_us = sim.now().as_micros();

        // Pull the states back out of the simulation.
        let ClusterRole::Origin(origin_state) = sim.node(origin) else {
            unreachable!("node 0 is the origin");
        };
        let head = origin_state.head();
        let mut replicas: Vec<(&ShardPeerState, bool)> = Vec::with_capacity(peers.len());
        for &p in &peers {
            let ClusterRole::Shard(shard) = sim.node(p) else {
                unreachable!("peers are shards");
            };
            replicas.push((shard, sim.is_alive(p)));
        }
        let converged = replicas
            .iter()
            .filter(|(_, alive)| *alive)
            .all(|(s, _)| s.replica().cursor() == head);
        let max_staleness_events = replicas
            .iter()
            .filter(|(_, alive)| *alive)
            .map(|(s, _)| s.replica().cursor().lag_behind(head))
            .max()
            .unwrap_or(0);
        let retries: u64 = replicas.iter().map(|(s, _)| s.retries).sum();
        let events_replicated: u64 = replicas.iter().map(|(s, _)| s.events_applied).sum();

        // Closing audit: probe every capability through the shards and
        // against the oracle.
        let oracle = Discovery::new(&ontology, &model);
        let mut oracle_candidates = 0u64;
        let mut gathered_candidates = 0u64;
        let mut oracle_match = true;
        let mut scatter_latency_us = 0u64;
        let mut scatter_queries = 0u64;
        for f in 0..cfg.functions.max(1) {
            let activity = Activity::new(format!("probe{f}"), &format!("cl#F{f}"));
            let query = DiscoveryQuery::new(&activity);
            let expected = oracle.discover(&origin_state.registry, &query);
            let mut gathered: Vec<DiscoveredCandidate> = Vec::new();
            let mut widest_shard = 0u64;
            for (shard, alive) in &replicas {
                if !alive {
                    continue;
                }
                let part = shard.replica().discover_global(&model, &query);
                widest_shard = widest_shard.max(part.len() as u64);
                gathered.extend(part);
            }
            gathered.sort_by(|a, b| b.degree.cmp(&a.degree).then(a.service.cmp(&b.service)));
            oracle_candidates += expected.len() as u64;
            gathered_candidates += gathered.len() as u64;
            if gathered != expected {
                oracle_match = false;
            }
            scatter_queries += 1;
            scatter_latency_us += 2 * (cfg.link.latency_ms() * 1_000.0) as u64
                + widest_shard * cfg.per_candidate_cost_us;
        }
        let scatter_latency_us = scatter_latency_us / scatter_queries.max(1);

        ClusterReport {
            shards: cfg.shards,
            shards_lost,
            gossip_rounds: origin_state.gossip_rounds,
            deltas_shipped: origin_state.deltas_shipped,
            events_replicated,
            snapshot_fallbacks: origin_state.snapshot_fallbacks,
            retries,
            scatter_queries,
            oracle_candidates,
            gathered_candidates,
            oracle_match,
            converged,
            max_staleness_events,
            scatter_latency_us,
            messages: stats.sent,
            sim_events,
            net: NetsimSection {
                sent: stats.sent,
                delivered: stats.delivered,
                dropped: stats.dropped,
                timers_cancelled: stats.timers_cancelled,
                sim_time_us,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_run_converges_and_matches_the_oracle() {
        let report = ClusterSim::new(ClusterConfig::default()).run(1);
        assert!(report.converged, "clean links converge");
        assert!(report.oracle_match, "scatter/gather equals the oracle");
        assert_eq!(report.max_staleness_events, 0);
        assert_eq!(report.coverage_ratio(), 1.0);
        assert!(!report.degraded());
        assert!(report.deltas_shipped > 0);
    }

    #[test]
    fn runs_are_a_pure_function_of_the_seed() {
        let sim = ClusterSim::new(ClusterConfig::default());
        let a = sim.run(42);
        let b = sim.run(42);
        assert_eq!(a, b);
        let c = sim.run(43);
        assert_ne!(a.net, c.net, "a different seed samples different links");
    }

    #[test]
    fn shard_counts_do_not_change_the_answer() {
        let mut reports = Vec::new();
        for shards in [1, 2, 4, 8] {
            let cfg = ClusterConfig {
                shards,
                ..ClusterConfig::default()
            };
            reports.push(ClusterSim::new(cfg).run(7));
        }
        for r in &reports {
            assert!(
                r.converged && r.oracle_match,
                "{} shards diverged",
                r.shards
            );
        }
        let first = reports[0].oracle_candidates;
        assert!(reports.iter().all(|r| r.oracle_candidates == first));
        assert!(reports.iter().all(|r| r.gathered_candidates == first));
    }

    #[test]
    fn losing_a_shard_degrades_coverage_without_failing() {
        let cfg = ClusterConfig {
            fail_shards: vec![1],
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg).run(5);
        assert!(report.degraded());
        assert_eq!(report.shards_lost, 1);
        assert!(
            report.coverage_ratio() < 1.0,
            "the lost bucket's candidates are missing"
        );
        assert!(!report.oracle_match);
        assert!(report.converged, "surviving shards still reach the head");
    }

    #[test]
    fn tiny_retention_forces_snapshot_fallbacks() {
        let cfg = ClusterConfig {
            event_retention: Some(2),
            ..ClusterConfig::default()
        };
        let report = ClusterSim::new(cfg).run(9);
        assert!(report.snapshot_fallbacks > 0);
        assert!(report.converged && report.oracle_match);
    }

    #[test]
    fn the_section_round_trips_the_counters() {
        let report = ClusterSim::new(ClusterConfig::default()).run(3);
        let section = report.to_section();
        assert_eq!(section.shards, report.shards as u64);
        assert_eq!(section.gossip_rounds, report.gossip_rounds);
        assert_eq!(section.converged, report.converged);
        let rec = qasom_obs::MemoryRecorder::new();
        report.record(&rec);
        let snap = match rec.snapshot() {
            Some(s) => s,
            None => panic!("memory recorder snapshots"),
        };
        assert_eq!(
            snap.counter(keys::CLUSTER_GOSSIP_ROUNDS),
            report.gossip_rounds
        );
    }
}
