//! The epoch-gossip wire protocol between the origin and shard peers.
//!
//! The protocol is pull-based and idempotent:
//!
//! 1. the origin periodically **gossips** its event-log head
//!    ([`PeerMessage::Head`]) to every shard peer;
//! 2. a peer behind the head **pulls** ([`PeerMessage::Pull`]) with its
//!    own [`ReplicaCursor`];
//! 3. the origin answers from the typed
//!    [`RegistrySync`](qasom_registry::RegistrySync) surface: an
//!    incremental [`PeerMessage::Delta`] when the cursor is inside the
//!    retained event window, a full [`PeerMessage::Snapshot`] when the
//!    cursor fell out of it ([`EventLogGap`](qasom_registry::EventLogGap)
//!    fallback);
//! 4. the peer **acks** ([`PeerMessage::Ack`]) its new position so the
//!    origin can track convergence.
//!
//! Registry events carry service ids only, so the origin resolves the
//! descriptions (at its head) into the delta; a `Registered` event whose
//! service has already departed ships no description — the matching
//! `Deregistered` event is necessarily part of the same suffix, so the
//! peer's state at the head is unaffected.
//!
//! Every message may be lost: peers re-pull with capped exponential
//! backoff ([`RetryPolicy`](qasom_selection::distributed::RetryPolicy))
//! and every later `Head` re-arms the exchange, so a lost delta delays
//! convergence but never corrupts it.

use qasom_registry::{RegistryEvent, ReplicaCursor, ServiceDescription, ServiceId};

/// A message of the shard-replication protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum PeerMessage {
    /// Origin → peers: the origin's event-log head.
    Head {
        /// Position of the origin log head.
        cursor: ReplicaCursor,
    },
    /// Peer → origin: send me everything after `cursor`.
    Pull {
        /// The peer's replication position.
        cursor: ReplicaCursor,
    },
    /// Origin → peer: incremental events starting exactly at `from`,
    /// each `Registered` paired with its description resolved at the
    /// origin's head (`None` when the service has already departed).
    Delta {
        /// First event's position (the peer's pull cursor).
        from: ReplicaCursor,
        /// The events with head-resolved descriptions.
        batch: Vec<(RegistryEvent, Option<ServiceDescription>)>,
    },
    /// Origin → peer: full-state fallback after an event-log gap.
    Snapshot {
        /// The origin head the snapshot captures.
        cursor: ReplicaCursor,
        /// Every live service with its description, id-ascending.
        live: Vec<(ServiceId, ServiceDescription)>,
    },
    /// Peer → origin: replicated up to `cursor`.
    Ack {
        /// The peer's new replication position.
        cursor: ReplicaCursor,
    },
}

impl PeerMessage {
    /// Short tag for logs and tests.
    pub fn tag(&self) -> &'static str {
        match self {
            PeerMessage::Head { .. } => "head",
            PeerMessage::Pull { .. } => "pull",
            PeerMessage::Delta { .. } => "delta",
            PeerMessage::Snapshot { .. } => "snapshot",
            PeerMessage::Ack { .. } => "ack",
        }
    }
}
