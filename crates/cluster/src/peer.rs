//! Netsim node behaviours for the origin and the shard peers.
//!
//! The cluster's replication plane runs over the deterministic network
//! simulator: the origin node holds the authoritative registry and
//! applies scripted churn between gossip rounds; each shard peer holds a
//! [`ShardReplica`] and follows the pull protocol of
//! [`protocol`](crate::protocol). Links lose and delay messages, peers
//! retry with seeded backoff, and a failed shard node simply stops
//! participating — the driver surfaces it as degraded coverage, never as
//! an error.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qasom_netsim::{NodeBehaviour, NodeContext, NodeId, SimDuration};
use qasom_registry::{
    RegistryEvent, RegistrySync, ReplicaCursor, ServiceDescription, ServiceRegistry, SyncResponse,
};
use qasom_selection::distributed::RetryPolicy;

use crate::protocol::PeerMessage;
use crate::shard::ShardReplica;

/// Timer key: the origin's periodic gossip round.
pub(crate) const GOSSIP_TIMER: u64 = 0;
/// Timer key: a shard peer's pull retransmission.
pub(crate) const PULL_RETRY_TIMER: u64 = 1;

/// One scripted churn operation the origin applies between gossip rounds.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Register a new advertisement.
    Deploy(ServiceDescription),
    /// Deregister the `n`-th live service (modulo the live count; a
    /// no-op on an empty registry).
    UndeployNth(usize),
}

/// The origin node: authoritative registry, churn script, gossip clock.
pub struct OriginState {
    pub(crate) registry: ServiceRegistry,
    /// Churn rounds still to apply, in order (drained front to back).
    churn: Vec<Vec<ChurnOp>>,
    next_round: usize,
    gossip_period: SimDuration,
    max_rounds: usize,
    /// Last cursor each peer acked.
    pub(crate) acks: BTreeMap<NodeId, ReplicaCursor>,
    pub(crate) gossip_rounds: u64,
    pub(crate) deltas_shipped: u64,
    pub(crate) events_shipped: u64,
    pub(crate) snapshot_fallbacks: u64,
}

impl OriginState {
    /// An origin over `registry` applying `churn` rounds, gossiping every
    /// `gossip_period` for at most `max_rounds` rounds.
    pub fn new(
        registry: ServiceRegistry,
        churn: Vec<Vec<ChurnOp>>,
        gossip_period: SimDuration,
        max_rounds: usize,
    ) -> Self {
        OriginState {
            registry,
            churn,
            next_round: 0,
            gossip_period,
            max_rounds,
            acks: BTreeMap::new(),
            gossip_rounds: 0,
            deltas_shipped: 0,
            events_shipped: 0,
            snapshot_fallbacks: 0,
        }
    }

    /// The origin's event-log head.
    pub fn head(&self) -> ReplicaCursor {
        self.registry.sync_cursor()
    }

    /// Whether every peer that ever acked has reached the head.
    fn all_acked_peers_converged(&self, peers: &[NodeId]) -> bool {
        peers.iter().all(|p| self.acks.get(p) == Some(&self.head()))
    }

    fn apply_next_churn_round(&mut self) {
        if let Some(round) = self.churn.get(self.next_round) {
            for op in round.clone() {
                match op {
                    ChurnOp::Deploy(desc) => {
                        self.registry.register(desc);
                    }
                    ChurnOp::UndeployNth(n) => {
                        let live = self.registry.len();
                        if live > 0 {
                            let victim = self.registry.iter().nth(n % live).map(|(id, _)| id);
                            if let Some(id) = victim {
                                self.registry.deregister(id);
                            }
                        }
                    }
                }
            }
            self.next_round += 1;
        }
    }

    fn gossip(&mut self, ctx: &mut NodeContext<'_, PeerMessage>) {
        self.gossip_rounds += 1;
        let head = self.head();
        for i in 0..ctx.peers().len() {
            let peer = ctx.peers()[i];
            ctx.send(peer, PeerMessage::Head { cursor: head });
        }
    }

    fn answer_pull(
        &mut self,
        ctx: &mut NodeContext<'_, PeerMessage>,
        from: NodeId,
        cursor: ReplicaCursor,
    ) {
        match self.registry.sync_from(cursor) {
            SyncResponse::Delta(events) => {
                let batch: Vec<(RegistryEvent, Option<ServiceDescription>)> = events
                    .iter()
                    .map(|&e| {
                        let description = match e {
                            RegistryEvent::Registered(id) => self.registry.get(id).cloned(),
                            RegistryEvent::Deregistered(_) => None,
                        };
                        (e, description)
                    })
                    .collect();
                self.deltas_shipped += 1;
                self.events_shipped += batch.len() as u64;
                ctx.send(
                    from,
                    PeerMessage::Delta {
                        from: cursor,
                        batch,
                    },
                );
            }
            SyncResponse::Snapshot(snap) => {
                let live = snap
                    .live
                    .iter()
                    .filter_map(|&id| self.registry.get(id).map(|d| (id, d.clone())))
                    .collect();
                self.snapshot_fallbacks += 1;
                ctx.send(
                    from,
                    PeerMessage::Snapshot {
                        cursor: ReplicaCursor::new(snap.cursor),
                        live,
                    },
                );
            }
        }
    }
}

/// A shard peer node: its replica plus the pull/retry state machine.
pub struct ShardPeerState {
    pub(crate) replica: ShardReplica,
    n_shards: usize,
    origin: NodeId,
    retry: RetryPolicy,
    retry_round: u32,
    pull_pending: bool,
    /// Jitter draws must not perturb the link-sampling stream, so each
    /// peer carries its own seeded generator.
    rng: StdRng,
    pub(crate) retries: u64,
    pub(crate) snapshot_installs: u64,
    pub(crate) events_applied: u64,
}

impl ShardPeerState {
    /// A peer for `replica`, pulling from `origin` with `retry` backoff.
    pub fn new(
        replica: ShardReplica,
        n_shards: usize,
        origin: NodeId,
        retry: RetryPolicy,
        seed: u64,
    ) -> Self {
        let bucket = replica.bucket() as u64;
        ShardPeerState {
            replica,
            n_shards,
            origin,
            retry,
            retry_round: 0,
            pull_pending: false,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15 ^ (bucket << 32)),
            retries: 0,
            snapshot_installs: 0,
            events_applied: 0,
        }
    }

    /// The replica this peer maintains.
    pub fn replica(&self) -> &ShardReplica {
        &self.replica
    }

    fn send_pull(&mut self, ctx: &mut NodeContext<'_, PeerMessage>) {
        ctx.send(
            self.origin,
            PeerMessage::Pull {
                cursor: self.replica.cursor(),
            },
        );
        self.pull_pending = true;
        self.schedule_retry(ctx);
    }

    fn schedule_retry(&mut self, ctx: &mut NodeContext<'_, PeerMessage>) {
        if self.retry_round >= self.retry.max_retries {
            // Out of retries: the next gossiped head re-arms the pull.
            self.pull_pending = false;
            self.retry_round = 0;
            return;
        }
        let jitter_us = if self.retry.jitter_ms == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.retry.jitter_ms * 1_000)
        };
        let delay =
            SimDuration::from_micros(self.retry.backoff_ms(self.retry_round) * 1_000 + jitter_us);
        ctx.set_timer(delay, PULL_RETRY_TIMER);
    }

    fn settle(&mut self, ctx: &mut NodeContext<'_, PeerMessage>) {
        if self.pull_pending {
            ctx.cancel_timer(PULL_RETRY_TIMER);
            self.pull_pending = false;
        }
        self.retry_round = 0;
        ctx.send(
            self.origin,
            PeerMessage::Ack {
                cursor: self.replica.cursor(),
            },
        );
    }
}

/// Node roles of the replication plane.
pub enum ClusterRole {
    /// The authoritative registry node.
    Origin(Box<OriginState>),
    /// One capability-bucket shard.
    Shard(Box<ShardPeerState>),
}

impl NodeBehaviour<PeerMessage> for ClusterRole {
    fn on_start(&mut self, ctx: &mut NodeContext<'_, PeerMessage>) {
        if let ClusterRole::Origin(state) = self {
            // First gossip round fires after one period: peers exist by
            // then, and the very first heads already carry the seeded
            // pool's cursor.
            ctx.set_timer(state.gossip_period, GOSSIP_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_, PeerMessage>, timer: u64) {
        match self {
            ClusterRole::Origin(state) => {
                if timer != GOSSIP_TIMER {
                    return;
                }
                state.apply_next_churn_round();
                state.gossip(ctx);
                let churn_done = state.next_round >= state.churn.len();
                let peers: Vec<NodeId> = ctx.peers().to_vec();
                let converged = churn_done && state.all_acked_peers_converged(&peers);
                // Keep gossiping until every reachable peer confirmed the
                // head; the round cap bounds the run when some peer is
                // down and will never confirm.
                if !converged && (state.gossip_rounds as usize) < state.max_rounds {
                    ctx.set_timer(state.gossip_period, GOSSIP_TIMER);
                }
            }
            ClusterRole::Shard(state) => {
                if timer == PULL_RETRY_TIMER && state.pull_pending {
                    state.retry_round += 1;
                    state.retries += 1;
                    if state.retry_round < state.retry.max_retries {
                        let cursor = state.replica.cursor();
                        ctx.send(state.origin, PeerMessage::Pull { cursor });
                        state.schedule_retry(ctx);
                    } else {
                        state.pull_pending = false;
                        state.retry_round = 0;
                    }
                }
            }
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut NodeContext<'_, PeerMessage>,
        from: NodeId,
        msg: PeerMessage,
    ) {
        match self {
            ClusterRole::Origin(state) => match msg {
                PeerMessage::Pull { cursor } => state.answer_pull(ctx, from, cursor),
                PeerMessage::Ack { cursor } => {
                    state.acks.insert(from, cursor);
                }
                // Peers never send the origin-side messages; ignore.
                PeerMessage::Head { .. }
                | PeerMessage::Delta { .. }
                | PeerMessage::Snapshot { .. } => {}
            },
            ClusterRole::Shard(state) => match msg {
                PeerMessage::Head { cursor } => {
                    if cursor > state.replica.cursor() && !state.pull_pending {
                        state.retry_round = 0;
                        state.send_pull(ctx);
                    }
                }
                PeerMessage::Delta {
                    from: batch_from,
                    batch,
                } => {
                    let n = state.n_shards;
                    // A stale duplicate (our cursor moved past the batch)
                    // is dropped; a later head re-syncs.
                    if let Ok(applied) = state.replica.apply_delta(n, batch_from, &batch) {
                        state.events_applied += applied as u64;
                        state.settle(ctx);
                    }
                }
                PeerMessage::Snapshot { cursor, live } => {
                    state
                        .replica
                        .install_snapshot(state.n_shards, cursor, &live);
                    state.snapshot_installs += 1;
                    state.settle(ctx);
                }
                // Origin-bound messages; ignore.
                PeerMessage::Pull { .. } | PeerMessage::Ack { .. } => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use qasom_netsim::{DeviceProfile, LinkConfig, Simulation};
    use qasom_ontology::OntologyBuilder;
    use qasom_registry::ServiceRegistry;

    fn ontology() -> Arc<qasom_ontology::Ontology> {
        let mut b = OntologyBuilder::new("cl");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.concept("Locate");
        Arc::new(b.build().unwrap())
    }

    fn build_sim(
        seed: u64,
        shards: usize,
        churn: Vec<Vec<ChurnOp>>,
        link: LinkConfig,
        retention: Option<usize>,
    ) -> (Simulation<PeerMessage, ClusterRole>, NodeId, Vec<NodeId>) {
        let onto = ontology();
        let mut registry = ServiceRegistry::with_ontology(Arc::clone(&onto));
        registry.register(ServiceDescription::new("visa", "cl#PayByCard"));
        registry.register(ServiceDescription::new("gps", "cl#Locate"));
        if let Some(keep) = retention {
            registry.set_event_retention(keep);
        }
        let mut sim = Simulation::new(seed);
        sim.set_default_link(link);
        let origin_state = OriginState::new(registry, churn, SimDuration::from_millis(10), 64);
        let origin = sim.add_node(
            DeviceProfile::new(1.0),
            ClusterRole::Origin(Box::new(origin_state)),
        );
        let mut peers = Vec::new();
        for bucket in 0..shards {
            let replica = ShardReplica::new(bucket, Arc::clone(&onto));
            peers.push(sim.add_node(
                DeviceProfile::new(1.0),
                ClusterRole::Shard(Box::new(ShardPeerState::new(
                    replica,
                    shards,
                    origin,
                    RetryPolicy::default(),
                    seed,
                ))),
            ));
        }
        (sim, origin, peers)
    }

    fn churn_script() -> Vec<Vec<ChurnOp>> {
        vec![
            vec![ChurnOp::Deploy(ServiceDescription::new(
                "visa2",
                "cl#PayByCard",
            ))],
            vec![ChurnOp::UndeployNth(0)],
        ]
    }

    #[test]
    fn peers_converge_to_the_origin_head_over_a_clean_link() {
        let (mut sim, origin, peers) = build_sim(7, 2, churn_script(), LinkConfig::default(), None);
        sim.run();
        let ClusterRole::Origin(origin_state) = sim.node(origin) else {
            unreachable!("node 0 is the origin");
        };
        let head = origin_state.head();
        let total_live = origin_state.registry.len();
        let mut replicated = 0;
        for &p in &peers {
            let ClusterRole::Shard(shard) = sim.node(p) else {
                unreachable!("peers are shards");
            };
            assert_eq!(shard.replica.cursor(), head);
            replicated += shard.replica.len();
        }
        assert_eq!(replicated, total_live);
    }

    #[test]
    fn lossy_links_retry_and_still_converge() {
        let lossy = LinkConfig::new(20.0, 5.0).with_loss(0.3);
        let (mut sim, origin, peers) = build_sim(11, 2, churn_script(), lossy, None);
        sim.run();
        let ClusterRole::Origin(origin_state) = sim.node(origin) else {
            unreachable!("node 0 is the origin");
        };
        let head = origin_state.head();
        for &p in &peers {
            let ClusterRole::Shard(shard) = sim.node(p) else {
                unreachable!("peers are shards");
            };
            assert_eq!(shard.replica.cursor(), head, "gossip outlasts the loss");
        }
    }

    #[test]
    fn tight_retention_forces_snapshot_fallback() {
        // Retention 0 discards every event immediately: the first pull
        // must fall back to a snapshot.
        let (mut sim, origin, peers) =
            build_sim(3, 2, churn_script(), LinkConfig::default(), Some(0));
        sim.run();
        let ClusterRole::Origin(origin_state) = sim.node(origin) else {
            unreachable!("node 0 is the origin");
        };
        assert!(origin_state.snapshot_fallbacks > 0);
        let head = origin_state.head();
        let total_live = origin_state.registry.len();
        let mut replicated = 0;
        let mut installs = 0;
        for &p in &peers {
            let ClusterRole::Shard(shard) = sim.node(p) else {
                unreachable!("peers are shards");
            };
            assert_eq!(shard.replica.cursor(), head);
            replicated += shard.replica.len();
            installs += shard.snapshot_installs;
        }
        assert_eq!(replicated, total_live);
        assert!(installs > 0);
    }

    #[test]
    fn a_failed_shard_never_blocks_the_others() {
        let (mut sim, origin, peers) = build_sim(5, 3, churn_script(), LinkConfig::default(), None);
        sim.fail_node(peers[1]);
        sim.run();
        let ClusterRole::Origin(origin_state) = sim.node(origin) else {
            unreachable!("node 0 is the origin");
        };
        let head = origin_state.head();
        // Live peers converged; the dead one is simply absent from acks.
        for p in [peers[0], peers[2]] {
            let ClusterRole::Shard(shard) = sim.node(p) else {
                unreachable!("peers are shards");
            };
            assert_eq!(shard.replica.cursor(), head);
        }
        assert!(!origin_state.acks.contains_key(&peers[1]));
        // The dead peer drops out of the origin's peer view, so the live
        // peers' convergence ends the gossip well before the round cap.
        assert!(origin_state.gossip_rounds < 64);
    }
}
