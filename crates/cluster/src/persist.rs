//! Durable shard replicas: a local WAL of applied delta batches plus
//! replica snapshots, so a restarted shard resumes replication from its
//! persisted cursor.
//!
//! Without local persistence a restarted shard peer rejoins at
//! [`ReplicaCursor::ORIGIN`] and — under any realistic event retention —
//! forces the origin into a full snapshot transfer
//! ([`SyncKind::Snapshot`]). A [`PersistentReplica`] journals every
//! *applied* delta batch through the same [`Persistence`] trait the
//! registry journal uses (DESIGN.md §14), and on reboot recovers
//! `snapshot + WAL tail` locally: the replica comes back at its old
//! cursor and catches up with an incremental [`SyncKind::Delta`]
//! instead.
//!
//! One WAL frame per batch, *batch-atomic*: the frame carries
//! `{from, to, applied}` where `applied` is the subset of events this
//! bucket accepted (rows outside the bucket only move the cursor, so
//! even an empty batch is journaled to keep the cursor chain gapless).
//! A torn tail is discarded whole — a half-applied batch can never be
//! replayed, mirroring the stale-delta rejection of
//! [`ShardReplica::apply_delta`].

use std::sync::Arc;

use qasom_ontology::Ontology;
use qasom_qos::QosModel;
use qasom_registry::persist::codec::{
    get_description, put_description, put_u32, put_u64, ByteReader,
};
use qasom_registry::persist::wal::{encode_frame, split_frames};
use qasom_registry::persist::{PersistConfig, PersistError, Persistence};
use qasom_registry::{
    DiscoveredCandidate, DiscoveryQuery, RegistryEvent, RegistrySync, ReplicaCursor,
    ServiceDescription, ServiceId, ServiceRegistry, SyncResponse,
};

use crate::shard::{ShardReplica, SyncKind};

/// Magic prefix of a replica snapshot blob (distinct from the registry
/// journal's `QSNP` so the two stores cannot be confused).
const REPLICA_SNAPSHOT_MAGIC: &[u8; 4] = b"QRSN";
/// Replica snapshot / WAL record format version.
const REPLICA_FORMAT_VERSION: u8 = 1;
/// WAL payload tag: one applied delta batch.
const TAG_BATCH: u8 = 1;

/// Counters of one [`PersistentReplica`]'s journaling activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaPersistStats {
    /// Batches appended to the local WAL.
    pub appends: u64,
    /// WAL bytes written (frames included).
    pub wal_bytes: u64,
    /// Replica snapshots checkpointed.
    pub checkpoints: u64,
}

/// What [`PersistentReplica::open`] recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaRecovery {
    /// Whether a replica snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Batches replayed from the WAL tail.
    pub batches_replayed: u64,
    /// Events (cursor distance) the replayed batches covered.
    pub events_replayed: u64,
    /// Stale batches skipped (crash between snapshot write and WAL
    /// truncation).
    pub batches_skipped: u64,
    /// Whether a torn WAL tail was discarded.
    pub torn_tail: bool,
    /// The cursor the replica resumed at.
    pub cursor: ReplicaCursor,
}

impl ReplicaRecovery {
    /// Whether recovery found any durable state at all.
    pub fn recovered_anything(&self) -> bool {
        self.snapshot_loaded || self.batches_replayed > 0
    }
}

/// Outcome of [`PersistentReplica::apply_delta`]: the journaled
/// counterpart of [`ShardReplica::apply_delta`]'s `Result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaApply {
    /// The batch was applied (this many events landed in the bucket)
    /// and journaled.
    Applied(usize),
    /// The batch did not start at the replica's cursor; nothing was
    /// applied or journaled. Re-pull from the carried cursor.
    Stale(ReplicaCursor),
}

/// A [`ShardReplica`] whose replication progress is durable.
///
/// Every mutation of the replica goes through this wrapper so the local
/// WAL and the in-memory state can never diverge: a batch is journaled
/// in the same call that applies it, and a snapshot install is
/// immediately checkpointed (full state replaces the WAL).
pub struct PersistentReplica {
    replica: ShardReplica,
    n_shards: usize,
    backend: Box<dyn Persistence + Send + Sync>,
    config: PersistConfig,
    stats: ReplicaPersistStats,
    since_checkpoint: usize,
}

impl std::fmt::Debug for PersistentReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentReplica")
            .field("bucket", &self.replica.bucket())
            .field("cursor", &self.replica.cursor())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PersistentReplica {
    /// Recovers bucket `bucket` of an `n_shards`-way cluster from
    /// `backend` (replica snapshot + WAL tail) and returns the replica
    /// with its journal.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] from the backend; [`PersistError::Corrupt`]
    /// when the store belongs to a different bucket or shard count,
    /// or a CRC-valid record fails to decode or breaks the cursor
    /// chain. A torn tail is not an error: it is discarded whole,
    /// trimmed from the stored WAL and reported.
    pub fn open(
        bucket: usize,
        n_shards: usize,
        ontology: Arc<Ontology>,
        backend: impl Persistence + Send + Sync + 'static,
        config: PersistConfig,
    ) -> Result<(Self, ReplicaRecovery), PersistError> {
        let mut backend: Box<dyn Persistence + Send + Sync> = Box::new(backend);
        let mut report = ReplicaRecovery::default();
        let mut replica = ShardReplica::new(bucket, ontology);

        if let Some(blob) = backend.snapshot_bytes()? {
            let (cursor, live) = decode_replica_snapshot(&blob, bucket, n_shards)?;
            replica.install_snapshot(n_shards, cursor, &live);
            report.snapshot_loaded = true;
        }

        let wal_bytes = backend.wal_bytes()?;
        let (frames, torn) = split_frames(&wal_bytes);
        if let Some(tear) = torn {
            report.torn_tail = true;
            // Trim the stored WAL to the valid prefix so later appends
            // continue on a clean frame boundary.
            backend.truncate_wal()?;
            backend.append_wal(&wal_bytes[..tear.offset])?;
        }

        let mut applied_any = false;
        for payload in frames {
            let batch = decode_batch(payload)?;
            let expected = replica.cursor();
            if batch.to.seq() <= expected.seq() {
                if applied_any {
                    return Err(PersistError::Corrupt(format!(
                        "replica WAL cursor went backwards: batch to {} after {}",
                        batch.to, expected
                    )));
                }
                // Stale: the snapshot already covers this batch (the
                // crash hit between snapshot write and WAL truncation).
                report.batches_skipped += 1;
                continue;
            }
            if batch.from != expected {
                return Err(PersistError::Corrupt(format!(
                    "replica WAL gap: expected batch from {expected}, found {}",
                    batch.from
                )));
            }
            report.events_replayed += batch.from.lag_behind(batch.to) as u64;
            replica.replay_applied(batch.to, &batch.applied);
            report.batches_replayed += 1;
            applied_any = true;
        }
        report.cursor = replica.cursor();

        Ok((
            PersistentReplica {
                replica,
                n_shards,
                backend,
                config,
                stats: ReplicaPersistStats::default(),
                since_checkpoint: report.batches_replayed as usize,
            },
            report,
        ))
    }

    /// The replica this journal protects.
    pub fn replica(&self) -> &ShardReplica {
        &self.replica
    }

    /// The replica's position in the origin event log.
    pub fn cursor(&self) -> ReplicaCursor {
        self.replica.cursor()
    }

    /// Journaling counters.
    pub fn stats(&self) -> ReplicaPersistStats {
        self.stats
    }

    /// Releases the replica (e.g. to hand it to a network peer). The
    /// journal is dropped; further mutations are no longer durable.
    pub fn into_replica(self) -> ShardReplica {
        self.replica
    }

    /// Applies **and journals** an event delta batch, then checkpoints
    /// if enough batches accumulated ([`PersistConfig`]).
    ///
    /// A stale batch (`from` behind the cursor) is refused exactly like
    /// [`ShardReplica::apply_delta`] and leaves the store untouched.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the backend write fails; the batch was
    /// applied in memory but not journaled, so the caller should treat
    /// the store as lost (stop journaling or fall back to snapshots).
    pub fn apply_delta(
        &mut self,
        from: ReplicaCursor,
        batch: &[(RegistryEvent, Option<ServiceDescription>)],
    ) -> Result<ReplicaApply, PersistError> {
        if from != self.replica.cursor() {
            return Ok(ReplicaApply::Stale(self.replica.cursor()));
        }
        // Precompute the *applied* subset with the exact filter of
        // [`ShardReplica::apply_delta`], so replay never re-filters.
        let bucket = self.replica.bucket();
        let ontology = Arc::clone(self.replica.taxonomy());
        let mut live: std::collections::BTreeSet<ServiceId> =
            self.replica.live_globals().into_iter().collect();
        let mut rows: Vec<(ServiceId, Option<ServiceDescription>)> = Vec::new();
        for (event, description) in batch {
            match event {
                RegistryEvent::Registered(global) => {
                    if let Some(desc) = description {
                        if crate::shard::shard_of(desc.function(), &ontology, self.n_shards)
                            == bucket
                        {
                            rows.push((*global, Some(desc.clone())));
                            live.insert(*global);
                        }
                    }
                }
                RegistryEvent::Deregistered(global) => {
                    if live.remove(global) {
                        rows.push((*global, None));
                    }
                }
            }
        }
        let applied = match self.replica.apply_delta(self.n_shards, from, batch) {
            Ok(applied) => applied,
            Err(cursor) => return Ok(ReplicaApply::Stale(cursor)),
        };
        debug_assert_eq!(applied, rows.len(), "journal mirrors the replica's filter");
        let to = self.replica.cursor();
        self.journal_batch(from, to, &rows)?;
        if self.config.checkpoint_every > 0 && self.since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(ReplicaApply::Applied(applied))
    }

    /// Installs a full snapshot **and checkpoints it**: the snapshot is
    /// the complete durable state, so the WAL restarts empty.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when persisting the checkpoint fails.
    pub fn install_snapshot(
        &mut self,
        cursor: ReplicaCursor,
        live: &[(ServiceId, ServiceDescription)],
    ) -> Result<(), PersistError> {
        self.replica.install_snapshot(self.n_shards, cursor, live);
        self.checkpoint()
    }

    /// Writes a replica snapshot of the current state and truncates the
    /// local WAL.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the backend write fails.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        let blob = encode_replica_snapshot(
            self.replica.bucket(),
            self.n_shards,
            self.replica.cursor(),
            &self.replica.live_rows(),
        );
        self.backend.write_snapshot(&blob)?;
        self.backend.truncate_wal()?;
        self.stats.checkpoints += 1;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// One journaled sync round against a local `origin` registry:
    /// delta replay when the replica's cursor is retained, snapshot
    /// install otherwise — [`ShardSet::sync_shard`]
    /// (crate::ShardSet::sync_shard) with durability.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when journaling fails.
    pub fn catch_up(&mut self, origin: &ServiceRegistry) -> Result<SyncKind, PersistError> {
        match origin.sync_from(self.replica.cursor()) {
            SyncResponse::Delta([]) => Ok(SyncKind::CaughtUp),
            SyncResponse::Delta(events) => {
                let from = self.replica.cursor();
                let batch: Vec<(RegistryEvent, Option<ServiceDescription>)> = events
                    .iter()
                    .map(|&e| {
                        let description = match e {
                            RegistryEvent::Registered(id) => origin.get(id).cloned(),
                            RegistryEvent::Deregistered(_) => None,
                        };
                        (e, description)
                    })
                    .collect();
                let n = batch.len();
                match self.apply_delta(from, &batch)? {
                    ReplicaApply::Applied(_) => Ok(SyncKind::Delta(n)),
                    // `from` was read from our own cursor, so the batch
                    // can never be stale here.
                    ReplicaApply::Stale(cursor) => Err(PersistError::Corrupt(format!(
                        "replica cursor {cursor} diverged from its own pull"
                    ))),
                }
            }
            SyncResponse::Snapshot(snap) => {
                let cursor = ReplicaCursor::new(snap.cursor);
                let live: Vec<(ServiceId, ServiceDescription)> = snap
                    .live
                    .iter()
                    .filter_map(|&id| origin.get(id).map(|d| (id, d.clone())))
                    .collect();
                self.install_snapshot(cursor, &live)?;
                Ok(SyncKind::Snapshot)
            }
        }
    }

    /// Answers a discovery query from this replica alone (global ids).
    pub fn discover_global(
        &self,
        model: &QosModel,
        query: &DiscoveryQuery<'_>,
    ) -> Vec<DiscoveredCandidate> {
        self.replica.discover_global(model, query)
    }

    fn journal_batch(
        &mut self,
        from: ReplicaCursor,
        to: ReplicaCursor,
        rows: &[(ServiceId, Option<ServiceDescription>)],
    ) -> Result<(), PersistError> {
        let mut payload = Vec::new();
        payload.push(TAG_BATCH);
        put_u64(&mut payload, from.seq() as u64);
        put_u64(&mut payload, to.seq() as u64);
        put_u32(&mut payload, rows.len() as u32);
        for (global, description) in rows {
            put_u32(&mut payload, global.raw());
            match description {
                Some(desc) => {
                    payload.push(1);
                    put_description(&mut payload, desc);
                }
                None => payload.push(0),
            }
        }
        let frame = encode_frame(&payload);
        self.backend.append_wal(&frame)?;
        self.stats.appends += 1;
        self.stats.wal_bytes += frame.len() as u64;
        self.since_checkpoint += 1;
        Ok(())
    }
}

struct DecodedBatch {
    from: ReplicaCursor,
    to: ReplicaCursor,
    applied: Vec<(ServiceId, Option<ServiceDescription>)>,
}

fn decode_batch(payload: &[u8]) -> Result<DecodedBatch, PersistError> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8()?;
    if tag != TAG_BATCH {
        return Err(PersistError::Corrupt(format!(
            "unknown replica WAL record tag {tag}"
        )));
    }
    let from = ReplicaCursor::new(r.get_u64()? as usize);
    let to = ReplicaCursor::new(r.get_u64()? as usize);
    if to.seq() < from.seq() {
        return Err(PersistError::Corrupt(format!(
            "replica WAL batch runs backwards: {from} to {to}"
        )));
    }
    let count = r.get_u32()? as usize;
    let mut applied = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let global = ServiceId::from_raw(r.get_u32()?);
        let row = match r.get_u8()? {
            0 => (global, None),
            1 => (global, Some(get_description(&mut r)?)),
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown replica WAL row tag {other}"
                )));
            }
        };
        applied.push(row);
    }
    if !r.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after replica WAL batch",
            r.remaining()
        )));
    }
    Ok(DecodedBatch { from, to, applied })
}

fn encode_replica_snapshot(
    bucket: usize,
    n_shards: usize,
    cursor: ReplicaCursor,
    live: &[(ServiceId, ServiceDescription)],
) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, cursor.seq() as u64);
    put_u32(&mut payload, bucket as u32);
    put_u32(&mut payload, n_shards as u32);
    put_u32(&mut payload, live.len() as u32);
    for (global, desc) in live {
        put_u32(&mut payload, global.raw());
        put_description(&mut payload, desc);
    }
    let mut blob = Vec::with_capacity(payload.len() + 16);
    blob.extend_from_slice(REPLICA_SNAPSHOT_MAGIC);
    blob.push(REPLICA_FORMAT_VERSION);
    blob.extend_from_slice(&encode_frame(&payload));
    blob
}

#[allow(clippy::type_complexity)]
fn decode_replica_snapshot(
    blob: &[u8],
    bucket: usize,
    n_shards: usize,
) -> Result<(ReplicaCursor, Vec<(ServiceId, ServiceDescription)>), PersistError> {
    let rest = blob
        .strip_prefix(REPLICA_SNAPSHOT_MAGIC.as_slice())
        .ok_or_else(|| PersistError::Corrupt("replica snapshot magic missing".into()))?;
    let rest = rest
        .strip_prefix(&[REPLICA_FORMAT_VERSION])
        .ok_or_else(|| PersistError::Corrupt("unsupported replica snapshot version".into()))?;
    // Snapshots are valid whole-or-not-at-all: the single frame's CRC
    // covers the full payload.
    let (frames, torn) = split_frames(rest);
    if frames.len() != 1 || torn.is_some() {
        return Err(PersistError::Corrupt(
            "replica snapshot payload is not one intact frame".into(),
        ));
    }
    let mut r = ByteReader::new(frames[0]);
    let cursor = ReplicaCursor::new(r.get_u64()? as usize);
    let stored_bucket = r.get_u32()? as usize;
    let stored_shards = r.get_u32()? as usize;
    if stored_bucket != bucket || stored_shards != n_shards {
        return Err(PersistError::Corrupt(format!(
            "replica store belongs to bucket {stored_bucket}/{stored_shards}, \
             opened as {bucket}/{n_shards}"
        )));
    }
    let count = r.get_u32()? as usize;
    let mut live = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let global = ServiceId::from_raw(r.get_u32()?);
        live.push((global, get_description(&mut r)?));
    }
    if !r.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after replica snapshot",
            r.remaining()
        )));
    }
    Ok((cursor, live))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_ontology::OntologyBuilder;
    use qasom_registry::persist::MemoryBackend;
    use qasom_task::Activity;

    fn ontology() -> Arc<Ontology> {
        let mut b = OntologyBuilder::new("cl");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.concept("Locate");
        Arc::new(b.build().unwrap())
    }

    fn open(
        bucket: usize,
        n: usize,
        backend: MemoryBackend,
        every: usize,
    ) -> (PersistentReplica, ReplicaRecovery) {
        PersistentReplica::open(
            bucket,
            n,
            ontology(),
            backend,
            PersistConfig {
                checkpoint_every: every,
            },
        )
        .unwrap()
    }

    fn seeded_origin() -> ServiceRegistry {
        let mut origin = ServiceRegistry::with_ontology(ontology());
        origin.register(ServiceDescription::new("visa", "cl#PayByCard"));
        origin.register(ServiceDescription::new("gps", "cl#Locate"));
        origin
    }

    #[test]
    fn fresh_open_recovers_nothing() {
        let (replica, report) = open(0, 1, MemoryBackend::new(), 0);
        assert!(!report.recovered_anything());
        assert_eq!(replica.cursor(), ReplicaCursor::ORIGIN);
        assert!(replica.replica().is_empty());
    }

    #[test]
    fn crash_and_reopen_resumes_at_the_persisted_cursor() {
        let backend = MemoryBackend::new();
        let mut origin = seeded_origin();
        let (mut replica, _) = open(0, 1, backend.clone(), 0);
        assert!(matches!(
            replica.catch_up(&origin).unwrap(),
            SyncKind::Delta(2)
        ));
        let victim = origin.iter().next().map(|(id, _)| id).unwrap();
        origin.deregister(victim);
        origin.register(ServiceDescription::new("visa2", "cl#PayByCard"));
        assert!(matches!(
            replica.catch_up(&origin).unwrap(),
            SyncKind::Delta(2)
        ));

        // Crash: recover from the fork, compare against the survivor.
        let (recovered, report) = open(0, 1, backend.fork(), 0);
        assert!(report.recovered_anything());
        assert!(!report.snapshot_loaded);
        assert_eq!(report.batches_replayed, 2);
        assert_eq!(report.events_replayed, 4);
        assert_eq!(recovered.cursor(), replica.cursor());
        assert_eq!(recovered.replica().len(), replica.replica().len());
        let model = QosModel::standard();
        let activity = Activity::new("pay", "cl#Pay");
        let q = DiscoveryQuery::new(&activity);
        assert_eq!(
            recovered.discover_global(&model, &q),
            replica.discover_global(&model, &q)
        );
    }

    #[test]
    fn recovered_replica_catches_up_with_a_delta_where_a_fresh_one_needs_a_snapshot() {
        let backend = MemoryBackend::new();
        let mut origin = seeded_origin();
        let (mut replica, _) = open(0, 1, backend.clone(), 0);
        replica.catch_up(&origin).unwrap();

        // More churn, then tighten retention: ORIGIN (a fresh replica's
        // cursor) falls out of the retained window, our cursor does not.
        origin.register(ServiceDescription::new("visa2", "cl#PayByCard"));
        origin.set_event_retention(1);

        let (mut recovered, _) = open(0, 1, backend.fork(), 0);
        assert!(matches!(
            recovered.catch_up(&origin).unwrap(),
            SyncKind::Delta(1)
        ));
        let (mut fresh, _) = open(0, 1, MemoryBackend::new(), 0);
        assert!(matches!(
            fresh.catch_up(&origin).unwrap(),
            SyncKind::Snapshot
        ));
        assert_eq!(recovered.cursor(), fresh.cursor());
        assert_eq!(recovered.replica().len(), fresh.replica().len());
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_reopens_snapshot_only() {
        let backend = MemoryBackend::new();
        let origin = seeded_origin();
        // checkpoint_every = 1: every batch checkpoints.
        let (mut replica, _) = open(0, 1, backend.clone(), 1);
        replica.catch_up(&origin).unwrap();
        assert_eq!(replica.stats().checkpoints, 1);
        assert_eq!(backend.wal_len(), 0, "checkpoint truncated the WAL");

        let (recovered, report) = open(0, 1, backend.fork(), 1);
        assert!(report.snapshot_loaded);
        assert_eq!(report.batches_replayed, 0);
        assert_eq!(recovered.cursor(), replica.cursor());
        assert_eq!(recovered.replica().len(), replica.replica().len());
    }

    #[test]
    fn torn_wal_tail_is_discarded_whole_never_half_applied() {
        let backend = MemoryBackend::new();
        let mut origin = seeded_origin();
        let (mut replica, _) = open(0, 1, backend.clone(), 0);
        replica.catch_up(&origin).unwrap();
        origin.register(ServiceDescription::new("visa2", "cl#PayByCard"));
        replica.catch_up(&origin).unwrap();

        // Tear the last frame: the whole second batch must vanish.
        let crash = backend.fork();
        let mut wal = crash.wal_bytes().unwrap();
        let keep = wal.len() - 3;
        wal.truncate(keep);
        crash.set_wal(wal);
        // `clone` shares the storage, so the recovery's tail trim lands
        // in `crash` and the reopen below sees the repaired store.
        let (recovered, report) = open(0, 1, crash.clone(), 0);
        assert!(report.torn_tail);
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(recovered.cursor(), ReplicaCursor::new(2));
        assert_eq!(recovered.replica().len(), 2);
        // The trimmed store reopens cleanly with no tear.
        let (again, report2) = open(0, 1, crash, 0);
        assert!(!report2.torn_tail);
        assert_eq!(again.cursor(), recovered.cursor());
    }

    #[test]
    fn a_store_for_another_bucket_is_refused() {
        let backend = MemoryBackend::new();
        let origin = seeded_origin();
        let (mut replica, _) = open(0, 2, backend.clone(), 1);
        replica.catch_up(&origin).unwrap();
        let err =
            PersistentReplica::open(1, 2, ontology(), backend.fork(), PersistConfig::default())
                .unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn empty_batches_keep_the_cursor_chain_gapless() {
        // A bucket that owns none of the origin's services journals
        // empty batches — and must still recover at the right cursor,
        // or a reboot would re-pull (and double-apply) old events.
        let backend = MemoryBackend::new();
        let onto = ontology();
        let mut origin = ServiceRegistry::with_ontology(Arc::clone(&onto));
        origin.register(ServiceDescription::new("visa", "cl#PayByCard"));
        let quiet = 1 - crate::shard::shard_of(&"cl#PayByCard".parse().unwrap(), &onto, 2);
        let (mut replica, _) = open(quiet, 2, backend.clone(), 0);
        assert!(matches!(
            replica.catch_up(&origin).unwrap(),
            SyncKind::Delta(1)
        ));
        assert!(replica.replica().is_empty(), "the event is out of bucket");
        let (recovered, report) = open(quiet, 2, backend.fork(), 0);
        assert_eq!(recovered.cursor(), origin.sync_cursor());
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(report.events_replayed, 1);
        assert!(recovered.replica().is_empty());
    }
}
