//! Clustered registry: capability-bucket shards with epoch-gossip
//! replication.
//!
//! A single in-process [`ServiceRegistry`](qasom_registry::ServiceRegistry)
//! is the middleware's bottleneck once a pervasive environment spans many
//! hosts: every discovery probe and every churn event funnels through one
//! directory. This crate partitions the directory into **capability
//! buckets** — shards keyed on the canonical concept of each service's
//! function — and keeps the shards convergent with an epoch-gossip
//! protocol built on the registry's typed
//! [`RegistrySync`](qasom_registry::RegistrySync) surface:
//!
//! * [`shard`] — the bucket function ([`shard_of`]), per-shard replicas
//!   ([`ShardReplica`]) and the deterministic control plane
//!   ([`ShardSet`]): direct sync plus scatter/gather discovery, merged
//!   in the single-registry oracle's exact order;
//! * [`protocol`] — the peer messages: head gossip, cursor pulls,
//!   event deltas with head-resolved descriptions, and the snapshot
//!   fallback taken when a replica's cursor falls out of the origin's
//!   retained event window;
//! * [`peer`] — the origin and shard node behaviours over the
//!   deterministic network simulator, with seeded-backoff retries
//!   ([`RetryPolicy`](qasom_selection::distributed::RetryPolicy)) and
//!   shard-failure tolerance: a lost shard degrades coverage, it never
//!   fails a query;
//! * [`manager`] — the run driver ([`ClusterSim`]) and its
//!   byte-reproducible [`ClusterReport`], including the closing
//!   oracle-equivalence audit;
//! * [`bridge`] — the serving front-end ([`ClusterBridge`]): a gathered
//!   shard set assembled into a [`SharedEnvironment`](qasom::SharedEnvironment)
//!   and served through the daemon's loopback frame transport;
//! * [`persist`] — durable replicas ([`PersistentReplica`]): applied
//!   delta batches journaled to a local CRC-framed WAL with replica
//!   snapshots (DESIGN.md §14), so a rebooted shard resumes at its
//!   persisted cursor with an incremental delta instead of forcing the
//!   origin into a snapshot transfer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod manager;
pub mod peer;
pub mod persist;
pub mod protocol;
pub mod shard;

pub use bridge::{BridgeReport, ClusterBridge};
pub use manager::{ClusterConfig, ClusterReport, ClusterSim};
pub use peer::{ChurnOp, ClusterRole, OriginState, ShardPeerState};
pub use persist::{PersistentReplica, ReplicaApply, ReplicaPersistStats, ReplicaRecovery};
pub use protocol::PeerMessage;
pub use shard::{shard_of, GatherOutcome, ShardReplica, ShardSet, SyncKind};
