//! Serving sessions against the sharded registry through the daemon's
//! frame transport.
//!
//! The bridge closes the loop between the replication plane and the
//! serving plane: a converged [`ShardSet`] is gathered into one serving
//! [`Environment`], wrapped in a [`SharedEnvironment`], and sessions are
//! driven through the daemon's loopback frame transport
//! ([`LoopbackDaemon`]) — the same wire codec, admission control and
//! batching `qasomd` uses on TCP. The bridge remembers each shard's
//! replication position at assembly time in its peer table, so serving
//! staleness against a moving origin head is an explicit, queryable
//! bound instead of silent drift.
//!
//! Lock discipline: the peer table (`peers`) ranks between the
//! environment lock and the discovery-internal locks — assembly and
//! staleness queries may consult it while holding the environment, never
//! the other way round.

use std::collections::BTreeMap;
use std::sync::RwLock;

use qasom::{Environment, SharedEnvironment, UserRequest};
use qasom_daemon::{BrokerConfig, ClientEvent, ClientOutcome, LoopbackDaemon};
use qasom_netsim::runtime::SyntheticService;
use qasom_qos::QosModel;
use qasom_registry::ReplicaCursor;

use crate::shard::ShardSet;

/// Session totals of one bridged serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BridgeReport {
    /// Sessions submitted over the frame transport.
    pub submitted: u64,
    /// Sessions that completed execution.
    pub completed: u64,
    /// Sessions shed by admission control.
    pub shed: u64,
    /// Sessions rejected by static analysis.
    pub rejected: u64,
    /// Sessions that failed in compose/execute.
    pub failed: u64,
}

/// A serving front-end over a gathered shard set.
pub struct ClusterBridge {
    shared: SharedEnvironment,
    /// Bucket → replication position at assembly time.
    peers: RwLock<BTreeMap<usize, ReplicaCursor>>,
    live_shards: usize,
}

impl ClusterBridge {
    /// Gathers every live shard's services into one serving environment.
    ///
    /// The assembled registry holds each service exactly once (buckets
    /// partition the directory), advertised with its replicated
    /// description and served faithfully to its advertised QoS.
    pub fn assemble(set: &ShardSet, seed: u64) -> Self {
        let mut env = Environment::new(QosModel::standard(), (**set.ontology()).clone(), seed);
        let mut peers = BTreeMap::new();
        let mut live_shards = 0;
        for shard in set.shards() {
            if !shard.is_alive() {
                continue;
            }
            live_shards += 1;
            peers.insert(shard.bucket(), shard.cursor());
            for (_, desc) in shard.registry().iter() {
                let nominal = desc.qos().clone();
                env.deploy(desc.clone(), SyntheticService::new(nominal));
            }
        }
        ClusterBridge {
            shared: SharedEnvironment::new(env),
            peers: RwLock::new(peers),
            live_shards,
        }
    }

    /// The serving handle (the daemon side of the bridge).
    pub fn shared(&self) -> &SharedEnvironment {
        &self.shared
    }

    /// Shards that contributed services.
    pub fn live_shards(&self) -> usize {
        self.live_shards
    }

    /// How far the most-lagged assembled shard trails `head`, in events.
    pub fn staleness(&self, head: ReplicaCursor) -> usize {
        let peers = self.peers.read().unwrap_or_else(|e| e.into_inner());
        peers
            .values()
            .map(|c| c.lag_behind(head))
            .max()
            .unwrap_or(0)
    }

    /// The replication position recorded for `bucket` at assembly.
    pub fn peer_cursor(&self, bucket: usize) -> Option<ReplicaCursor> {
        let peers = self.peers.read().unwrap_or_else(|e| e.into_inner());
        peers.get(&bucket).copied()
    }

    /// Serves `requests` through the daemon's loopback frame transport:
    /// one connection, one `COMPOSE` frame per request, then scheduling
    /// rounds until every reply arrived (or `max_rounds` passed).
    pub fn serve_sessions(
        &self,
        requests: &[UserRequest],
        config: BrokerConfig,
        max_rounds: usize,
    ) -> BridgeReport {
        let mut daemon = LoopbackDaemon::new(self.shared.clone(), config);
        let client = daemon.connect();
        let mut report = BridgeReport::default();
        if daemon.send_hello(client, "cluster-bridge").is_err() {
            return report;
        }
        for (i, request) in requests.iter().enumerate() {
            if daemon.send_compose(client, i as u64 + 1, request).is_ok() {
                report.submitted += 1;
            }
        }
        let mut replies = 0u64;
        for _ in 0..max_rounds.max(1) {
            daemon.pump();
            let events = daemon.drain_events(client).unwrap_or_default();
            for event in events {
                match event {
                    ClientEvent::HelloAck(_) => {}
                    ClientEvent::Reply { outcome, .. } => {
                        replies += 1;
                        match outcome {
                            ClientOutcome::Completed(_) => report.completed += 1,
                            ClientOutcome::Busy { .. } => report.shed += 1,
                            ClientOutcome::Rejected(_) => report.rejected += 1,
                            ClientOutcome::Failed { .. } => report.failed += 1,
                        }
                    }
                }
            }
            if replies >= report.submitted {
                break;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use qasom_registry::{RegistrySync, ServiceDescription, ServiceRegistry};
    use qasom_task::{Activity, TaskNode, UserTask};

    fn world() -> (Arc<qasom_ontology::Ontology>, ServiceRegistry) {
        let mut b = qasom_ontology::OntologyBuilder::new("cl");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.concept("Locate");
        let onto = Arc::new(b.build().unwrap());
        let mut origin = ServiceRegistry::with_ontology(Arc::clone(&onto));
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        origin.register(
            ServiceDescription::new("visa", "cl#PayByCard")
                .with_qos(rt, 40.0)
                .with_provider("visa"),
        );
        origin.register(
            ServiceDescription::new("gps", "cl#Locate")
                .with_qos(rt, 25.0)
                .with_provider("gps"),
        );
        (onto, origin)
    }

    fn request() -> UserRequest {
        let task = UserTask::new(
            "trip",
            TaskNode::sequence(vec![
                TaskNode::activity(Activity::new("locate", "cl#Locate")),
                TaskNode::activity(Activity::new("pay", "cl#Pay")),
            ]),
        )
        .unwrap();
        UserRequest::new(task).weight("Delay", 1.0)
    }

    #[test]
    fn sessions_are_served_against_the_gathered_shards() {
        let (onto, origin) = world();
        let mut set = ShardSet::new(2, Arc::clone(&onto));
        set.sync_all(&origin);
        let bridge = ClusterBridge::assemble(&set, 11);
        assert_eq!(bridge.live_shards(), 2);
        assert_eq!(bridge.staleness(origin.sync_cursor()), 0);
        let requests = vec![request(), request()];
        let report = bridge.serve_sessions(&requests, BrokerConfig::default(), 16);
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 2, "both sessions compose and execute");
    }

    #[test]
    fn staleness_is_reported_against_a_moving_head() {
        let (onto, mut origin) = world();
        let mut set = ShardSet::new(2, Arc::clone(&onto));
        set.sync_all(&origin);
        let bridge = ClusterBridge::assemble(&set, 3);
        // The origin moves on after assembly: the bridge knows its lag.
        origin.register(ServiceDescription::new("late", "cl#Locate"));
        origin.register(ServiceDescription::new("later", "cl#Pay"));
        assert_eq!(bridge.staleness(origin.sync_cursor()), 2);
        assert!(bridge.peer_cursor(0).is_some());
        assert!(bridge.peer_cursor(2).is_none());
    }

    #[test]
    fn a_lost_shard_still_serves_its_surviving_buckets() {
        let (onto, origin) = world();
        let mut set = ShardSet::new(2, Arc::clone(&onto));
        set.sync_all(&origin);
        let lost = set.bucket_of(&"cl#PayByCard".parse().unwrap());
        set.fail_shard(lost);
        let bridge = ClusterBridge::assemble(&set, 5);
        assert_eq!(bridge.live_shards(), 1);
        // A task needing only the surviving bucket completes; one that
        // needs the lost bucket fails typed — never panics.
        let locate_only = {
            let task = UserTask::new(
                "locate-only",
                TaskNode::activity(Activity::new("locate", "cl#Locate")),
            )
            .unwrap();
            UserRequest::new(task).weight("Delay", 1.0)
        };
        let report = bridge.serve_sessions(&[locate_only, request()], BrokerConfig::default(), 16);
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 1, "the lost bucket degrades, not panics");
    }
}
