//! Capability-bucket shards and scatter/gather discovery.
//!
//! The clustered registry partitions the service directory into `N`
//! shards keyed on the *capability bucket* of each advertisement: the
//! canonical concept of the service's function when the domain ontology
//! knows it, or the raw IRI otherwise, hashed onto `0..N`. The bucket
//! governs **placement only** — semantic discovery matches through
//! subsumption, so a query for `Pay` must also reach the shard holding
//! `PayByCard`. Queries therefore always fan out to every live shard
//! ([`ShardSet::scatter_gather`]) and the per-shard candidate lists are
//! merged back in the exact order the single-registry oracle produces.
//!
//! Each shard replica tracks its position in the origin's event log with
//! a [`ReplicaCursor`] and catches up through the typed [`RegistrySync`]
//! surface: an incremental event delta when the cursor is inside the
//! retained window, a full snapshot otherwise. The deterministic plane in
//! this module syncs replicas directly against an origin registry; the
//! [`peer`](crate::peer) module runs the same state machine over the
//! network simulator with loss, retries and shard failure.

use std::collections::BTreeMap;
use std::sync::Arc;

use qasom_ontology::{Iri, Ontology};
use qasom_qos::QosModel;
use qasom_registry::{
    DiscoveredCandidate, Discovery, DiscoveryQuery, MatchCache, RegistryEvent, RegistrySync,
    ReplicaCursor, ServiceDescription, ServiceId, ServiceRegistry, SyncResponse,
};

/// The capability bucket `function` falls into, out of `n_shards`.
///
/// Declared-equivalent concepts hash identically (the canonical IRI is
/// hashed), so re-advertisements under an alias land on the same shard.
/// IRIs unknown to the ontology hash syntactically.
pub fn shard_of(function: &Iri, ontology: &Ontology, n_shards: usize) -> usize {
    let canonical;
    let key: &Iri = match ontology.concept(function) {
        Some(c) => {
            canonical = ontology.iri(ontology.canon(c));
            canonical
        }
        None => function,
    };
    let mut h = fnv1a(key.namespace().as_bytes());
    h = fnv1a_continue(h, b"#");
    h = fnv1a_continue(h, key.local_name().as_bytes());
    (h % n_shards.max(1) as u64) as usize
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// How one sync round caught a replica up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// The replica was already at the head.
    CaughtUp,
    /// An incremental delta of this many events was replayed.
    Delta(usize),
    /// The cursor had fallen out of the retained window; a snapshot was
    /// installed.
    Snapshot,
}

/// One shard replica: its bucket's slice of the directory as a private
/// capability-indexed registry, plus the replication cursor.
pub struct ShardReplica {
    bucket: usize,
    ontology: Arc<Ontology>,
    registry: ServiceRegistry,
    /// Origin (global) id → shard-local id, for event routing.
    to_local: BTreeMap<ServiceId, ServiceId>,
    /// Shard-local dense id → the global id the candidate is known by.
    global_ids: Vec<ServiceId>,
    cursor: ReplicaCursor,
    alive: bool,
    cache: MatchCache,
}

impl ShardReplica {
    /// An empty replica for `bucket`, indexed under `ontology`.
    pub fn new(bucket: usize, ontology: Arc<Ontology>) -> Self {
        ShardReplica {
            bucket,
            registry: ServiceRegistry::with_ontology(Arc::clone(&ontology)),
            ontology,
            to_local: BTreeMap::new(),
            global_ids: Vec::new(),
            cursor: ReplicaCursor::ORIGIN,
            alive: true,
            cache: MatchCache::new(),
        }
    }

    /// The bucket this replica owns.
    pub fn bucket(&self) -> usize {
        self.bucket
    }

    /// The replica's position in the origin event log.
    pub fn cursor(&self) -> ReplicaCursor {
        self.cursor
    }

    /// Whether the replica is reachable.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Live services currently held by this shard.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the shard holds no service.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// The shard's private registry (for inspection; mutate only through
    /// the replication surface).
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Marks the replica unreachable: it stops syncing and answering
    /// queries, and scatter/gather reports degraded coverage.
    pub fn fail(&mut self) {
        self.alive = false;
    }

    /// Replays an event delta starting exactly at this replica's cursor.
    ///
    /// Events outside the replica's bucket only advance the cursor.
    /// A batch whose `from` does not equal the current cursor is dropped
    /// (`Err` carries the cursor to re-pull from): deltas are idempotent
    /// at the protocol level by re-requesting, not by partial replay.
    ///
    /// # Errors
    ///
    /// Returns the replica's actual cursor when `from` does not match it.
    pub fn apply_delta(
        &mut self,
        n_shards: usize,
        from: ReplicaCursor,
        batch: &[(RegistryEvent, Option<ServiceDescription>)],
    ) -> Result<usize, ReplicaCursor> {
        if from != self.cursor {
            return Err(self.cursor);
        }
        let mut applied = 0;
        for (event, description) in batch {
            match event {
                RegistryEvent::Registered(global) => {
                    // A missing description means the service was
                    // deregistered later in this very suffix (the origin
                    // resolves descriptions at its head); skipping both
                    // events yields the same state at the head.
                    if let Some(desc) = description {
                        if shard_of(desc.function(), &self.ontology, n_shards) == self.bucket {
                            let local = self.registry.register(desc.clone());
                            self.to_local.insert(*global, local);
                            debug_assert_eq!(local.index(), self.global_ids.len());
                            self.global_ids.push(*global);
                            applied += 1;
                        }
                    }
                }
                RegistryEvent::Deregistered(global) => {
                    if let Some(local) = self.to_local.remove(global) {
                        self.registry.deregister(local);
                        applied += 1;
                    }
                }
            }
            self.cursor = self.cursor.advanced_by(1);
        }
        Ok(applied)
    }

    /// Replays a journaled applied-subset batch: rows this bucket
    /// already accepted once (no re-filtering), then jumps the cursor to
    /// `to`. Persistence recovery only
    /// ([`PersistentReplica`](crate::persist::PersistentReplica)) —
    /// live replication goes through [`ShardReplica::apply_delta`].
    pub(crate) fn replay_applied(
        &mut self,
        to: ReplicaCursor,
        applied: &[(ServiceId, Option<ServiceDescription>)],
    ) {
        for (global, description) in applied {
            match description {
                Some(desc) => {
                    let local = self.registry.register(desc.clone());
                    self.to_local.insert(*global, local);
                    debug_assert_eq!(local.index(), self.global_ids.len());
                    self.global_ids.push(*global);
                }
                None => {
                    if let Some(local) = self.to_local.remove(global) {
                        self.registry.deregister(local);
                    }
                }
            }
        }
        self.cursor = to;
    }

    /// The bucket's live rows with their global ids, local-id order —
    /// the replica-snapshot payload of the persistence layer.
    pub(crate) fn live_rows(&self) -> Vec<(ServiceId, ServiceDescription)> {
        self.registry
            .iter()
            .map(|(local, desc)| (self.global_ids[local.index()], desc.clone()))
            .collect()
    }

    /// Globals currently live in this bucket, ascending.
    pub(crate) fn live_globals(&self) -> Vec<ServiceId> {
        self.to_local.keys().copied().collect()
    }

    /// The taxonomy this replica routes buckets under.
    pub(crate) fn taxonomy(&self) -> &Arc<Ontology> {
        &self.ontology
    }

    /// Installs a full snapshot, replacing the replica's state.
    ///
    /// `live` must be sorted by global id (the origin's snapshot order);
    /// only this bucket's services are kept.
    pub fn install_snapshot(
        &mut self,
        n_shards: usize,
        cursor: ReplicaCursor,
        live: &[(ServiceId, ServiceDescription)],
    ) {
        self.registry = ServiceRegistry::with_ontology(Arc::clone(&self.ontology));
        self.to_local.clear();
        self.global_ids.clear();
        for (global, desc) in live {
            if shard_of(desc.function(), &self.ontology, n_shards) == self.bucket {
                let local = self.registry.register(desc.clone());
                self.to_local.insert(*global, local);
                self.global_ids.push(*global);
            }
        }
        self.cursor = cursor;
    }

    /// Answers a discovery query from this shard alone, with candidate
    /// ids translated back to the origin's (global) ids.
    pub fn discover_global(
        &self,
        model: &QosModel,
        query: &DiscoveryQuery<'_>,
    ) -> Vec<DiscoveredCandidate> {
        let discovery = Discovery::with_cache(&self.ontology, model, &self.cache);
        let mut found = discovery.discover(&self.registry, query);
        for candidate in &mut found {
            if let Some(&global) = self.global_ids.get(candidate.service.index()) {
                candidate.service = global;
            }
        }
        found
    }
}

/// Result of one scatter/gather discovery round.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherOutcome {
    /// Merged candidates in the single-registry oracle's order:
    /// match degree descending, then global service id ascending.
    pub candidates: Vec<DiscoveredCandidate>,
    /// Shards that answered.
    pub shards_queried: usize,
    /// Shards skipped because they are down — coverage is degraded, the
    /// query still succeeds on the remaining shards.
    pub shards_lost: usize,
    /// The most stale position among the answering shards; the gather is
    /// consistent with the oracle at (at least) this cursor restricted
    /// to the answering buckets.
    pub min_cursor: ReplicaCursor,
}

impl GatherOutcome {
    /// Whether any shard was unreachable.
    pub fn degraded(&self) -> bool {
        self.shards_lost > 0
    }
}

/// A full set of shard replicas plus the deterministic control plane:
/// direct (in-process) sync against an origin registry, and
/// scatter/gather discovery over the live shards.
pub struct ShardSet {
    ontology: Arc<Ontology>,
    shards: Vec<ShardReplica>,
}

impl ShardSet {
    /// `n` empty replicas indexed under `ontology`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize, ontology: Arc<Ontology>) -> Self {
        assert!(n > 0, "a cluster needs at least one shard");
        let shards = (0..n)
            .map(|bucket| ShardReplica::new(bucket, Arc::clone(&ontology)))
            .collect();
        ShardSet { ontology, shards }
    }

    /// Number of shards (dead ones included).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The taxonomy every replica indexes under.
    pub fn ontology(&self) -> &Arc<Ontology> {
        &self.ontology
    }

    /// The replicas, bucket order.
    pub fn shards(&self) -> &[ShardReplica] {
        &self.shards
    }

    /// One replica by bucket.
    pub fn shard(&self, bucket: usize) -> &ShardReplica {
        &self.shards[bucket]
    }

    /// Marks a shard unreachable.
    pub fn fail_shard(&mut self, bucket: usize) {
        self.shards[bucket].fail();
    }

    /// The bucket a function IRI routes to in this set.
    pub fn bucket_of(&self, function: &Iri) -> usize {
        shard_of(function, &self.ontology, self.shards.len())
    }

    /// Syncs one live replica against `origin` through [`RegistrySync`]:
    /// delta replay when the cursor is retained, snapshot otherwise.
    pub fn sync_shard(&mut self, bucket: usize, origin: &ServiceRegistry) -> SyncKind {
        let n = self.shards.len();
        let shard = &mut self.shards[bucket];
        if !shard.alive {
            return SyncKind::CaughtUp;
        }
        match origin.sync_from(shard.cursor) {
            SyncResponse::Delta([]) => SyncKind::CaughtUp,
            SyncResponse::Delta(events) => {
                let from = shard.cursor;
                let batch: Vec<(RegistryEvent, Option<ServiceDescription>)> = events
                    .iter()
                    .map(|&e| {
                        let description = match e {
                            RegistryEvent::Registered(id) => origin.get(id).cloned(),
                            RegistryEvent::Deregistered(_) => None,
                        };
                        (e, description)
                    })
                    .collect();
                // `from` was read from the shard's own cursor just
                // above, so the batch can never be stale here.
                if let Err(cursor) = shard.apply_delta(n, from, &batch) {
                    panic!("shard {bucket} cursor {cursor} diverged from its own pull");
                }
                SyncKind::Delta(batch.len())
            }
            SyncResponse::Snapshot(snap) => {
                let cursor = ReplicaCursor::new(snap.cursor);
                let live: Vec<(ServiceId, ServiceDescription)> = snap
                    .live
                    .iter()
                    .filter_map(|&id| origin.get(id).map(|d| (id, d.clone())))
                    .collect();
                shard.install_snapshot(n, cursor, &live);
                SyncKind::Snapshot
            }
        }
    }

    /// Syncs every live replica to `origin`'s head.
    pub fn sync_all(&mut self, origin: &ServiceRegistry) -> Vec<SyncKind> {
        (0..self.shards.len())
            .map(|bucket| self.sync_shard(bucket, origin))
            .collect()
    }

    /// Scatter/gather discovery: fans `query` across every live shard
    /// and merges the per-shard candidates into the oracle's order.
    ///
    /// Dead shards are skipped, never waited on: their buckets simply do
    /// not contribute candidates and the outcome reports the loss.
    pub fn scatter_gather(&self, model: &QosModel, query: &DiscoveryQuery<'_>) -> GatherOutcome {
        let mut candidates = Vec::new();
        let mut shards_queried = 0;
        let mut shards_lost = 0;
        let mut min_cursor: Option<ReplicaCursor> = None;
        for shard in &self.shards {
            if !shard.alive {
                shards_lost += 1;
                continue;
            }
            shards_queried += 1;
            min_cursor = Some(match min_cursor {
                Some(m) => m.min(shard.cursor),
                None => shard.cursor,
            });
            candidates.extend(shard.discover_global(model, query));
        }
        // Each service lives in exactly one bucket, so concatenation has
        // no duplicates and the oracle's comparator fully determines the
        // merged order.
        candidates.sort_by(|a, b| b.degree.cmp(&a.degree).then(a.service.cmp(&b.service)));
        GatherOutcome {
            candidates,
            shards_queried,
            shards_lost,
            min_cursor: min_cursor.unwrap_or(ReplicaCursor::ORIGIN),
        }
    }

    /// Staleness bound: how far the most-lagged live replica trails
    /// `head`, in events.
    pub fn max_staleness(&self, head: ReplicaCursor) -> usize {
        self.shards
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.cursor.lag_behind(head))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_ontology::OntologyBuilder;
    use qasom_task::Activity;

    fn world() -> (Arc<Ontology>, QosModel) {
        let mut b = OntologyBuilder::new("cl");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.concept("Locate");
        (
            Arc::new(b.build().unwrap()),
            qasom_qos::QosModel::standard(),
        )
    }

    fn origin(ontology: &Arc<Ontology>) -> ServiceRegistry {
        ServiceRegistry::with_ontology(Arc::clone(ontology))
    }

    #[test]
    fn shard_key_is_stable_and_alias_invariant() {
        let (onto, _) = world();
        let pay: Iri = "cl#Pay".parse().unwrap();
        for n in [1, 2, 4, 8] {
            let b = shard_of(&pay, &onto, n);
            assert!(b < n);
            assert_eq!(b, shard_of(&pay, &onto, n), "stable across calls");
        }
        // Unknown IRIs still route deterministically.
        let unknown: Iri = "cl#NeverDeclared".parse().unwrap();
        assert_eq!(shard_of(&unknown, &onto, 4), shard_of(&unknown, &onto, 4));
    }

    #[test]
    fn delta_sync_routes_events_to_the_owning_bucket() {
        let (onto, model) = world();
        let mut origin = origin(&onto);
        let mut set = ShardSet::new(4, Arc::clone(&onto));
        origin.register(ServiceDescription::new("visa", "cl#PayByCard"));
        origin.register(ServiceDescription::new("gps", "cl#Locate"));
        let kinds = set.sync_all(&origin);
        assert!(kinds.iter().all(|k| !matches!(k, SyncKind::Snapshot)));
        let total: usize = set.shards().iter().map(ShardReplica::len).sum();
        assert_eq!(total, 2, "each service lives in exactly one shard");
        for shard in set.shards() {
            assert_eq!(shard.cursor(), origin.sync_cursor());
        }
        // Subsumption: a query for Pay reaches PayByCard wherever it is.
        let activity = Activity::new("pay", "cl#Pay");
        let gathered = set.scatter_gather(&model, &DiscoveryQuery::new(&activity));
        assert_eq!(gathered.candidates.len(), 1);
        assert_eq!(gathered.shards_queried, 4);
        assert!(!gathered.degraded());
    }

    #[test]
    fn snapshot_fallback_rebuilds_a_lagged_shard() {
        let (onto, _) = world();
        let mut origin = origin(&onto);
        let mut set = ShardSet::new(2, Arc::clone(&onto));
        let a = origin.register(ServiceDescription::new("visa", "cl#PayByCard"));
        origin.register(ServiceDescription::new("gps", "cl#Locate"));
        origin.deregister(a);
        origin.register(ServiceDescription::new("visa2", "cl#PayByCard"));
        origin.set_event_retention(1);
        let kinds = set.sync_all(&origin);
        assert!(kinds.iter().all(|k| matches!(k, SyncKind::Snapshot)));
        let total: usize = set.shards().iter().map(ShardReplica::len).sum();
        assert_eq!(total, origin.len());
        assert_eq!(set.max_staleness(origin.sync_cursor()), 0);
    }

    #[test]
    fn dead_shards_degrade_coverage_without_panicking() {
        let (onto, model) = world();
        let mut origin = origin(&onto);
        let mut set = ShardSet::new(2, Arc::clone(&onto));
        origin.register(ServiceDescription::new("visa", "cl#PayByCard"));
        origin.register(ServiceDescription::new("gps", "cl#Locate"));
        set.sync_all(&origin);
        let lost_bucket = set.bucket_of(&"cl#PayByCard".parse().unwrap());
        set.fail_shard(lost_bucket);
        let activity = Activity::new("pay", "cl#Pay");
        let gathered = set.scatter_gather(&model, &DiscoveryQuery::new(&activity));
        assert_eq!(gathered.shards_lost, 1);
        assert!(gathered.degraded());
        assert!(gathered.candidates.is_empty(), "the bucket owner is down");
        // The surviving bucket still answers its own queries.
        let locate = Activity::new("locate", "cl#Locate");
        let gathered = set.scatter_gather(&model, &DiscoveryQuery::new(&locate));
        assert_eq!(gathered.candidates.len(), 1);
    }

    #[test]
    fn stale_delta_batches_are_rejected_not_replayed() {
        let (onto, _) = world();
        let mut replica = ShardReplica::new(0, Arc::clone(&onto));
        let desc = ServiceDescription::new("visa", "cl#PayByCard");
        let gid = ServiceRegistry::new().register(desc.clone());
        let batch = vec![(RegistryEvent::Registered(gid), Some(desc))];
        assert!(replica
            .apply_delta(1, ReplicaCursor::ORIGIN, &batch)
            .is_ok());
        // Re-delivering the same batch (duplicate in flight) is refused.
        let err = replica.apply_delta(1, ReplicaCursor::ORIGIN, &batch);
        assert_eq!(err, Err(ReplicaCursor::new(1)));
        assert_eq!(replica.len(), 1);
    }
}
