//! Extended vertex-disjoint subgraph homeomorphism over behavioural
//! graphs.
//!
//! A *pattern* graph `G1` is homeomorphic to a subgraph of a *host* graph
//! `G2` when there is an injective vertex mapping `φ` such that every
//! pattern edge `(u, v)` corresponds to a host path `φ(u) ⇝ φ(v)`, and all
//! those paths are internally vertex-disjoint (and avoid every mapped
//! vertex). The *extended* variant used by behavioural adaptation adds:
//!
//! * **semantic vertex matching** — which host vertex may represent which
//!   pattern vertex is decided by a caller-supplied compatibility
//!   predicate (ontology-based function matching + I/O constraints);
//! * **particular vertex mappings** — selected pattern vertices are
//!   pinned to specific host vertices up front (start/end vertices, the
//!   already-executed prefix).
//!
//! The decision problem is NP-complete in general; task-scale behavioural
//! graphs (tens of vertices) keep the backtracking search fast, and the
//! search is deterministic.

use std::collections::HashMap;

use qasom_task::{BehaviouralGraph, VertexId};

/// A witness of a successful embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homeomorphism {
    /// Injective pattern → host vertex mapping.
    pub vertex_map: HashMap<VertexId, VertexId>,
    /// One host path per pattern edge: `((u, v), [φ(u), …, φ(v)])`.
    pub paths: Vec<((VertexId, VertexId), Vec<VertexId>)>,
}

impl Homeomorphism {
    /// The host vertex a pattern vertex maps to.
    pub fn image(&self, pattern_vertex: VertexId) -> Option<VertexId> {
        self.vertex_map.get(&pattern_vertex).copied()
    }
}

/// Searches for a vertex-disjoint subgraph homeomorphism of `pattern`
/// into `host`.
///
/// `compatible(p, h)` decides whether pattern vertex `p` may map to host
/// vertex `h`; `pinned` forces specific mappings (they must themselves be
/// compatible, or the search fails immediately).
///
/// Returns the first embedding found (deterministic order), or `None`.
///
/// # Examples
///
/// ```
/// use qasom_adaptation::find_homeomorphism;
/// use qasom_task::{Activity, BehaviouralGraph, TaskNode, UserTask};
///
/// let seq = |names: &[&str]| {
///     UserTask::new(
///         "t",
///         TaskNode::sequence(
///             names
///                 .iter()
///                 .map(|n| TaskNode::activity(Activity::new(*n, "x#F"))),
///         ),
///     )
///     .unwrap()
/// };
/// let pattern = BehaviouralGraph::from_task(&seq(&["a", "c"]));
/// let host = BehaviouralGraph::from_task(&seq(&["a", "b", "c"]));
///
/// // Match activities by name; start/end by kind.
/// let m = find_homeomorphism(&pattern, &host, &mut |p, h| {
///     match (pattern.vertex(p).activity(), host.vertex(h).activity()) {
///         (Some(pa), Some(ha)) => pa.name() == ha.name(),
///         (None, None) => pattern.vertex(p).kind() == host.vertex(h).kind(),
///         _ => false,
///     }
/// }, &[]);
/// assert!(m.is_some()); // a ⇝ c via b
/// ```
pub fn find_homeomorphism(
    pattern: &BehaviouralGraph,
    host: &BehaviouralGraph,
    compatible: &mut dyn FnMut(VertexId, VertexId) -> bool,
    pinned: &[(VertexId, VertexId)],
) -> Option<Homeomorphism> {
    if pattern.len() > host.len() {
        return None;
    }

    // Preliminary verification: every pinned pair must be compatible and
    // injective.
    let mut forced: HashMap<VertexId, VertexId> = HashMap::new();
    let mut used_hosts: Vec<VertexId> = Vec::new();
    for &(p, h) in pinned {
        if !compatible(p, h) {
            return None;
        }
        if let Some(&existing) = forced.get(&p) {
            if existing != h {
                return None;
            }
            continue;
        }
        if used_hosts.contains(&h) {
            return None;
        }
        forced.insert(p, h);
        used_hosts.push(h);
    }

    // Candidate host vertices per pattern vertex (preliminary vertex
    // mapping). Order pattern vertices by ascending candidate count —
    // most-constrained-first keeps the search shallow.
    let pattern_vertices: Vec<VertexId> = pattern.vertex_ids().collect();
    let mut candidates: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &p in &pattern_vertices {
        let cands: Vec<VertexId> = match forced.get(&p) {
            Some(&h) => vec![h],
            None => host.vertex_ids().filter(|&h| compatible(p, h)).collect(),
        };
        if cands.is_empty() {
            return None; // a pattern vertex no host vertex can represent
        }
        candidates.insert(p, cands);
    }
    let mut order = pattern_vertices.clone();
    order.sort_by_key(|p| (candidates[p].len(), *p));

    let mut state = Search {
        pattern,
        host,
        candidates,
        order,
        vertex_map: HashMap::new(),
        host_used: vec![false; host.len()],
        path_used: vec![false; host.len()],
        routed: None,
    };
    // Seed the pinned mappings.
    let forced_pairs: Vec<_> = forced.into_iter().collect();
    for (p, h) in &forced_pairs {
        state.vertex_map.insert(*p, *h);
        state.host_used[h.index()] = true;
    }

    if !state.assign(0) {
        return None;
    }
    let paths = state.routed.take()?;
    Some(Homeomorphism {
        vertex_map: state.vertex_map.clone(),
        paths,
    })
}

/// Searches for an *order embedding* of `pattern` into `host`: an
/// injective, compatibility-respecting vertex mapping such that every
/// pattern edge `(u, v)` is witnessed by host **reachability**
/// `φ(u) ⇝ φ(v)` — paths may pass through other mapped vertices.
///
/// This is the relaxation behavioural adaptation uses for the *executed
/// prefix*: resuming execution only requires the already-established
/// precedences to hold in the new behaviour (a sequential behaviour
/// validly refines an executed parallel block), whereas full behavioural
/// equivalence uses the strict [`find_homeomorphism`].
pub fn find_order_embedding(
    pattern: &BehaviouralGraph,
    host: &BehaviouralGraph,
    compatible: &mut dyn FnMut(VertexId, VertexId) -> bool,
    pinned: &[(VertexId, VertexId)],
) -> Option<HashMap<VertexId, VertexId>> {
    if pattern.len() > host.len() {
        return None;
    }
    // Forced mappings, validated as in the strict search.
    let mut forced: HashMap<VertexId, VertexId> = HashMap::new();
    for &(p, h) in pinned {
        if !compatible(p, h) {
            return None;
        }
        match forced.get(&p) {
            Some(&existing) if existing != h => return None,
            Some(_) => continue,
            None => {
                if forced.values().any(|&used| used == h) {
                    return None;
                }
                forced.insert(p, h);
            }
        }
    }

    // Host reachability (reflexive) as bitsets-by-Vec<bool>.
    let n = host.len();
    let mut reach = vec![vec![false; n]; n];
    for v in host.vertex_ids() {
        for r in host.reachable_from(v) {
            reach[v.index()][r.index()] = true;
        }
    }

    let pattern_vertices: Vec<VertexId> = pattern.vertex_ids().collect();
    let mut candidates: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &p in &pattern_vertices {
        let cands: Vec<VertexId> = match forced.get(&p) {
            Some(&h) => vec![h],
            None => host.vertex_ids().filter(|&h| compatible(p, h)).collect(),
        };
        if cands.is_empty() {
            return None;
        }
        candidates.insert(p, cands);
    }
    let mut order = pattern_vertices;
    order.sort_by_key(|p| (candidates[p].len(), *p));

    fn assign(
        depth: usize,
        order: &[VertexId],
        candidates: &HashMap<VertexId, Vec<VertexId>>,
        pattern: &BehaviouralGraph,
        reach: &[Vec<bool>],
        map: &mut HashMap<VertexId, VertexId>,
        used: &mut Vec<bool>,
    ) -> bool {
        let mut depth = depth;
        while depth < order.len() && map.contains_key(&order[depth]) {
            depth += 1;
        }
        if depth == order.len() {
            return true;
        }
        let p = order[depth];
        for &h in &candidates[&p] {
            if used[h.index()] {
                continue;
            }
            // Check every pattern edge with both endpoints now mapped.
            let ok = pattern.successors(p).iter().all(|s| {
                map.get(s)
                    .is_none_or(|&hs| reach[h.index()][hs.index()] && h != hs)
            }) && pattern.predecessors(p).iter().all(|q| {
                map.get(q)
                    .is_none_or(|&hq| reach[hq.index()][h.index()] && h != hq)
            });
            if !ok {
                continue;
            }
            map.insert(p, h);
            used[h.index()] = true;
            if assign(depth + 1, order, candidates, pattern, reach, map, used) {
                return true;
            }
            map.remove(&p);
            used[h.index()] = false;
        }
        false
    }

    let mut map = forced.clone();
    let mut used = vec![false; n];
    for &h in map.values() {
        used[h.index()] = true;
    }
    // Validate edges among the pins themselves.
    for (u, v) in pattern.edges() {
        if let (Some(&hu), Some(&hv)) = (map.get(&u), map.get(&v)) {
            if hu == hv || !reach[hu.index()][hv.index()] {
                return None;
            }
        }
    }
    assign(0, &order, &candidates, pattern, &reach, &mut map, &mut used).then_some(map)
}

/// One routed host path per pattern edge.
type RoutedPaths = Vec<((VertexId, VertexId), Vec<VertexId>)>;

struct Search<'a> {
    pattern: &'a BehaviouralGraph,
    host: &'a BehaviouralGraph,
    candidates: HashMap<VertexId, Vec<VertexId>>,
    order: Vec<VertexId>,
    vertex_map: HashMap<VertexId, VertexId>,
    host_used: Vec<bool>,
    path_used: Vec<bool>,
    /// Witness paths of the last successful routing (kept so the final
    /// embedding does not re-run the path search).
    routed: Option<RoutedPaths>,
}

impl Search<'_> {
    /// Backtracking vertex assignment; after each full assignment the
    /// edge-routing check runs.
    fn assign(&mut self, depth: usize) -> bool {
        // Skip vertices already mapped (pins).
        let mut depth = depth;
        while depth < self.order.len() && self.vertex_map.contains_key(&self.order[depth]) {
            depth += 1;
        }
        if depth == self.order.len() {
            self.routed = self.route_all();
            return self.routed.is_some();
        }
        let p = self.order[depth];
        let cands = self.candidates[&p].clone();
        for h in cands {
            if self.host_used[h.index()] {
                continue;
            }
            self.vertex_map.insert(p, h);
            self.host_used[h.index()] = true;
            if self.assign(depth + 1) {
                return true;
            }
            self.vertex_map.remove(&p);
            self.host_used[h.index()] = false;
        }
        false
    }

    /// Routes every pattern edge through internally vertex-disjoint host
    /// paths (greedy with per-edge backtracking).
    fn route_all(&mut self) -> Option<RoutedPaths> {
        let mut edges: Vec<(VertexId, VertexId)> = self.pattern.edges().collect();
        // Deterministic order; route tight edges (long shortest paths)
        // last so cheap edges don't steal their vertices? Shortest first
        // keeps more freedom for later edges.
        edges.sort();
        self.path_used.iter_mut().for_each(|u| *u = false);
        let mut paths = Vec::with_capacity(edges.len());
        if self.route_edges(&edges, 0, &mut paths) {
            Some(paths)
        } else {
            None
        }
    }

    fn route_edges(
        &mut self,
        edges: &[(VertexId, VertexId)],
        i: usize,
        paths: &mut Vec<((VertexId, VertexId), Vec<VertexId>)>,
    ) -> bool {
        if i == edges.len() {
            return true;
        }
        let (u, v) = edges[i];
        let (hu, hv) = (self.vertex_map[&u], self.vertex_map[&v]);
        // Enumerate simple paths hu ⇝ hv avoiding mapped vertices and
        // vertices used by other paths; try each until the rest routes.
        let mut stack: Vec<(VertexId, Vec<VertexId>)> = vec![(hu, vec![hu])];
        while let Some((at, path)) = stack.pop() {
            if at == hv {
                // Claim internal vertices.
                let internal: Vec<VertexId> = path[1..path.len() - 1].to_vec();
                for &w in &internal {
                    self.path_used[w.index()] = true;
                }
                paths.push(((u, v), path.clone()));
                if self.route_edges(edges, i + 1, paths) {
                    return true;
                }
                paths.pop();
                for &w in &internal {
                    self.path_used[w.index()] = false;
                }
                continue;
            }
            for &next in self.host.successors(at) {
                let blocked =
                    next != hv && (self.host_used[next.index()] || self.path_used[next.index()]);
                if blocked || path.contains(&next) {
                    continue;
                }
                let mut extended = path.clone();
                extended.push(next);
                stack.push((next, extended));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_task::{Activity, TaskNode, UserTask, VertexKind};

    fn seq(names: &[&str]) -> BehaviouralGraph {
        BehaviouralGraph::from_task(
            &UserTask::new(
                "t",
                TaskNode::sequence(
                    names
                        .iter()
                        .map(|n| TaskNode::activity(Activity::new(*n, "x#F"))),
                ),
            )
            .unwrap(),
        )
    }

    fn par(names: &[&str]) -> BehaviouralGraph {
        BehaviouralGraph::from_task(
            &UserTask::new(
                "t",
                TaskNode::parallel(
                    names
                        .iter()
                        .map(|n| TaskNode::activity(Activity::new(*n, "x#F"))),
                ),
            )
            .unwrap(),
        )
    }

    fn by_name(
        pattern: &BehaviouralGraph,
        host: &BehaviouralGraph,
    ) -> impl FnMut(VertexId, VertexId) -> bool {
        let p = pattern.clone();
        let h = host.clone();
        move |pv, hv| match (p.vertex(pv).activity(), h.vertex(hv).activity()) {
            (Some(pa), Some(ha)) => pa.name() == ha.name(),
            (None, None) => p.vertex(pv).kind() == h.vertex(hv).kind(),
            _ => false,
        }
    }

    #[test]
    fn identical_graphs_are_homeomorphic() {
        let g = seq(&["a", "b"]);
        let mut m = by_name(&g, &g);
        let h = find_homeomorphism(&g, &g, &mut m, &[]).unwrap();
        for v in g.vertex_ids() {
            assert_eq!(h.image(v), Some(v));
        }
    }

    #[test]
    fn subdivision_is_homeomorphic() {
        // a→c embeds in a→b→c with b as an internal path vertex.
        let pattern = seq(&["a", "c"]);
        let host = seq(&["a", "b", "c"]);
        let mut m = by_name(&pattern, &host);
        let h = find_homeomorphism(&pattern, &host, &mut m, &[]).unwrap();
        let a = pattern.find_activity("a").unwrap();
        let c = pattern.find_activity("c").unwrap();
        let path = h
            .paths
            .iter()
            .find(|((u, v), _)| *u == a && *v == c)
            .map(|(_, p)| p.clone())
            .unwrap();
        assert_eq!(path.len(), 3); // a, b, c
    }

    #[test]
    fn missing_activity_fails() {
        let pattern = seq(&["a", "z"]);
        let host = seq(&["a", "b", "c"]);
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[]).is_none());
    }

    #[test]
    fn reversed_order_fails() {
        // b→a cannot embed in a→b (no path from b's image to a's image).
        let pattern = seq(&["b", "a"]);
        let host = seq(&["a", "b"]);
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[]).is_none());
    }

    #[test]
    fn larger_pattern_than_host_fails_fast() {
        let pattern = seq(&["a", "b", "c"]);
        let host = seq(&["a", "b"]);
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[]).is_none());
    }

    #[test]
    fn parallel_pattern_in_parallel_host() {
        let pattern = par(&["a", "b"]);
        let host = par(&["a", "b", "c"]);
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[]).is_some());
    }

    #[test]
    fn sequence_embeds_in_host_with_parallel_detour() {
        // Pattern a→d; host a→(b||c)→d: the a⇝d path may run through b or
        // c.
        let pattern = seq(&["a", "d"]);
        let host = BehaviouralGraph::from_task(
            &UserTask::new(
                "t",
                TaskNode::sequence([
                    TaskNode::activity(Activity::new("a", "x#F")),
                    TaskNode::parallel([
                        TaskNode::activity(Activity::new("b", "x#F")),
                        TaskNode::activity(Activity::new("c", "x#F")),
                    ]),
                    TaskNode::activity(Activity::new("d", "x#F")),
                ]),
            )
            .unwrap(),
        );
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[]).is_some());
    }

    #[test]
    fn paths_are_vertex_disjoint() {
        // Pattern: start→a, a→end, and also start→b, b→end (parallel a,b).
        // Host: parallel a,b — each pattern edge takes its own vertices.
        let pattern = par(&["a", "b"]);
        let host = par(&["a", "b"]);
        let mut m = by_name(&pattern, &host);
        let h = find_homeomorphism(&pattern, &host, &mut m, &[]).unwrap();
        let mut internal_seen = std::collections::HashSet::new();
        for (_, path) in &h.paths {
            for w in &path[1..path.len() - 1] {
                assert!(internal_seen.insert(*w), "vertex {w} reused across paths");
            }
        }
    }

    #[test]
    fn pinned_mapping_is_respected() {
        let pattern = seq(&["a", "b"]);
        let host = seq(&["a", "b"]);
        let pa = pattern.find_activity("a").unwrap();
        let ha = host.find_activity("a").unwrap();
        // Sane pin works…
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[(pa, ha)]).is_some());
        // …while pinning a to b's host vertex fails compatibility.
        let hb = host.find_activity("b").unwrap();
        let mut m = by_name(&pattern, &host);
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[(pa, hb)]).is_none());
    }

    #[test]
    fn conflicting_pins_fail() {
        let pattern = seq(&["a", "b"]);
        let host = seq(&["a", "b"]);
        let pa = pattern.find_activity("a").unwrap();
        let pb = pattern.find_activity("b").unwrap();
        let ha = host.find_activity("a").unwrap();
        let mut m = |pv: VertexId, hv: VertexId| {
            let _ = (pv, hv);
            true // everything compatible: only injectivity can fail
        };
        assert!(find_homeomorphism(&pattern, &host, &mut m, &[(pa, ha), (pb, ha)]).is_none());
        assert_eq!(pattern.vertex(pa).kind(), VertexKind::Activity);
    }

    #[test]
    fn order_embedding_relaxes_disjointness() {
        // A parallel pattern embeds into a sequential host by order
        // embedding (a before nothing, b before nothing) even though the
        // strict homeomorphism fails on the transitive edge.
        let pattern = seq(&["a", "c"]); // a → c
        let host = seq(&["a", "b", "c"]);
        let mut m = by_name(&pattern, &host);
        assert!(find_order_embedding(&pattern, &host, &mut m, &[]).is_some());

        // Fan-out pattern start→{a,b}, both → end; host chain a→b: the
        // strict variant fails (shown below) but order embedding holds.
        let fan = par(&["a", "b"]);
        let chain = seq(&["a", "b"]);
        let mut m = by_name(&fan, &chain);
        assert!(find_homeomorphism(&fan, &chain, &mut m, &[]).is_none());
        let mut m = by_name(&fan, &chain);
        assert!(find_order_embedding(&fan, &chain, &mut m, &[]).is_some());
    }

    #[test]
    fn order_embedding_still_respects_precedence() {
        let pattern = seq(&["b", "a"]);
        let host = seq(&["a", "b"]);
        let mut m = by_name(&pattern, &host);
        assert!(find_order_embedding(&pattern, &host, &mut m, &[]).is_none());
    }

    #[test]
    fn order_embedding_respects_pins() {
        let pattern = seq(&["a"]);
        let host = seq(&["a", "b"]);
        let pa = pattern.find_activity("a").unwrap();
        let hb = host.find_activity("b").unwrap();
        let mut m = by_name(&pattern, &host);
        assert!(find_order_embedding(&pattern, &host, &mut m, &[(pa, hb)]).is_none());
    }

    #[test]
    fn start_and_end_map_to_start_and_end() {
        let pattern = seq(&["a"]);
        let host = seq(&["a", "b"]);
        let mut m = by_name(&pattern, &host);
        let h = find_homeomorphism(&pattern, &host, &mut m, &[]).unwrap();
        assert_eq!(h.image(pattern.start()), Some(host.start()));
        assert_eq!(h.image(pattern.end()), Some(host.end()));
    }
}
