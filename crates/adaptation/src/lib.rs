//! QoS-driven composition adaptation for the QASOM middleware.
//!
//! Compositions are selected from *advertised* QoS, but the QoS actually
//! delivered in a pervasive environment fluctuates — services fail, nodes
//! move, links degrade. This crate implements the adaptation pillar of the
//! middleware:
//!
//! * **Global and proactive monitoring** ([`QosMonitor`],
//!   [`CompositionMonitor`]) — sliding-window estimates of each bound
//!   service's delivered QoS plus EWMA trend prediction, aggregated over
//!   the whole running composition so violations are detected (and
//!   *predicted*, before they happen) against the user's global
//!   constraints;
//! * **Service substitution** ([`Substitution`]) — the first-line
//!   strategy: replace the degraded service with a ranked alternate kept
//!   from selection time, re-validating the aggregate;
//! * **Behavioural adaptation** ([`BehaviouralAdapter`], [`homeo`]) —
//!   the fallback when no substitute exists: realise the task through an
//!   *alternative behaviour* of its task class. Whether the executed part
//!   of the old behaviour can be resumed in the new one is decided by an
//!   **extended vertex-disjoint subgraph homeomorphism** over behavioural
//!   graphs, with semantic vertex matching, data (I/O) constraints and
//!   pinned vertex mappings.
//!
//! # Examples
//!
//! ```
//! use qasom_adaptation::QosMonitor;
//! use qasom_qos::{QosModel, QosVector};
//! use qasom_registry::{ServiceDescription, ServiceRegistry};
//!
//! let model = QosModel::standard();
//! let rt = model.property("ResponseTime").unwrap();
//! let mut reg = ServiceRegistry::new();
//! let id = reg.register(ServiceDescription::new("s", "d#F"));
//!
//! let mut monitor = QosMonitor::new();
//! for v in [100.0, 110.0, 120.0] {
//!     let mut obs = QosVector::new();
//!     obs.set(rt, v);
//!     monitor.observe(id, &obs);
//! }
//! assert_eq!(monitor.estimate(id).unwrap().get(rt), Some(110.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavioural;
pub mod homeo;
mod monitor;
mod substitute;

pub use behavioural::{AdaptationPlan, BehaviouralAdapter};
pub use homeo::{find_homeomorphism, find_order_embedding, Homeomorphism};
pub use monitor::{CompositionMonitor, MonitorConfig, QosMonitor, Violation};
pub use substitute::{Substitution, SubstitutionPlan};
