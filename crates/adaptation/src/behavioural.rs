//! Behavioural adaptation: realising a task through an alternative
//! behaviour of its task class.

use std::collections::HashMap;

use qasom_ontology::Ontology;
use qasom_task::{Activity, BehaviouralGraph, TaskClassRepository, UserTask, VertexId, VertexKind};

use crate::homeo::find_order_embedding;

/// A behavioural adaptation plan: switch the running composition to
/// `behaviour`, resuming after the already-executed activities.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationPlan {
    /// The alternative behaviour taking over.
    pub behaviour: UserTask,
    /// Executed activity of the old behaviour → the activity of the new
    /// behaviour it counts as (by name).
    pub executed_map: HashMap<String, String>,
    /// Activities of the new behaviour still to execute (everything not
    /// covered by `executed_map`), in DFS order.
    pub remaining: Vec<String>,
}

/// Decides whether (and how) an alternative behaviour can take over a
/// partially executed task, via extended vertex-disjoint subgraph
/// homeomorphism with semantic vertex matching, data constraints and
/// pinned start/end mappings.
#[derive(Debug, Clone, Copy)]
pub struct BehaviouralAdapter<'a> {
    ontology: &'a Ontology,
}

impl<'a> BehaviouralAdapter<'a> {
    /// Creates an adapter matching activity functions over `ontology`
    /// (unknown IRIs fall back to syntactic equality).
    pub fn new(ontology: &'a Ontology) -> Self {
        BehaviouralAdapter { ontology }
    }

    /// Semantic + data compatibility of two activities: the candidate
    /// (`new`) must offer a function usable for the executed (`old`) one
    /// — exact or more specific — produce at least its outputs, and
    /// require no inputs the old activity did not have.
    pub fn activities_compatible(&self, old: &Activity, new: &Activity) -> bool {
        self.functions_match(old.function(), new.function())
            && old.outputs().iter().all(|req| {
                new.outputs()
                    .iter()
                    .any(|off| self.functions_match(req, off))
            })
            && new.inputs().iter().all(|need| {
                old.inputs()
                    .iter()
                    .any(|have| self.functions_match(need, have))
            })
    }

    fn functions_match(
        &self,
        required: &qasom_ontology::Iri,
        offered: &qasom_ontology::Iri,
    ) -> bool {
        match (
            self.ontology.concept(required),
            self.ontology.concept(offered),
        ) {
            (Some(r), Some(o)) => self.ontology.match_degree(r, o).is_usable(),
            _ => required == offered,
        }
    }

    /// Checks whether `alternative` can resume `current` after the
    /// activities named in `executed` have run.
    ///
    /// The executed prefix of `current` (its graph [restriction]) must
    /// admit an order embedding into `alternative`'s behavioural graph —
    /// every established precedence must hold in the new behaviour — with
    /// the start/end vertices pinned, semantic function matching and data
    /// (I/O) constraints on every activity pair. On success, returns the
    /// executed-activity correspondence (old name → new name).
    ///
    /// [restriction]: BehaviouralGraph::restriction
    pub fn resume_mapping(
        &self,
        current: &UserTask,
        alternative: &UserTask,
        executed: &[&str],
    ) -> Option<HashMap<String, String>> {
        let g_cur = BehaviouralGraph::from_task(current);
        let executed_ids: Vec<VertexId> = executed
            .iter()
            .map(|name| g_cur.find_activity(name))
            .collect::<Option<Vec<_>>>()?;
        let (pattern, _back) = g_cur.restriction(&executed_ids);
        let host = BehaviouralGraph::from_task(alternative);

        let mut compatible = |p: VertexId, h: VertexId| {
            let (pv, hv) = (pattern.vertex(p), host.vertex(h));
            match (pv.kind(), hv.kind()) {
                (VertexKind::Start, VertexKind::Start) => true,
                (VertexKind::End, VertexKind::End) => true,
                (VertexKind::Activity, VertexKind::Activity) => {
                    match (pv.activity(), hv.activity()) {
                        (Some(p), Some(h)) => self.activities_compatible(p, h),
                        _ => false,
                    }
                }
                _ => false,
            }
        };
        let pins = [(pattern.start(), host.start()), (pattern.end(), host.end())];
        let embedding = find_order_embedding(&pattern, &host, &mut compatible, &pins)?;

        let mut map = HashMap::new();
        for p in pattern.activity_vertices() {
            let old_name = pattern.vertex(p).activity()?.name().to_owned();
            let image = *embedding.get(&p)?;
            let new_name = host.vertex(image).activity()?.name().to_owned();
            map.insert(old_name, new_name);
        }
        Some(map)
    }

    /// Picks the first alternative behaviour of `current`'s task class
    /// that (i) can resume after `executed` and (ii) whose remaining
    /// activities are all realisable according to `available`.
    ///
    /// Alternatives are tried in the repository's preference order.
    pub fn plan(
        &self,
        repository: &TaskClassRepository,
        current: &UserTask,
        executed: &[&str],
        available: &mut dyn FnMut(&Activity) -> bool,
    ) -> Option<AdaptationPlan> {
        for alternative in repository.alternatives(current.name()) {
            let Some(executed_map) = self.resume_mapping(current, alternative, executed) else {
                continue;
            };
            let covered: Vec<&String> = executed_map.values().collect();
            let remaining: Vec<String> = alternative
                .activities()
                .filter(|r| !covered.iter().any(|c| *c == r.activity().name()))
                .map(|r| r.activity().name().to_owned())
                .collect();
            let all_available = alternative
                .activities()
                .filter(|r| remaining.iter().any(|n| n == r.activity().name()))
                .all(|r| available(r.activity()));
            if all_available {
                return Some(AdaptationPlan {
                    behaviour: alternative.clone(),
                    executed_map,
                    remaining,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_ontology::OntologyBuilder;
    use qasom_task::{TaskClass, TaskNode};

    fn onto() -> Ontology {
        let mut b = OntologyBuilder::new("shop");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.concept("Browse");
        b.concept("Order");
        b.concept("Track");
        b.build().unwrap()
    }

    fn act(name: &str, f: &str) -> TaskNode {
        TaskNode::activity(Activity::new(name, f))
    }

    fn task(name: &str, root: TaskNode) -> UserTask {
        UserTask::new(name, root).unwrap()
    }

    #[test]
    fn resume_into_reordered_behaviour() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        // v1: browse ; order ; pay    (browse executed)
        // v2: browse ; pay2 ; order2  (different order of the tail)
        let v1 = task(
            "v1",
            TaskNode::sequence([
                act("browse", "shop#Browse"),
                act("order", "shop#Order"),
                act("pay", "shop#Pay"),
            ]),
        );
        let v2 = task(
            "v2",
            TaskNode::sequence([
                act("browse2", "shop#Browse"),
                act("pay2", "shop#Pay"),
                act("order2", "shop#Order"),
            ]),
        );
        let map = adapter.resume_mapping(&v1, &v2, &["browse"]).unwrap();
        assert_eq!(map["browse"], "browse2");
    }

    #[test]
    fn executed_function_must_exist_in_alternative() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        let v1 = task(
            "v1",
            TaskNode::sequence([act("browse", "shop#Browse"), act("pay", "shop#Pay")]),
        );
        let v2 = task(
            "v2",
            TaskNode::sequence([act("order", "shop#Order"), act("pay2", "shop#Pay")]),
        );
        assert!(adapter.resume_mapping(&v1, &v2, &["browse"]).is_none());
    }

    #[test]
    fn plugin_functions_are_accepted() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        let v1 = task("v1", act("pay", "shop#Pay"));
        // The alternative realises payment with the more specific
        // card-payment activity.
        let v2 = task("v2", act("card", "shop#PayByCard"));
        let map = adapter.resume_mapping(&v1, &v2, &["pay"]).unwrap();
        assert_eq!(map["pay"], "card");
    }

    #[test]
    fn data_constraints_restrict_matches() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        let old = Activity::new("a", "shop#Order").with_output("shop#Receipt");
        let new_without_output = Activity::new("b", "shop#Order");
        let new_with_output = Activity::new("c", "shop#Order").with_output("shop#Receipt");
        assert!(!adapter.activities_compatible(&old, &new_without_output));
        assert!(adapter.activities_compatible(&old, &new_with_output));
    }

    #[test]
    fn executed_order_must_be_preserved() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        // Both a and b executed, in order a→b.
        let v1 = task(
            "v1",
            TaskNode::sequence([act("a", "shop#Browse"), act("b", "shop#Order")]),
        );
        // Alternative runs them in the opposite order: resumption after
        // a→b cannot be represented.
        let v2 = task(
            "v2",
            TaskNode::sequence([act("b2", "shop#Order"), act("a2", "shop#Browse")]),
        );
        assert!(adapter.resume_mapping(&v1, &v2, &["a", "b"]).is_none());
    }

    #[test]
    fn parallel_prefix_resumes_into_sequential_alternative() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        let v1 = task(
            "v1",
            TaskNode::parallel([act("a", "shop#Browse"), act("b", "shop#Order")]),
        );
        // Sequential alternative: a then b. A parallel prefix where only
        // `a` ran so far can resume (the pattern has start→a only).
        let v2 = task(
            "v2",
            TaskNode::sequence([act("a2", "shop#Browse"), act("b2", "shop#Order")]),
        );
        assert!(adapter.resume_mapping(&v1, &v2, &["a"]).is_some());
    }

    #[test]
    fn plan_skips_unrealisable_alternatives() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        let v1 = task(
            "v1",
            TaskNode::sequence([act("browse", "shop#Browse"), act("pay", "shop#Pay")]),
        );
        let v2 = task(
            "v2",
            TaskNode::sequence([act("browse2", "shop#Browse"), act("card", "shop#PayByCard")]),
        );
        let v3 = task(
            "v3",
            TaskNode::sequence([act("browse3", "shop#Browse"), act("track", "shop#Track")]),
        );
        let mut class = TaskClass::new("shopping");
        class.add_behaviour(v1.clone());
        class.add_behaviour(v2);
        class.add_behaviour(v3);
        let mut repo = TaskClassRepository::new();
        repo.insert(class);

        // No card-payment service available → v2 rejected, v3 chosen.
        let mut available = |a: &Activity| a.function().local_name() != "PayByCard";
        let plan = adapter
            .plan(&repo, &v1, &["browse"], &mut available)
            .unwrap();
        assert_eq!(plan.behaviour.name(), "v3");
        assert_eq!(plan.executed_map["browse"], "browse3");
        assert_eq!(plan.remaining, vec!["track".to_owned()]);
    }

    #[test]
    fn plan_returns_none_when_no_alternative_fits() {
        let o = onto();
        let adapter = BehaviouralAdapter::new(&o);
        let v1 = task("v1", act("pay", "shop#Pay"));
        let mut class = TaskClass::new("solo");
        class.add_behaviour(v1.clone());
        let mut repo = TaskClassRepository::new();
        repo.insert(class);
        let mut available = |_: &Activity| true;
        assert!(adapter.plan(&repo, &v1, &[], &mut available).is_none());
    }
}
