//! Global and proactive QoS monitoring.

use std::collections::{HashMap, VecDeque};

use qasom_qos::{Constraint, ConstraintSet, PropertyId, QosModel, QosVector};
use qasom_registry::ServiceId;
use qasom_selection::{AggregationApproach, Aggregator};
use qasom_task::UserTask;

/// Monitoring parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Sliding-window length (observations per property).
    pub window: usize,
    /// EWMA smoothing factor in `(0, 1]` — weight of the newest sample.
    pub ewma_alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 10,
            ewma_alpha: 0.3,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct PropertyWindow {
    samples: VecDeque<f64>,
    ewma: Option<f64>,
}

impl PropertyWindow {
    fn push(&mut self, value: f64, config: &MonitorConfig) {
        if self.samples.len() == config.window {
            self.samples.pop_front();
        }
        self.samples.push_back(value);
        self.ewma = Some(match self.ewma {
            Some(prev) => config.ewma_alpha * value + (1.0 - config.ewma_alpha) * prev,
            None => value,
        });
    }

    fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// One-step-ahead prediction: EWMA plus the linear trend of the
    /// window (least-squares slope). This is what makes monitoring
    /// *proactive* — a degrading trend is flagged before the mean itself
    /// crosses the bound.
    fn predict(&self) -> Option<f64> {
        let ewma = self.ewma?;
        let n = self.samples.len();
        if n < 2 {
            return Some(ewma);
        }
        let xs = (0..n).map(|i| i as f64);
        let mean_x = (n as f64 - 1.0) / 2.0;
        let mean_y = self.mean()?;
        let mut num = 0.0;
        let mut den = 0.0;
        for (x, &y) in xs.zip(self.samples.iter()) {
            num += (x - mean_x) * (y - mean_y);
            den += (x - mean_x) * (x - mean_x);
        }
        let slope = if den == 0.0 { 0.0 } else { num / den };
        Some(ewma + slope)
    }
}

/// Per-service QoS monitor: sliding windows of delivered QoS with EWMA
/// trend prediction.
#[derive(Debug, Clone, Default)]
pub struct QosMonitor {
    config: MonitorConfig,
    windows: HashMap<ServiceId, HashMap<PropertyId, PropertyWindow>>,
    failures: HashMap<ServiceId, u64>,
}

impl QosMonitor {
    /// Creates a monitor with the default configuration.
    pub fn new() -> Self {
        QosMonitor::default()
    }

    /// Creates a monitor with an explicit configuration.
    pub fn with_config(config: MonitorConfig) -> Self {
        QosMonitor {
            config,
            ..QosMonitor::default()
        }
    }

    /// Records one successful invocation's delivered QoS.
    pub fn observe(&mut self, service: ServiceId, delivered: &QosVector) {
        let per_service = self.windows.entry(service).or_default();
        for (p, v) in delivered.iter() {
            per_service.entry(p).or_default().push(v, &self.config);
        }
    }

    /// Records a failed invocation.
    pub fn observe_failure(&mut self, service: ServiceId) {
        *self.failures.entry(service).or_insert(0) += 1;
    }

    /// Consecutive-failure count since the last reset.
    pub fn failures(&self, service: ServiceId) -> u64 {
        self.failures.get(&service).copied().unwrap_or(0)
    }

    /// Clears the failure counter (after a successful substitution).
    pub fn reset_failures(&mut self, service: ServiceId) {
        self.failures.remove(&service);
    }

    /// Window-mean estimate of a service's delivered QoS (`None` when the
    /// service was never observed).
    pub fn estimate(&self, service: ServiceId) -> Option<QosVector> {
        let per_service = self.windows.get(&service)?;
        let v: QosVector = per_service
            .iter()
            .filter_map(|(&p, w)| w.mean().map(|m| (p, m)))
            .collect();
        (!v.is_empty()).then_some(v)
    }

    /// Trend-adjusted one-step-ahead prediction of a service's QoS.
    pub fn predict(&self, service: ServiceId) -> Option<QosVector> {
        let per_service = self.windows.get(&service)?;
        let v: QosVector = per_service
            .iter()
            .filter_map(|(&p, w)| w.predict().map(|m| (p, m)))
            .collect();
        (!v.is_empty()).then_some(v)
    }

    /// Every service with at least one recorded observation, sorted for
    /// deterministic iteration. Delta re-selection uses this to decide
    /// which activities a monitored-QoS overlay may have perturbed; an
    /// empty monitor lets it skip the scan entirely.
    pub fn observed_services(&self) -> Vec<ServiceId> {
        let mut ids: Vec<ServiceId> = self.windows.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of observations recorded for a service/property.
    pub fn sample_count(&self, service: ServiceId, property: PropertyId) -> usize {
        self.windows
            .get(&service)
            .and_then(|m| m.get(&property))
            .map_or(0, |w| w.samples.len())
    }
}

/// A detected (or predicted) violation of a global constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated constraint.
    pub constraint: Constraint,
    /// The aggregated value that breaks (or will break) the bound.
    pub value: Option<f64>,
    /// `true` when only the *predicted* aggregate violates (the current
    /// estimate still holds) — the proactive case.
    pub proactive: bool,
}

/// Global monitoring of a running composition: combines the per-service
/// estimates of every bound service, aggregates them over the task
/// structure and checks the user's global constraints — both on current
/// estimates (reactive) and on trend predictions (proactive).
#[derive(Debug, Clone)]
pub struct CompositionMonitor {
    task: UserTask,
    bindings: Vec<ServiceId>,
    advertised: Vec<QosVector>,
    constraints: ConstraintSet,
    approach: AggregationApproach,
}

impl CompositionMonitor {
    /// Creates a monitor for a composition binding `bindings[i]` (with
    /// advertised QoS `advertised[i]`) to activity `i`.
    ///
    /// # Panics
    ///
    /// Panics when the binding/advertised arities don't match the task.
    pub fn new(
        task: UserTask,
        bindings: Vec<ServiceId>,
        advertised: Vec<QosVector>,
        constraints: ConstraintSet,
        approach: AggregationApproach,
    ) -> Self {
        assert_eq!(
            task.activity_count(),
            bindings.len(),
            "one binding per activity"
        );
        assert_eq!(
            bindings.len(),
            advertised.len(),
            "one advertised vector per binding"
        );
        CompositionMonitor {
            task,
            bindings,
            advertised,
            constraints,
            approach,
        }
    }

    /// The monitored task.
    pub fn task(&self) -> &UserTask {
        &self.task
    }

    /// Current bindings (activity index → service).
    pub fn bindings(&self) -> &[ServiceId] {
        &self.bindings
    }

    /// The advertised QoS of the current bindings.
    pub fn advertised(&self) -> &[QosVector] {
        &self.advertised
    }

    /// The monitored global constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The aggregation approach violations are evaluated under.
    pub fn approach(&self) -> AggregationApproach {
        self.approach
    }

    /// Rebinds one activity (after a substitution).
    pub fn rebind(&mut self, activity: usize, service: ServiceId, advertised: QosVector) {
        self.bindings[activity] = service;
        self.advertised[activity] = advertised;
    }

    /// Per-activity QoS as currently believed: monitored estimate where
    /// available, advertised value otherwise.
    pub fn believed_qos(&self, monitor: &QosMonitor) -> Vec<QosVector> {
        self.per_activity(monitor, QosMonitor::estimate)
    }

    /// Aggregated QoS of the composition from current estimates.
    pub fn aggregate_estimate(&self, model: &QosModel, monitor: &QosMonitor) -> QosVector {
        let vectors = self.believed_qos(monitor);
        let props: Vec<PropertyId> = self.constraints.properties().collect();
        Aggregator::new(model, self.approach).aggregate(&self.task, &vectors, &props)
    }

    /// Checks the global constraints against the current estimates and
    /// against trend predictions; returns every violation found, reactive
    /// ones first.
    pub fn check(&self, model: &QosModel, monitor: &QosMonitor) -> Vec<Violation> {
        let props: Vec<PropertyId> = self.constraints.properties().collect();
        let aggregator = Aggregator::new(model, self.approach);

        let current = aggregator.aggregate(&self.task, &self.believed_qos(monitor), &props);
        let predicted = aggregator.aggregate(
            &self.task,
            &self.per_activity(monitor, QosMonitor::predict),
            &props,
        );

        let mut out = Vec::new();
        for c in self.constraints.iter() {
            if !c.satisfied_by(&current) {
                out.push(Violation {
                    constraint: *c,
                    value: current.get(c.property()),
                    proactive: false,
                });
            } else if !c.satisfied_by(&predicted) {
                out.push(Violation {
                    constraint: *c,
                    value: predicted.get(c.property()),
                    proactive: true,
                });
            }
        }
        out
    }

    fn per_activity(
        &self,
        monitor: &QosMonitor,
        read: impl Fn(&QosMonitor, ServiceId) -> Option<QosVector>,
    ) -> Vec<QosVector> {
        self.bindings
            .iter()
            .zip(&self.advertised)
            .map(|(&svc, advertised)| {
                match read(monitor, svc) {
                    Some(mut observed) => {
                        // Properties never observed fall back to the
                        // advertisement.
                        for (p, v) in advertised.iter() {
                            if !observed.contains(p) {
                                observed.set(p, v);
                            }
                        }
                        observed
                    }
                    None => advertised.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::Tendency;
    use qasom_registry::{ServiceDescription, ServiceRegistry};
    use qasom_task::{Activity, TaskNode};

    struct Fx {
        model: QosModel,
        rt: PropertyId,
        ids: Vec<ServiceId>,
    }

    fn fx(n: usize) -> Fx {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let mut reg = ServiceRegistry::new();
        let ids = (0..n)
            .map(|i| reg.register(ServiceDescription::new(format!("s{i}"), "d#F")))
            .collect();
        Fx { model, rt, ids }
    }

    fn obs(p: PropertyId, v: f64) -> QosVector {
        [(p, v)].into_iter().collect()
    }

    #[test]
    fn estimate_is_window_mean() {
        let f = fx(1);
        let mut m = QosMonitor::new();
        for v in [100.0, 200.0, 300.0] {
            m.observe(f.ids[0], &obs(f.rt, v));
        }
        assert_eq!(m.estimate(f.ids[0]).unwrap().get(f.rt), Some(200.0));
    }

    #[test]
    fn window_slides() {
        let f = fx(1);
        let mut m = QosMonitor::with_config(MonitorConfig {
            window: 2,
            ewma_alpha: 0.5,
        });
        for v in [100.0, 200.0, 400.0] {
            m.observe(f.ids[0], &obs(f.rt, v));
        }
        // Window holds [200, 400].
        assert_eq!(m.estimate(f.ids[0]).unwrap().get(f.rt), Some(300.0));
        assert_eq!(m.sample_count(f.ids[0], f.rt), 2);
    }

    #[test]
    fn prediction_extrapolates_trends() {
        let f = fx(1);
        let mut m = QosMonitor::new();
        for v in [100.0, 120.0, 140.0, 160.0] {
            m.observe(f.ids[0], &obs(f.rt, v));
        }
        let predicted = m.predict(f.ids[0]).unwrap().get(f.rt).unwrap();
        let estimated = m.estimate(f.ids[0]).unwrap().get(f.rt).unwrap();
        assert!(
            predicted > estimated,
            "worsening trend must predict above the mean: {predicted} vs {estimated}"
        );
    }

    #[test]
    fn unobserved_service_has_no_estimate() {
        let f = fx(1);
        let m = QosMonitor::new();
        assert!(m.estimate(f.ids[0]).is_none());
        assert!(m.predict(f.ids[0]).is_none());
    }

    #[test]
    fn failure_counting_and_reset() {
        let f = fx(1);
        let mut m = QosMonitor::new();
        m.observe_failure(f.ids[0]);
        m.observe_failure(f.ids[0]);
        assert_eq!(m.failures(f.ids[0]), 2);
        m.reset_failures(f.ids[0]);
        assert_eq!(m.failures(f.ids[0]), 0);
    }

    fn composition(f: &Fx, bound: f64) -> CompositionMonitor {
        let task = UserTask::new(
            "t",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("a", "x#A")),
                TaskNode::activity(Activity::new("b", "x#B")),
            ]),
        )
        .unwrap();
        let constraints: ConstraintSet = [Constraint::new(f.rt, Tendency::LowerBetter, bound)]
            .into_iter()
            .collect();
        CompositionMonitor::new(
            task,
            f.ids[..2].to_vec(),
            vec![obs(f.rt, 100.0), obs(f.rt, 100.0)],
            constraints,
            AggregationApproach::MeanValue,
        )
    }

    #[test]
    fn advertised_qos_is_used_before_observations() {
        let f = fx(2);
        let comp = composition(&f, 250.0);
        let m = QosMonitor::new();
        let agg = comp.aggregate_estimate(&f.model, &m);
        assert_eq!(agg.get(f.rt), Some(200.0));
        assert!(comp.check(&f.model, &m).is_empty());
    }

    #[test]
    fn reactive_violation_detected_on_estimates() {
        let f = fx(2);
        let comp = composition(&f, 250.0);
        let mut m = QosMonitor::new();
        for _ in 0..3 {
            m.observe(f.ids[0], &obs(f.rt, 220.0)); // degraded service
        }
        let violations = comp.check(&f.model, &m);
        assert_eq!(violations.len(), 1);
        assert!(!violations[0].proactive);
        assert_eq!(violations[0].value, Some(320.0));
    }

    #[test]
    fn proactive_violation_detected_on_trend() {
        let f = fx(2);
        let comp = composition(&f, 250.0);
        let mut m = QosMonitor::new();
        // Currently fine (mean 130 + 100 advertised < 250) but worsening
        // steeply: EWMA + slope crosses the per-activity budget.
        for v in [100.0, 130.0, 160.0] {
            m.observe(f.ids[0], &obs(f.rt, v));
        }
        let violations = comp.check(&f.model, &m);
        assert_eq!(violations.len(), 1, "trend must be flagged proactively");
        assert!(violations[0].proactive);
    }

    #[test]
    fn rebind_switches_the_monitored_service() {
        let f = fx(3);
        let mut comp = composition(&f, 250.0);
        let mut m = QosMonitor::new();
        for _ in 0..3 {
            m.observe(f.ids[0], &obs(f.rt, 400.0));
        }
        assert_eq!(comp.check(&f.model, &m).len(), 1);
        comp.rebind(0, f.ids[2], obs(f.rt, 90.0));
        assert!(comp.check(&f.model, &m).is_empty());
    }
}
