//! Service substitution — the first-line adaptation strategy.

use qasom_qos::{PropertyId, QosModel, QosVector};
use qasom_registry::ServiceId;
use qasom_selection::{Aggregator, ServiceCandidate};

use crate::{CompositionMonitor, QosMonitor};

/// A planned substitution: replace the service bound to `activity`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstitutionPlan {
    /// DFS index of the activity being rebound.
    pub activity: usize,
    /// The service currently bound there.
    pub from: ServiceId,
    /// The ranked alternate taking over.
    pub to: ServiceCandidate,
    /// The aggregated QoS expected after the substitution (believed
    /// values for untouched activities, the alternate's QoS for the
    /// rebound one).
    pub expected: QosVector,
}

/// Plans single-service substitutions that restore global-constraint
/// satisfaction.
///
/// Alternates come from selection time: QASSA keeps every activity's
/// candidates ranked best-first precisely so that substitution (and
/// dynamic binding) can pick replacements without re-running discovery.
#[derive(Debug, Clone, Copy)]
pub struct Substitution<'a> {
    model: &'a QosModel,
}

impl<'a> Substitution<'a> {
    /// Creates a substitution planner.
    pub fn new(model: &'a QosModel) -> Self {
        Substitution { model }
    }

    /// Finds the first substitution that makes the believed aggregate
    /// satisfy every constraint again.
    ///
    /// Activities are tried most-blamed-first (worst believed value on
    /// the most violated property); within an activity, alternates are
    /// tried in their selection-time rank order. Returns `None` when no
    /// single substitution suffices — the caller then escalates to
    /// behavioural adaptation.
    pub fn plan(
        &self,
        composition: &CompositionMonitor,
        monitor: &QosMonitor,
        alternates: &[Vec<ServiceCandidate>],
    ) -> Option<SubstitutionPlan> {
        let believed = composition.believed_qos(monitor);
        let properties: Vec<PropertyId> = composition.constraints().properties().collect();
        let aggregator = Aggregator::new(self.model, composition.approach());

        // Most violated constraint decides the blame order.
        let aggregate = aggregator.aggregate(composition.task(), &believed, &properties);
        let violated = composition
            .constraints()
            .iter()
            .filter(|c| !c.satisfied_by(&aggregate))
            .max_by(|a, b| {
                let va = violation_magnitude(a, &aggregate);
                let vb = violation_magnitude(b, &aggregate);
                // total_cmp: a NaN magnitude (corrupt advertised QoS)
                // must not panic the adaptation loop mid-violation.
                va.total_cmp(&vb)
            });
        // A healthy composition needs no substitution.
        violated?;

        let mut activity_order: Vec<usize> = (0..believed.len()).collect();
        if let Some(c) = violated {
            let tendency = c.tendency();
            activity_order.sort_by(|&i, &j| {
                let vi = believed[i].get(c.property());
                let vj = believed[j].get(c.property());
                match (vi, vj) {
                    (Some(a), Some(b)) => {
                        if tendency.at_least_as_good(b, a) {
                            std::cmp::Ordering::Less // i is worse → first
                        } else {
                            std::cmp::Ordering::Greater
                        }
                    }
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (None, None) => std::cmp::Ordering::Equal,
                }
            });
        }

        for activity in activity_order {
            let bound = composition.bindings()[activity];
            for alternate in alternates.get(activity).map_or(&[][..], Vec::as_slice) {
                if alternate.id() == bound {
                    continue;
                }
                // Believe the monitor about the alternate too, if it has
                // history; otherwise trust its advertisement.
                let alternate_qos = monitor
                    .estimate(alternate.id())
                    .unwrap_or_else(|| alternate.qos().clone());
                let mut trial = believed.clone();
                trial[activity] = alternate_qos;
                let expected = aggregator.aggregate(composition.task(), &trial, &properties);
                if composition.constraints().satisfied_by(&expected) {
                    return Some(SubstitutionPlan {
                        activity,
                        from: bound,
                        to: alternate.clone(),
                        expected,
                    });
                }
            }
        }
        None
    }
}

fn violation_magnitude(c: &qasom_qos::Constraint, aggregate: &QosVector) -> f64 {
    match aggregate.get(c.property()) {
        Some(v) => (-c.slack(v) / c.bound().abs().max(1e-9)).max(0.0),
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonitorConfig;
    use qasom_qos::{Constraint, ConstraintSet, Tendency};
    use qasom_registry::{ServiceDescription, ServiceRegistry};
    use qasom_selection::AggregationApproach;
    use qasom_task::{Activity, TaskNode, UserTask};

    struct Fx {
        model: QosModel,
        rt: PropertyId,
        ids: Vec<ServiceId>,
        alternates: Vec<Vec<ServiceCandidate>>,
    }

    fn qv(p: PropertyId, v: f64) -> QosVector {
        [(p, v)].into_iter().collect()
    }

    /// Two-activity sequence; per activity: bound service + one alternate.
    fn fx(alt_rt: [f64; 2]) -> (Fx, CompositionMonitor) {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let mut reg = ServiceRegistry::new();
        let ids: Vec<ServiceId> = (0..4)
            .map(|i| reg.register(ServiceDescription::new(format!("s{i}"), "d#F")))
            .collect();
        let alternates = vec![
            vec![
                ServiceCandidate::new(ids[0], qv(rt, 100.0)),
                ServiceCandidate::new(ids[2], qv(rt, alt_rt[0])),
            ],
            vec![
                ServiceCandidate::new(ids[1], qv(rt, 100.0)),
                ServiceCandidate::new(ids[3], qv(rt, alt_rt[1])),
            ],
        ];
        let task = UserTask::new(
            "t",
            TaskNode::sequence([
                TaskNode::activity(Activity::new("a", "x#A")),
                TaskNode::activity(Activity::new("b", "x#B")),
            ]),
        )
        .unwrap();
        let constraints: ConstraintSet = [Constraint::new(rt, Tendency::LowerBetter, 250.0)]
            .into_iter()
            .collect();
        let comp = CompositionMonitor::new(
            task,
            vec![ids[0], ids[1]],
            vec![qv(rt, 100.0), qv(rt, 100.0)],
            constraints,
            AggregationApproach::MeanValue,
        );
        (
            Fx {
                model,
                rt,
                ids,
                alternates,
            },
            comp,
        )
    }

    #[test]
    fn substitutes_the_degraded_service() {
        let (f, comp) = fx([90.0, 90.0]);
        let mut m = QosMonitor::with_config(MonitorConfig::default());
        // Service 0 degrades badly: believed 300 + 100 > 250.
        for _ in 0..3 {
            m.observe(f.ids[0], &qv(f.rt, 300.0));
        }
        let plan = Substitution::new(&f.model)
            .plan(&comp, &m, &f.alternates)
            .expect("a substitute exists");
        assert_eq!(plan.activity, 0);
        assert_eq!(plan.from, f.ids[0]);
        assert_eq!(plan.to.id(), f.ids[2]);
        assert!(comp.constraints().satisfied_by(&plan.expected));
    }

    #[test]
    fn no_plan_when_no_alternate_helps() {
        let (f, comp) = fx([400.0, 400.0]); // alternates are even worse
        let mut m = QosMonitor::new();
        for _ in 0..3 {
            m.observe(f.ids[0], &qv(f.rt, 300.0));
        }
        assert!(Substitution::new(&f.model)
            .plan(&comp, &m, &f.alternates)
            .is_none());
    }

    #[test]
    fn monitored_history_of_alternate_overrides_its_advertisement() {
        let (f, comp) = fx([90.0, 90.0]);
        let mut m = QosMonitor::new();
        for _ in 0..3 {
            m.observe(f.ids[0], &qv(f.rt, 300.0));
            // The advertised-good alternate is known to be bad.
            m.observe(f.ids[2], &qv(f.rt, 500.0));
        }
        // Activity 0's alternate is untrustworthy; the planner must fix
        // the violation elsewhere (activity 1's alternate at 90 keeps the
        // total at 300 + 90 = 390 > 250, so no plan at all).
        assert!(Substitution::new(&f.model)
            .plan(&comp, &m, &f.alternates)
            .is_none());
    }

    #[test]
    fn nan_qos_does_not_panic_the_planner() {
        // A corrupt provider advertisement (NaN response time) reaching
        // the violation ranking used to panic via
        // `partial_cmp().expect("finite")`; the planner must instead
        // keep ranking (total_cmp) and still produce a plan from the
        // healthy alternate.
        let (f, comp) = fx([90.0, f64::NAN]);
        let mut m = QosMonitor::with_config(MonitorConfig::default());
        for _ in 0..3 {
            m.observe(f.ids[0], &qv(f.rt, 300.0));
            // The violated composition believes a NaN value too.
            m.observe(f.ids[1], &qv(f.rt, f64::NAN));
        }
        let plan = Substitution::new(&f.model).plan(&comp, &m, &f.alternates);
        // No particular plan is promised for poisoned inputs — only that
        // the adaptation loop survives to report one or none.
        if let Some(p) = plan {
            assert!(f.ids.contains(&p.to.id()));
        }
    }

    #[test]
    fn healthy_composition_yields_no_plan() {
        let (f, comp) = fx([90.0, 90.0]);
        let m = QosMonitor::new();
        // No violation: the planner must not churn healthy bindings.
        let plan = Substitution::new(&f.model).plan(&comp, &m, &f.alternates);
        assert!(plan.is_none());
    }
}
