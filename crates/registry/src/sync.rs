//! The unified replication surface: [`RegistrySync`].
//!
//! Three consumers used to hand-stitch the same cursor/gap/snapshot
//! dance against the raw event log: delta-QASSA re-selection (replaying
//! churn since compose time), the daemon's churn receipts, and the
//! cluster gossip peers. `RegistrySync` folds that dance into one typed
//! call: a replica presents its [`ReplicaCursor`] and gets back either
//! the contiguous [`SyncResponse::Delta`] it can replay incrementally,
//! or — when the cursor fell behind the retained window — a
//! [`SyncResponse::Snapshot`] to resync from. The gap is handled *inside*
//! the trait, so callers can no longer forget the fallback leg.
//!
//! # Examples
//!
//! ```
//! use qasom_registry::{RegistrySync, ServiceDescription, ServiceRegistry, SyncResponse};
//!
//! let mut reg = ServiceRegistry::new();
//! let replica = reg.sync_cursor(); // replica is caught up at the origin
//! reg.register(ServiceDescription::new("s", "d#F"));
//! match reg.sync_from(replica) {
//!     SyncResponse::Delta(events) => assert_eq!(events.len(), 1),
//!     SyncResponse::Snapshot(_) => unreachable!("nothing was compacted"),
//! }
//! ```

use std::fmt;

use crate::registry::{RegistryEvent, RegistrySnapshot, ServiceRegistry};

/// A replica's position in a registry's monotone event log.
///
/// Sequence numbers are never reused and compaction never rewinds them,
/// so cursors are totally ordered and a cursor taken from one
/// [`sync_cursor`](RegistrySync::sync_cursor) call remains meaningful for
/// every later [`sync_from`](RegistrySync::sync_from). The newtype
/// replaces the bare `usize` cursors the pre-cluster API passed around —
/// a bare `usize` reads equally well as a length, an index or an epoch,
/// which is exactly how the `retry_after_ticks` class of off-by-one bugs
/// gets in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaCursor(usize);

impl ReplicaCursor {
    /// The cursor before the first event ever emitted.
    pub const ORIGIN: ReplicaCursor = ReplicaCursor(0);

    /// A cursor at raw sequence number `seq`.
    pub fn new(seq: usize) -> Self {
        ReplicaCursor(seq)
    }

    /// The raw sequence number.
    pub fn seq(self) -> usize {
        self.0
    }

    /// The cursor after replaying `events` further events.
    #[must_use]
    pub fn advanced_by(self, events: usize) -> Self {
        ReplicaCursor(self.0.saturating_add(events))
    }

    /// How many events this cursor trails `head` by (0 when caught up or
    /// ahead).
    pub fn lag_behind(self, head: ReplicaCursor) -> usize {
        head.0.saturating_sub(self.0)
    }
}

impl fmt::Display for ReplicaCursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// What a replica gets back from [`RegistrySync::sync_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncResponse<'a> {
    /// The contiguous events from the replica's cursor to the head.
    /// Replaying them advances the replica to
    /// [`sync_cursor`](RegistrySync::sync_cursor). Empty when the
    /// replica is already caught up.
    Delta(&'a [RegistryEvent]),
    /// The replica's cursor predates the oldest retained event:
    /// incremental catch-up is impossible, replace the world view with
    /// the snapshot's live set and continue from its cursor.
    Snapshot(RegistrySnapshot),
}

impl SyncResponse<'_> {
    /// Whether the response is the snapshot (gap-fallback) leg.
    pub fn is_snapshot(&self) -> bool {
        matches!(self, SyncResponse::Snapshot(_))
    }

    /// The cursor a replica that applies this response ends up at, given
    /// the cursor it asked from.
    pub fn cursor_after(&self, asked_from: ReplicaCursor) -> ReplicaCursor {
        match self {
            SyncResponse::Delta(events) => asked_from.advanced_by(events.len()),
            SyncResponse::Snapshot(snap) => ReplicaCursor::new(snap.cursor),
        }
    }
}

/// The typed replication surface of a service registry.
///
/// Implementations promise:
///
/// * [`sync_cursor`](RegistrySync::sync_cursor) is monotone;
/// * [`sync_from`](RegistrySync::sync_from) returns
///   [`SyncResponse::Delta`] exactly when the cursor is inside the
///   retained window, and the delta is the *complete* contiguous run of
///   events from the cursor to the head;
/// * the snapshot leg's live set plus later deltas reconstruct every
///   subsequent registry state.
pub trait RegistrySync {
    /// The head of the event log: where a replica that replays
    /// everything ends up.
    fn sync_cursor(&self) -> ReplicaCursor;

    /// Events since `cursor`, or a snapshot when the cursor fell behind
    /// the retained window.
    fn sync_from(&self, cursor: ReplicaCursor) -> SyncResponse<'_>;

    /// How far `cursor` trails the head, in events.
    fn sync_lag(&self, cursor: ReplicaCursor) -> usize {
        cursor.lag_behind(self.sync_cursor())
    }
}

impl RegistrySync for ServiceRegistry {
    fn sync_cursor(&self) -> ReplicaCursor {
        ReplicaCursor::new(self.event_head())
    }

    fn sync_from(&self, cursor: ReplicaCursor) -> SyncResponse<'_> {
        match self.retained_events_from(cursor.seq()) {
            Ok(events) => SyncResponse::Delta(events),
            Err(_) => SyncResponse::Snapshot(self.resync_point()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceDescription;

    fn svc(name: &str) -> ServiceDescription {
        ServiceDescription::new(name, "d#F")
    }

    #[test]
    fn caught_up_replica_gets_an_empty_delta() {
        let reg = ServiceRegistry::new();
        let cursor = reg.sync_cursor();
        assert_eq!(cursor, ReplicaCursor::ORIGIN);
        match reg.sync_from(cursor) {
            SyncResponse::Delta(events) => assert!(events.is_empty()),
            SyncResponse::Snapshot(_) => panic!("empty log cannot gap"),
        }
    }

    #[test]
    fn delta_replays_to_the_head() {
        let mut reg = ServiceRegistry::new();
        let cursor = reg.sync_cursor();
        let a = reg.register(svc("a"));
        reg.deregister(a);
        let response = reg.sync_from(cursor);
        match &response {
            SyncResponse::Delta(events) => assert_eq!(
                **events,
                [RegistryEvent::Registered(a), RegistryEvent::Deregistered(a)]
            ),
            SyncResponse::Snapshot(_) => panic!("nothing was compacted"),
        }
        assert_eq!(response.cursor_after(cursor), reg.sync_cursor());
    }

    #[test]
    fn gap_falls_back_to_a_snapshot() {
        let mut reg = ServiceRegistry::new();
        let stale = reg.sync_cursor();
        let a = reg.register(svc("a"));
        let b = reg.register(svc("b"));
        reg.set_event_retention(1);
        let response = reg.sync_from(stale);
        assert!(response.is_snapshot());
        match &response {
            SyncResponse::Snapshot(snap) => {
                assert_eq!(snap.live, vec![a, b]);
                assert_eq!(snap.cursor, reg.sync_cursor().seq());
            }
            SyncResponse::Delta(_) => unreachable!(),
        }
        // Continuing from the snapshot's cursor is incremental again.
        let caught_up = response.cursor_after(stale);
        let c = reg.register(svc("c"));
        match reg.sync_from(caught_up) {
            SyncResponse::Delta(events) => {
                assert_eq!(*events, [RegistryEvent::Registered(c)]);
            }
            SyncResponse::Snapshot(_) => panic!("cursor was inside the window"),
        }
    }

    #[test]
    fn cursor_arithmetic_is_saturating_and_ordered() {
        let a = ReplicaCursor::new(3);
        let b = ReplicaCursor::new(7);
        assert!(a < b);
        assert_eq!(a.lag_behind(b), 4);
        assert_eq!(b.lag_behind(a), 0);
        assert_eq!(a.advanced_by(4), b);
        assert_eq!(a.to_string(), "@3");
    }

    #[test]
    fn deprecated_shims_agree_with_the_sync_surface() {
        #![allow(deprecated)]
        let mut reg = ServiceRegistry::new();
        let cursor = reg.sync_cursor();
        reg.register(svc("a"));
        let via_shim = reg.events_since(cursor.seq()).map(<[_]>::to_vec);
        match reg.sync_from(cursor) {
            SyncResponse::Delta(events) => assert_eq!(via_shim.as_deref(), Ok(events)),
            SyncResponse::Snapshot(_) => panic!("no gap"),
        }
        let snap = reg.snapshot();
        match reg.sync_from(ReplicaCursor::new(usize::MAX)) {
            // A cursor past the head is an empty delta, not a gap…
            SyncResponse::Delta(events) => assert!(events.is_empty()),
            SyncResponse::Snapshot(_) => panic!("ahead is not behind"),
        }
        assert_eq!(snap.cursor, reg.sync_cursor().seq());
    }
}
