//! Service model, repository and QoS-aware semantic discovery.
//!
//! Pervasive environments are *dynamic service environments*: providers
//! join and leave, and users have no prior knowledge of what is available.
//! This crate provides the middleware's view of that world:
//!
//! * [`ServiceDescription`] — a provider's advertisement: capability
//!   concept, consumed/produced data concepts, advertised QoS
//!   ([`QosVector`]), optional per-operation (*white-box*) QoS, and the
//!   hosting node;
//! * [`ServiceRegistry`] — the service directory, supporting dynamic
//!   registration and departure;
//! * [`RegistrySync`] — the typed replication surface: a replica
//!   presents its [`ReplicaCursor`] and gets back a [`SyncResponse`] —
//!   an incremental event delta, or a snapshot when the cursor fell
//!   behind the retained event window (delta re-selection, daemon churn
//!   receipts and the cluster gossip peers all sync through it);
//! * [`Discovery`] — QoS-aware service discovery: semantic functional
//!   matching (through a domain [`Ontology`]) combined with I/O
//!   compatibility and QoS-requirement filtering. One entry point,
//!   [`Discovery::discover`], takes a [`DiscoveryQuery`] (minimum match
//!   degree, white-box matching, QoS requirements) and yields the
//!   per-activity candidate sets (`S_i`) — [`DiscoveredCandidate`]s —
//!   the selection algorithm consumes. Registries
//!   [bound](ServiceRegistry::bind_ontology) to the ontology answer
//!   queries from an inverted capability index instead of a full scan.
//!
//! # Examples
//!
//! ```
//! use qasom_ontology::OntologyBuilder;
//! use qasom_qos::QosModel;
//! use qasom_registry::{Discovery, DiscoveryQuery, ServiceDescription, ServiceRegistry};
//! use qasom_task::Activity;
//! use std::sync::Arc;
//!
//! let mut onto = OntologyBuilder::new("shop");
//! let pay = onto.concept("Pay");
//! onto.subconcept("PayByCard", pay);
//! let onto = Arc::new(onto.build().unwrap());
//! let model = QosModel::standard();
//!
//! // Binding the ontology lets the registry maintain a capability index,
//! // so discovery probes the index instead of scanning every service.
//! let mut registry = ServiceRegistry::with_ontology(Arc::clone(&onto));
//! registry.register(ServiceDescription::new("visa", "shop#PayByCard"));
//!
//! let discovery = Discovery::new(&onto, &model);
//! let activity = Activity::new("pay", "shop#Pay");
//! let candidates = discovery.discover(&registry, &DiscoveryQuery::new(&activity));
//! assert_eq!(candidates.len(), 1); // PayByCard plugs into Pay
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discovery;
pub mod persist;
pub mod qsd;
mod registry;
mod service;
mod sync;

pub use discovery::{
    CacheStats, DiscoveredCandidate, Discovery, DiscoveryQuery, MatchCache, MatchedVia,
};
pub use registry::{EventLogGap, RegistryEvent, RegistrySnapshot, ServiceId, ServiceRegistry};
pub use service::{Operation, ServiceDescription};
pub use sync::{RegistrySync, ReplicaCursor, SyncResponse};

pub use qasom_qos::QosVector;

#[doc(no_inline)]
pub use qasom_ontology::Ontology;
