//! Service model, repository and QoS-aware semantic discovery.
//!
//! Pervasive environments are *dynamic service environments*: providers
//! join and leave, and users have no prior knowledge of what is available.
//! This crate provides the middleware's view of that world:
//!
//! * [`ServiceDescription`] — a provider's advertisement: capability
//!   concept, consumed/produced data concepts, advertised QoS
//!   ([`QosVector`]), optional per-operation (*white-box*) QoS, and the
//!   hosting node;
//! * [`ServiceRegistry`] — the service directory, supporting dynamic
//!   registration and departure;
//! * [`Discovery`] — QoS-aware service discovery: semantic functional
//!   matching (through a domain [`Ontology`]) combined with I/O
//!   compatibility and QoS-requirement filtering, yielding the per-activity
//!   candidate sets (`S_i`) the selection algorithm consumes.
//!
//! # Examples
//!
//! ```
//! use qasom_ontology::OntologyBuilder;
//! use qasom_qos::QosModel;
//! use qasom_registry::{Discovery, ServiceDescription, ServiceRegistry};
//! use qasom_task::Activity;
//!
//! let mut onto = OntologyBuilder::new("shop");
//! let pay = onto.concept("Pay");
//! onto.subconcept("PayByCard", pay);
//! let onto = onto.build().unwrap();
//! let model = QosModel::standard();
//!
//! let mut registry = ServiceRegistry::new();
//! registry.register(ServiceDescription::new("visa", "shop#PayByCard"));
//!
//! let discovery = Discovery::new(&onto, &model);
//! let activity = Activity::new("pay", "shop#Pay");
//! let candidates = discovery.candidates(&registry, &activity);
//! assert_eq!(candidates.len(), 1); // PayByCard plugs into Pay
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discovery;
pub mod qsd;
mod registry;
mod service;

pub use discovery::{Candidate, Discovery};
pub use registry::{RegistryEvent, ServiceId, ServiceRegistry};
pub use service::{Operation, ServiceDescription};

pub use qasom_qos::QosVector;

#[doc(no_inline)]
pub use qasom_ontology::Ontology;
