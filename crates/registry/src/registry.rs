//! The service directory.

use std::fmt;

use qasom_ontology::Iri;

use crate::ServiceDescription;

/// Handle to a registered service. Ids are never reused within one
/// registry, so a stale id reliably reports a departed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(u32);

impl ServiceId {
    /// Index into the registry's service table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A change notification produced by the registry, consumed by components
/// that track environment dynamics (monitoring, adaptation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A provider published a service.
    Registered(ServiceId),
    /// A provider (or churn) removed a service.
    Deregistered(ServiceId),
}

/// The service directory of a pervasive environment.
///
/// Supports dynamic registration/departure and keeps an event log so
/// observers can catch up on churn (`events_since`).
///
/// # Examples
///
/// ```
/// use qasom_registry::{ServiceDescription, ServiceRegistry};
///
/// let mut reg = ServiceRegistry::new();
/// let id = reg.register(ServiceDescription::new("s", "d#F"));
/// assert!(reg.get(id).is_some());
/// reg.deregister(id);
/// assert!(reg.get(id).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    services: Vec<Option<ServiceDescription>>,
    events: Vec<RegistryEvent>,
    alive: usize,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Publishes a service, returning its id.
    pub fn register(&mut self, description: ServiceDescription) -> ServiceId {
        let id = ServiceId(u32::try_from(self.services.len()).expect("registry overflow"));
        self.services.push(Some(description));
        self.alive += 1;
        self.events.push(RegistryEvent::Registered(id));
        id
    }

    /// Removes a service, returning its description if it was present.
    pub fn deregister(&mut self, id: ServiceId) -> Option<ServiceDescription> {
        let slot = self.services.get_mut(id.index())?;
        let desc = slot.take();
        if desc.is_some() {
            self.alive -= 1;
            self.events.push(RegistryEvent::Deregistered(id));
        }
        desc
    }

    /// The description of a live service.
    pub fn get(&self, id: ServiceId) -> Option<&ServiceDescription> {
        self.services.get(id.index())?.as_ref()
    }

    /// Mutable description access (QoS re-advertisement).
    pub fn get_mut(&mut self, id: ServiceId) -> Option<&mut ServiceDescription> {
        self.services.get_mut(id.index())?.as_mut()
    }

    /// Number of live services.
    pub fn len(&self) -> usize {
        self.alive
    }

    /// Whether no service is live.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Iterates over live services.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, &ServiceDescription)> {
        self.services
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|d| (ServiceId(i as u32), d)))
    }

    /// Live services whose function IRI equals `function` exactly
    /// (syntactic lookup; use [`Discovery`](crate::Discovery) for semantic
    /// matching).
    pub fn find_by_function<'a>(
        &'a self,
        function: &'a Iri,
    ) -> impl Iterator<Item = (ServiceId, &'a ServiceDescription)> {
        self.iter().filter(move |(_, d)| d.function() == function)
    }

    /// Live services hosted on `node`.
    pub fn hosted_on(&self, node: u64) -> impl Iterator<Item = (ServiceId, &ServiceDescription)> {
        self.iter().filter(move |(_, d)| d.host() == Some(node))
    }

    /// Total number of events emitted so far (a cursor for
    /// [`ServiceRegistry::events_since`]).
    pub fn event_cursor(&self) -> usize {
        self.events.len()
    }

    /// Events emitted at or after `cursor`.
    pub fn events_since(&self, cursor: usize) -> &[RegistryEvent] {
        &self.events[cursor.min(self.events.len())..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(name: &str, function: &str) -> ServiceDescription {
        ServiceDescription::new(name, function)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        let b = r.register(svc("b", "d#G"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().name(), "a");
        assert_eq!(r.get(b).unwrap().name(), "b");
    }

    #[test]
    fn deregister_removes_and_is_idempotent() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        assert!(r.deregister(a).is_some());
        assert!(r.deregister(a).is_none());
        assert_eq!(r.len(), 0);
        assert!(r.get(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        let b = r.register(svc("b", "d#F"));
        assert_ne!(a, b);
        assert!(r.get(a).is_none());
    }

    #[test]
    fn find_by_function_is_syntactic() {
        let mut r = ServiceRegistry::new();
        r.register(svc("a", "d#F"));
        r.register(svc("b", "d#F"));
        r.register(svc("c", "d#G"));
        let f: Iri = "d#F".parse().unwrap();
        assert_eq!(r.find_by_function(&f).count(), 2);
    }

    #[test]
    fn hosted_on_filters_by_node() {
        let mut r = ServiceRegistry::new();
        r.register(svc("a", "d#F").with_host(1));
        r.register(svc("b", "d#F").with_host(2));
        assert_eq!(r.hosted_on(1).count(), 1);
        assert_eq!(r.hosted_on(3).count(), 0);
    }

    #[test]
    fn event_log_records_churn() {
        let mut r = ServiceRegistry::new();
        let cursor = r.event_cursor();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        assert_eq!(
            r.events_since(cursor),
            &[
                RegistryEvent::Registered(a),
                RegistryEvent::Deregistered(a)
            ]
        );
        assert!(r.events_since(r.event_cursor()).is_empty());
    }
}
