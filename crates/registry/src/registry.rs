//! The service directory.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use qasom_ontology::{ConceptId, Iri, Ontology};

use crate::ServiceDescription;

/// Capability-index tag: the service's *profile* matches the probed
/// concept.
pub(crate) const VIA_PROFILE: u8 = 0b01;
/// Capability-index tag: one of the service's *operations* matches the
/// probed concept.
pub(crate) const VIA_OPERATION: u8 = 0b10;

/// The inverted capability index: for every (canonical) ontology concept,
/// the live services that can serve a request for it with a usable degree
/// (`Exact` or `PlugIn`), plus syntactic buckets for function IRIs the
/// ontology does not know.
///
/// `BTreeMap<ServiceId, u8>` keeps each posting list id-sorted, so index
/// probes enumerate candidates in the same order a linear registry scan
/// would — a prerequisite for byte-identical discovery results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CapabilityIndex {
    /// canonical concept → services offering a sub-concept (or the
    /// concept itself), tagged with *how* (profile and/or operation).
    by_concept: HashMap<ConceptId, BTreeMap<ServiceId, u8>>,
    /// function IRIs unknown to the ontology → services advertising them
    /// verbatim (syntactic `Exact` fallback), with the same tags.
    by_unknown_iri: HashMap<Iri, BTreeMap<ServiceId, u8>>,
}

impl CapabilityIndex {
    fn insert(&mut self, ontology: &Ontology, id: ServiceId, desc: &ServiceDescription) {
        self.tag(ontology, id, desc.function(), VIA_PROFILE);
        for op in desc.operations() {
            self.tag(ontology, id, op.function(), VIA_OPERATION);
        }
    }

    fn remove(&mut self, ontology: &Ontology, id: ServiceId, desc: &ServiceDescription) {
        self.untag(ontology, id, desc.function(), VIA_PROFILE);
        for op in desc.operations() {
            self.untag(ontology, id, op.function(), VIA_OPERATION);
        }
    }

    fn tag(&mut self, ontology: &Ontology, id: ServiceId, offered: &Iri, via: u8) {
        match ontology.concept(offered) {
            Some(concept) => {
                // A request for any ancestor of the offered concept is
                // served with Exact or PlugIn strength, so the service
                // joins every ancestor's posting list. `ancestors`
                // yields canonical ids, which is also what probes use.
                for ancestor in ontology.ancestors(concept) {
                    *self
                        .by_concept
                        .entry(ancestor)
                        .or_default()
                        .entry(id)
                        .or_insert(0) |= via;
                }
            }
            None => {
                *self
                    .by_unknown_iri
                    .entry(offered.clone())
                    .or_default()
                    .entry(id)
                    .or_insert(0) |= via;
            }
        }
    }

    fn untag(&mut self, ontology: &Ontology, id: ServiceId, offered: &Iri, via: u8) {
        match ontology.concept(offered) {
            Some(concept) => {
                for ancestor in ontology.ancestors(concept) {
                    Self::clear_bit(self.by_concept.get_mut(&ancestor), id, via);
                    if self
                        .by_concept
                        .get(&ancestor)
                        .is_some_and(BTreeMap::is_empty)
                    {
                        self.by_concept.remove(&ancestor);
                    }
                }
            }
            None => {
                Self::clear_bit(self.by_unknown_iri.get_mut(offered), id, via);
                if self
                    .by_unknown_iri
                    .get(offered)
                    .is_some_and(BTreeMap::is_empty)
                {
                    self.by_unknown_iri.remove(offered);
                }
            }
        }
    }

    fn clear_bit(bucket: Option<&mut BTreeMap<ServiceId, u8>>, id: ServiceId, via: u8) {
        let Some(bucket) = bucket else { return };
        if let Some(bits) = bucket.get_mut(&id) {
            *bits &= !via;
            if *bits == 0 {
                bucket.remove(&id);
            }
        }
    }
}

/// Handle to a registered service. Ids are never reused within one
/// registry, so a stale id reliably reports a departed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(u32);

impl ServiceId {
    /// Index into the registry's service table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A change notification produced by the registry, consumed by components
/// that track environment dynamics (monitoring, adaptation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A provider published a service.
    Registered(ServiceId),
    /// A provider (or churn) removed a service.
    Deregistered(ServiceId),
}

/// The service directory of a pervasive environment.
///
/// Supports dynamic registration/departure and keeps an event log so
/// observers can catch up on churn (`events_since`).
///
/// # Examples
///
/// ```
/// use qasom_registry::{ServiceDescription, ServiceRegistry};
///
/// let mut reg = ServiceRegistry::new();
/// let id = reg.register(ServiceDescription::new("s", "d#F"));
/// assert!(reg.get(id).is_some());
/// reg.deregister(id);
/// assert!(reg.get(id).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    services: Vec<Option<ServiceDescription>>,
    events: Vec<RegistryEvent>,
    alive: usize,
    /// Bound taxonomy: enables the inverted capability index. `None`
    /// keeps the registry purely syntactic (discovery falls back to
    /// linear scans).
    ontology: Option<Arc<Ontology>>,
    index: CapabilityIndex,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Creates an empty registry with the capability index enabled over
    /// `ontology` (see [`ServiceRegistry::bind_ontology`]).
    pub fn with_ontology(ontology: Arc<Ontology>) -> Self {
        let mut registry = ServiceRegistry::new();
        registry.bind_ontology(ontology);
        registry
    }

    /// Binds a domain ontology and (re)builds the inverted capability
    /// index over it.
    ///
    /// From then on every registration and departure maintains the index
    /// incrementally: a service is posted under every *ancestor* of its
    /// offered capability concepts, so a PlugIn/Exact lookup for a
    /// required concept is a single probe instead of a registry scan.
    /// [`Discovery`](crate::Discovery) uses the index automatically when
    /// its ontology matches the bound one (checked via
    /// [`Ontology::stamp`]).
    pub fn bind_ontology(&mut self, ontology: Arc<Ontology>) {
        self.ontology = Some(ontology);
        self.rebuild_index();
    }

    /// The ontology the capability index is maintained over, if any.
    pub fn ontology(&self) -> Option<&Arc<Ontology>> {
        self.ontology.as_ref()
    }

    /// Discards and rebuilds the capability index from the live services.
    ///
    /// Needed only after mutating a service's *capabilities* (function or
    /// operations) in place through [`ServiceRegistry::get_mut`] — QoS
    /// re-advertisements do not touch the index.
    pub fn rebuild_index(&mut self) {
        self.index = CapabilityIndex::default();
        let Some(ontology) = self.ontology.clone() else {
            return;
        };
        for (i, slot) in self.services.iter().enumerate() {
            if let Some(desc) = slot {
                self.index.insert(&ontology, ServiceId(i as u32), desc);
            }
        }
    }

    /// Whether the incrementally maintained capability index is equal to
    /// one rebuilt from scratch — the index's consistency invariant,
    /// exercised by the churn property tests.
    pub fn index_matches_rebuild(&self) -> bool {
        let Some(ontology) = self.ontology.as_deref() else {
            // No ontology bound: the index must be empty.
            return self.index == CapabilityIndex::default();
        };
        let mut fresh = CapabilityIndex::default();
        for (id, desc) in self.iter() {
            fresh.insert(ontology, id, desc);
        }
        self.index == fresh
    }

    /// Index probe: live services able to serve a request for `concept`
    /// with usable strength (`Exact`/`PlugIn`), id-ascending, tagged with
    /// how they qualified. `concept` is canonicalised by the caller
    /// ([`Ontology::canon`]).
    pub(crate) fn usable_for_concept(
        &self,
        concept: ConceptId,
    ) -> Option<&BTreeMap<ServiceId, u8>> {
        self.index.by_concept.get(&concept)
    }

    /// Index probe: live services advertising the ontology-unknown IRI
    /// `function` verbatim (syntactic `Exact` fallback).
    pub(crate) fn usable_for_unknown_iri(
        &self,
        function: &Iri,
    ) -> Option<&BTreeMap<ServiceId, u8>> {
        self.index.by_unknown_iri.get(function)
    }

    /// Publishes a service, returning its id.
    pub fn register(&mut self, description: ServiceDescription) -> ServiceId {
        let id = ServiceId(u32::try_from(self.services.len()).expect("registry overflow"));
        if let Some(ontology) = &self.ontology {
            self.index.insert(ontology, id, &description);
        }
        self.services.push(Some(description));
        self.alive += 1;
        self.events.push(RegistryEvent::Registered(id));
        id
    }

    /// Removes a service, returning its description if it was present.
    pub fn deregister(&mut self, id: ServiceId) -> Option<ServiceDescription> {
        let slot = self.services.get_mut(id.index())?;
        let desc = slot.take();
        if let Some(desc) = &desc {
            self.alive -= 1;
            self.events.push(RegistryEvent::Deregistered(id));
            if let Some(ontology) = &self.ontology {
                self.index.remove(ontology, id, desc);
            }
        }
        desc
    }

    /// The description of a live service.
    pub fn get(&self, id: ServiceId) -> Option<&ServiceDescription> {
        self.services.get(id.index())?.as_ref()
    }

    /// Mutable description access (QoS re-advertisement).
    pub fn get_mut(&mut self, id: ServiceId) -> Option<&mut ServiceDescription> {
        self.services.get_mut(id.index())?.as_mut()
    }

    /// Number of live services.
    pub fn len(&self) -> usize {
        self.alive
    }

    /// Whether no service is live.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Iterates over live services.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, &ServiceDescription)> {
        self.services
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|d| (ServiceId(i as u32), d)))
    }

    /// Live services whose function IRI equals `function` exactly
    /// (syntactic lookup; use [`Discovery`](crate::Discovery) for semantic
    /// matching).
    pub fn find_by_function<'a>(
        &'a self,
        function: &'a Iri,
    ) -> impl Iterator<Item = (ServiceId, &'a ServiceDescription)> {
        self.iter().filter(move |(_, d)| d.function() == function)
    }

    /// Live services hosted on `node`.
    pub fn hosted_on(&self, node: u64) -> impl Iterator<Item = (ServiceId, &ServiceDescription)> {
        self.iter().filter(move |(_, d)| d.host() == Some(node))
    }

    /// Total number of events emitted so far (a cursor for
    /// [`ServiceRegistry::events_since`]).
    pub fn event_cursor(&self) -> usize {
        self.events.len()
    }

    /// Events emitted at or after `cursor`.
    pub fn events_since(&self, cursor: usize) -> &[RegistryEvent] {
        &self.events[cursor.min(self.events.len())..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(name: &str, function: &str) -> ServiceDescription {
        ServiceDescription::new(name, function)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        let b = r.register(svc("b", "d#G"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().name(), "a");
        assert_eq!(r.get(b).unwrap().name(), "b");
    }

    #[test]
    fn deregister_removes_and_is_idempotent() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        assert!(r.deregister(a).is_some());
        assert!(r.deregister(a).is_none());
        assert_eq!(r.len(), 0);
        assert!(r.get(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        let b = r.register(svc("b", "d#F"));
        assert_ne!(a, b);
        assert!(r.get(a).is_none());
    }

    #[test]
    fn find_by_function_is_syntactic() {
        let mut r = ServiceRegistry::new();
        r.register(svc("a", "d#F"));
        r.register(svc("b", "d#F"));
        r.register(svc("c", "d#G"));
        let f: Iri = "d#F".parse().unwrap();
        assert_eq!(r.find_by_function(&f).count(), 2);
    }

    #[test]
    fn hosted_on_filters_by_node() {
        let mut r = ServiceRegistry::new();
        r.register(svc("a", "d#F").with_host(1));
        r.register(svc("b", "d#F").with_host(2));
        assert_eq!(r.hosted_on(1).count(), 1);
        assert_eq!(r.hosted_on(3).count(), 0);
    }

    #[test]
    fn event_log_records_churn() {
        let mut r = ServiceRegistry::new();
        let cursor = r.event_cursor();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        assert_eq!(
            r.events_since(cursor),
            &[RegistryEvent::Registered(a), RegistryEvent::Deregistered(a)]
        );
        assert!(r.events_since(r.event_cursor()).is_empty());
    }
}
