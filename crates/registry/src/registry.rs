//! The service directory.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use qasom_ontology::{ConceptId, Iri, Ontology};

use crate::ServiceDescription;

/// Capability-index tag: the service's *profile* matches the probed
/// concept.
pub(crate) const VIA_PROFILE: u8 = 0b01;
/// Capability-index tag: one of the service's *operations* matches the
/// probed concept.
pub(crate) const VIA_OPERATION: u8 = 0b10;

/// The inverted capability index: for every (canonical) ontology concept,
/// the live services that can serve a request for it with a usable degree
/// (`Exact` or `PlugIn`), plus syntactic buckets for function IRIs the
/// ontology does not know.
///
/// `BTreeMap<ServiceId, u8>` keeps each posting list id-sorted, so index
/// probes enumerate candidates in the same order a linear registry scan
/// would — a prerequisite for byte-identical discovery results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CapabilityIndex {
    /// canonical concept → services offering a sub-concept (or the
    /// concept itself), tagged with *how* (profile and/or operation).
    by_concept: HashMap<ConceptId, BTreeMap<ServiceId, u8>>,
    /// function IRIs unknown to the ontology → services advertising them
    /// verbatim (syntactic `Exact` fallback), with the same tags.
    by_unknown_iri: HashMap<Iri, BTreeMap<ServiceId, u8>>,
}

impl CapabilityIndex {
    fn insert(&mut self, ontology: &Ontology, id: ServiceId, desc: &ServiceDescription) {
        self.tag(ontology, id, desc.function(), VIA_PROFILE);
        for op in desc.operations() {
            self.tag(ontology, id, op.function(), VIA_OPERATION);
        }
    }

    fn remove(&mut self, ontology: &Ontology, id: ServiceId, desc: &ServiceDescription) {
        self.untag(ontology, id, desc.function(), VIA_PROFILE);
        for op in desc.operations() {
            self.untag(ontology, id, op.function(), VIA_OPERATION);
        }
    }

    fn tag(&mut self, ontology: &Ontology, id: ServiceId, offered: &Iri, via: u8) {
        match ontology.concept(offered) {
            Some(concept) => {
                // A request for any ancestor of the offered concept is
                // served with Exact or PlugIn strength, so the service
                // joins every ancestor's posting list. `ancestors`
                // yields canonical ids, which is also what probes use.
                for ancestor in ontology.ancestors(concept) {
                    *self
                        .by_concept
                        .entry(ancestor)
                        .or_default()
                        .entry(id)
                        .or_insert(0) |= via;
                }
            }
            None => {
                *self
                    .by_unknown_iri
                    .entry(offered.clone())
                    .or_default()
                    .entry(id)
                    .or_insert(0) |= via;
            }
        }
    }

    fn untag(&mut self, ontology: &Ontology, id: ServiceId, offered: &Iri, via: u8) {
        match ontology.concept(offered) {
            Some(concept) => {
                for ancestor in ontology.ancestors(concept) {
                    Self::clear_bit(self.by_concept.get_mut(&ancestor), id, via);
                    if self
                        .by_concept
                        .get(&ancestor)
                        .is_some_and(BTreeMap::is_empty)
                    {
                        self.by_concept.remove(&ancestor);
                    }
                }
            }
            None => {
                Self::clear_bit(self.by_unknown_iri.get_mut(offered), id, via);
                if self
                    .by_unknown_iri
                    .get(offered)
                    .is_some_and(BTreeMap::is_empty)
                {
                    self.by_unknown_iri.remove(offered);
                }
            }
        }
    }

    fn clear_bit(bucket: Option<&mut BTreeMap<ServiceId, u8>>, id: ServiceId, via: u8) {
        let Some(bucket) = bucket else { return };
        if let Some(bits) = bucket.get_mut(&id) {
            *bits &= !via;
            if *bits == 0 {
                bucket.remove(&id);
            }
        }
    }
}

/// Handle to a registered service. Ids are never reused within one
/// registry, so a stale id reliably reports a departed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(u32);

impl ServiceId {
    /// Index into the registry's service table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id, for persistence codecs.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw form (persistence codecs only: ids
    /// are meaningful within the registry that allocated them).
    pub fn from_raw(raw: u32) -> Self {
        ServiceId(raw)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A change notification produced by the registry, consumed by components
/// that track environment dynamics (monitoring, adaptation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A provider published a service.
    Registered(ServiceId),
    /// A provider (or churn) removed a service.
    Deregistered(ServiceId),
}

/// An observer's cursor points before the oldest retained event: the
/// intervening events were compacted away, so incremental catch-up is
/// impossible and the observer must resync from a [`RegistrySnapshot`]
/// (which [`RegistrySync::sync_from`](crate::RegistrySync::sync_from)
/// hands out automatically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLogGap {
    /// Sequence number of the oldest event still retained.
    pub oldest_retained: usize,
    /// Events lost between the observer's cursor and the retained log.
    pub missed: usize,
}

impl fmt::Display for EventLogGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event log gap: {} events compacted away (oldest retained seq {})",
            self.missed, self.oldest_retained
        )
    }
}

impl std::error::Error for EventLogGap {}

/// A consistent view for observers resyncing across an [`EventLogGap`]:
/// the live services at `cursor`. Replaying events from `cursor` on top
/// of `live` reconstructs every later registry state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Event cursor the snapshot corresponds to (continue incrementally
    /// from here via
    /// [`RegistrySync::sync_from`](crate::RegistrySync::sync_from)).
    pub cursor: usize,
    /// Ids of every live service, ascending.
    pub live: Vec<ServiceId>,
}

/// The service directory of a pervasive environment.
///
/// Supports dynamic registration/departure and keeps an event log so
/// observers can catch up on churn through the typed
/// [`RegistrySync`](crate::RegistrySync) surface. The log can be bounded
/// (`set_event_retention`) or compacted explicitly (`compact_events`);
/// cursors stay monotone across compaction, and an observer whose
/// cursor fell behind the retained window transparently gets a
/// [`RegistrySnapshot`] to resync from.
///
/// # Examples
///
/// ```
/// use qasom_registry::{ServiceDescription, ServiceRegistry};
///
/// let mut reg = ServiceRegistry::new();
/// let id = reg.register(ServiceDescription::new("s", "d#F"));
/// assert!(reg.get(id).is_some());
/// reg.deregister(id);
/// assert!(reg.get(id).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    services: Vec<Option<ServiceDescription>>,
    /// Retained suffix of the event log; `events[0]` has sequence number
    /// `events_base`. Sequence numbers are monotone and never reused, so
    /// compaction moves `events_base` forward without disturbing cursors.
    events: Vec<RegistryEvent>,
    events_base: usize,
    /// Retention bound: compaction keeps at most this many recent events
    /// (`None` = unbounded, the historical behaviour).
    event_retention: Option<usize>,
    alive: usize,
    /// Bound taxonomy: enables the inverted capability index. `None`
    /// keeps the registry purely syntactic (discovery falls back to
    /// linear scans).
    ontology: Option<Arc<Ontology>>,
    index: CapabilityIndex,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Creates an empty registry with the capability index enabled over
    /// `ontology` (see [`ServiceRegistry::bind_ontology`]).
    pub fn with_ontology(ontology: Arc<Ontology>) -> Self {
        let mut registry = ServiceRegistry::new();
        registry.bind_ontology(ontology);
        registry
    }

    /// Rebuilds a registry from persisted state: the full service table
    /// (tombstones included, so replayed registrations allocate the
    /// exact ids the original run did) positioned at event sequence
    /// `events_base` with an empty retained log. The capability index is
    /// rebuilt from the live slots when an ontology is supplied.
    pub(crate) fn restore(
        slots: Vec<Option<ServiceDescription>>,
        events_base: usize,
        ontology: Option<Arc<Ontology>>,
    ) -> Self {
        let alive = slots.iter().flatten().count();
        let mut registry = ServiceRegistry {
            services: slots,
            events: Vec::new(),
            events_base,
            event_retention: None,
            alive,
            ontology,
            index: CapabilityIndex::default(),
        };
        registry.rebuild_index();
        registry
    }

    /// The raw service table — live descriptions and tombstones — for
    /// the persistence snapshot codec.
    pub(crate) fn slots(&self) -> &[Option<ServiceDescription>] {
        &self.services
    }

    /// Binds a domain ontology and (re)builds the inverted capability
    /// index over it.
    ///
    /// From then on every registration and departure maintains the index
    /// incrementally: a service is posted under every *ancestor* of its
    /// offered capability concepts, so a PlugIn/Exact lookup for a
    /// required concept is a single probe instead of a registry scan.
    /// [`Discovery`](crate::Discovery) uses the index automatically when
    /// its ontology matches the bound one (checked via
    /// [`Ontology::stamp`]).
    pub fn bind_ontology(&mut self, ontology: Arc<Ontology>) {
        self.ontology = Some(ontology);
        self.rebuild_index();
    }

    /// The ontology the capability index is maintained over, if any.
    pub fn ontology(&self) -> Option<&Arc<Ontology>> {
        self.ontology.as_ref()
    }

    /// Discards and rebuilds the capability index from the live services.
    ///
    /// Needed only after mutating a service's *capabilities* (function or
    /// operations) in place through [`ServiceRegistry::get_mut`] — QoS
    /// re-advertisements do not touch the index.
    pub fn rebuild_index(&mut self) {
        self.index = CapabilityIndex::default();
        let Some(ontology) = self.ontology.clone() else {
            return;
        };
        for (i, slot) in self.services.iter().enumerate() {
            if let Some(desc) = slot {
                self.index.insert(&ontology, ServiceId(i as u32), desc);
            }
        }
    }

    /// Whether this registry's capability index is identical to
    /// `other`'s — the cross-instance oracle of the persistence
    /// kill-and-replay tests (a recovered registry must rebuild the
    /// exact index, not merely an equivalent one).
    pub fn index_eq(&self, other: &ServiceRegistry) -> bool {
        self.index == other.index
    }

    /// Whether the incrementally maintained capability index is equal to
    /// one rebuilt from scratch — the index's consistency invariant,
    /// exercised by the churn property tests.
    pub fn index_matches_rebuild(&self) -> bool {
        let Some(ontology) = self.ontology.as_deref() else {
            // No ontology bound: the index must be empty.
            return self.index == CapabilityIndex::default();
        };
        let mut fresh = CapabilityIndex::default();
        for (id, desc) in self.iter() {
            fresh.insert(ontology, id, desc);
        }
        self.index == fresh
    }

    /// Index probe: live services able to serve a request for `concept`
    /// with usable strength (`Exact`/`PlugIn`), id-ascending, tagged with
    /// how they qualified. `concept` is canonicalised by the caller
    /// ([`Ontology::canon`]).
    pub(crate) fn usable_for_concept(
        &self,
        concept: ConceptId,
    ) -> Option<&BTreeMap<ServiceId, u8>> {
        self.index.by_concept.get(&concept)
    }

    /// Index probe: live services advertising the ontology-unknown IRI
    /// `function` verbatim (syntactic `Exact` fallback).
    pub(crate) fn usable_for_unknown_iri(
        &self,
        function: &Iri,
    ) -> Option<&BTreeMap<ServiceId, u8>> {
        self.index.by_unknown_iri.get(function)
    }

    /// Publishes a service, returning its id.
    pub fn register(&mut self, description: ServiceDescription) -> ServiceId {
        // Saturate rather than panic: a registry of u32::MAX services is
        // unreachable in practice (the index vectors exhaust memory far
        // earlier), and the broker must never abort the serving loop.
        let id = ServiceId(u32::try_from(self.services.len()).unwrap_or(u32::MAX));
        if let Some(ontology) = &self.ontology {
            self.index.insert(ontology, id, &description);
        }
        self.services.push(Some(description));
        self.alive += 1;
        self.record(RegistryEvent::Registered(id));
        id
    }

    /// Removes a service, returning its description if it was present.
    pub fn deregister(&mut self, id: ServiceId) -> Option<ServiceDescription> {
        let slot = self.services.get_mut(id.index())?;
        let desc = slot.take();
        if let Some(desc) = &desc {
            self.alive -= 1;
            self.record(RegistryEvent::Deregistered(id));
            if let Some(ontology) = &self.ontology {
                self.index.remove(ontology, id, desc);
            }
        }
        desc
    }

    /// The description of a live service.
    pub fn get(&self, id: ServiceId) -> Option<&ServiceDescription> {
        self.services.get(id.index())?.as_ref()
    }

    /// Mutable description access (QoS re-advertisement).
    pub fn get_mut(&mut self, id: ServiceId) -> Option<&mut ServiceDescription> {
        self.services.get_mut(id.index())?.as_mut()
    }

    /// Number of live services.
    pub fn len(&self) -> usize {
        self.alive
    }

    /// Whether no service is live.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Iterates over live services.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, &ServiceDescription)> {
        self.services
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|d| (ServiceId(i as u32), d)))
    }

    /// Live services whose function IRI equals `function` exactly
    /// (syntactic lookup; use [`Discovery`](crate::Discovery) for semantic
    /// matching).
    pub fn find_by_function<'a>(
        &'a self,
        function: &'a Iri,
    ) -> impl Iterator<Item = (ServiceId, &'a ServiceDescription)> {
        self.iter().filter(move |(_, d)| d.function() == function)
    }

    /// Live services hosted on `node`.
    pub fn hosted_on(&self, node: u64) -> impl Iterator<Item = (ServiceId, &ServiceDescription)> {
        self.iter().filter(move |(_, d)| d.host() == Some(node))
    }

    /// Total number of events emitted so far — the head of the event
    /// log, equal to [`RegistrySync::sync_cursor`](crate::RegistrySync::sync_cursor)'s
    /// raw sequence number. Monotone: compaction never rewinds it.
    pub fn event_cursor(&self) -> usize {
        self.event_head()
    }

    /// The raw head sequence number ([`crate::RegistrySync`] backing).
    pub(crate) fn event_head(&self) -> usize {
        self.events_base + self.events.len()
    }

    /// Sequence number of the oldest event still retained. Cursors below
    /// this fall into a gap.
    pub fn oldest_retained_event(&self) -> usize {
        self.events_base
    }

    /// Bounds the event log: at most `keep` recent events are retained
    /// from now on (older ones are compacted away immediately and on
    /// every future emission). Production registries run with a bound so
    /// sustained churn cannot grow memory without limit.
    pub fn set_event_retention(&mut self, keep: usize) {
        self.event_retention = Some(keep);
        self.enforce_retention();
    }

    /// Drops retained events with sequence numbers below `cursor`
    /// (clamped to the emitted range), e.g. once every observer has
    /// consumed them. Returns how many events were dropped.
    pub fn compact_events(&mut self, cursor: usize) -> usize {
        let cut = cursor.clamp(self.events_base, self.event_cursor()) - self.events_base;
        self.events.drain(..cut);
        self.events_base += cut;
        cut
    }

    /// Events emitted at or after `cursor`, or an [`EventLogGap`] when
    /// `cursor` predates the oldest retained event. A cursor at or past
    /// the log head yields an empty slice.
    #[deprecated(
        since = "0.4.0",
        note = "use RegistrySync::sync_from and match the typed SyncResponse — the gap/snapshot fallback is handled inside it"
    )]
    pub fn events_since(&self, cursor: usize) -> Result<&[RegistryEvent], EventLogGap> {
        self.retained_events_from(cursor)
    }

    /// A consistent resync point: the live services as of the current
    /// event cursor.
    #[deprecated(
        since = "0.4.0",
        note = "use RegistrySync::sync_from — it returns SyncResponse::Snapshot exactly when a resync is needed"
    )]
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.resync_point()
    }

    /// [`crate::RegistrySync`] backing: retained events from `cursor`,
    /// or the gap when the cursor fell behind the retained window.
    pub(crate) fn retained_events_from(
        &self,
        cursor: usize,
    ) -> Result<&[RegistryEvent], EventLogGap> {
        if cursor < self.events_base {
            return Err(EventLogGap {
                oldest_retained: self.events_base,
                missed: self.events_base - cursor,
            });
        }
        let from = (cursor - self.events_base).min(self.events.len());
        Ok(&self.events[from..])
    }

    /// [`crate::RegistrySync`] backing: the live services as of the
    /// current event head.
    pub(crate) fn resync_point(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            cursor: self.event_head(),
            live: self.iter().map(|(id, _)| id).collect(),
        }
    }

    fn record(&mut self, event: RegistryEvent) {
        self.events.push(event);
        self.enforce_retention();
    }

    fn enforce_retention(&mut self) {
        if let Some(keep) = self.event_retention {
            if self.events.len() > keep {
                let cut = self.events.len() - keep;
                self.events.drain(..cut);
                self.events_base += cut;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(name: &str, function: &str) -> ServiceDescription {
        ServiceDescription::new(name, function)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        let b = r.register(svc("b", "d#G"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap().name(), "a");
        assert_eq!(r.get(b).unwrap().name(), "b");
    }

    #[test]
    fn deregister_removes_and_is_idempotent() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        assert!(r.deregister(a).is_some());
        assert!(r.deregister(a).is_none());
        assert_eq!(r.len(), 0);
        assert!(r.get(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r = ServiceRegistry::new();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        let b = r.register(svc("b", "d#F"));
        assert_ne!(a, b);
        assert!(r.get(a).is_none());
    }

    #[test]
    fn find_by_function_is_syntactic() {
        let mut r = ServiceRegistry::new();
        r.register(svc("a", "d#F"));
        r.register(svc("b", "d#F"));
        r.register(svc("c", "d#G"));
        let f: Iri = "d#F".parse().unwrap();
        assert_eq!(r.find_by_function(&f).count(), 2);
    }

    #[test]
    fn hosted_on_filters_by_node() {
        let mut r = ServiceRegistry::new();
        r.register(svc("a", "d#F").with_host(1));
        r.register(svc("b", "d#F").with_host(2));
        assert_eq!(r.hosted_on(1).count(), 1);
        assert_eq!(r.hosted_on(3).count(), 0);
    }

    #[test]
    fn event_log_records_churn() {
        let mut r = ServiceRegistry::new();
        let cursor = r.event_cursor();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        assert_eq!(
            r.retained_events_from(cursor).unwrap(),
            &[RegistryEvent::Registered(a), RegistryEvent::Deregistered(a)]
        );
        assert!(r.retained_events_from(r.event_cursor()).unwrap().is_empty());
    }

    #[test]
    fn retention_bounds_the_log_and_keeps_the_cursor_monotone() {
        let mut r = ServiceRegistry::new();
        r.set_event_retention(4);
        for i in 0..10 {
            r.register(svc(&format!("s{i}"), "d#F"));
        }
        // 10 events emitted, only the last 4 retained.
        assert_eq!(r.event_cursor(), 10);
        assert_eq!(r.oldest_retained_event(), 6);
        assert_eq!(r.retained_events_from(6).unwrap().len(), 4);
        // The cursor keeps counting past compaction.
        r.register(svc("late", "d#F"));
        assert_eq!(r.event_cursor(), 11);
        assert_eq!(r.oldest_retained_event(), 7);
    }

    #[test]
    fn stale_cursor_detects_the_gap_and_resyncs_via_snapshot() {
        let mut r = ServiceRegistry::new();
        let stale = r.event_cursor();
        let a = r.register(svc("a", "d#F"));
        let b = r.register(svc("b", "d#F"));
        r.deregister(a);
        r.set_event_retention(1);
        // The observer's cursor fell behind the retained window…
        let gap = r
            .retained_events_from(stale)
            .expect_err("events were compacted");
        assert_eq!(gap.oldest_retained, 2);
        assert_eq!(gap.missed, 2);
        assert!(!gap.to_string().is_empty());
        // …so it resyncs: the snapshot's live set is the current world,
        // and its cursor continues incrementally without another gap.
        let snap = r.resync_point();
        assert_eq!(snap.live, vec![b]);
        assert_eq!(snap.cursor, r.event_cursor());
        let c = r.register(svc("c", "d#F"));
        assert_eq!(
            r.retained_events_from(snap.cursor).unwrap(),
            &[RegistryEvent::Registered(c)]
        );
    }

    #[test]
    fn explicit_compaction_drops_consumed_events() {
        let mut r = ServiceRegistry::new();
        for i in 0..6 {
            r.register(svc(&format!("s{i}"), "d#F"));
        }
        let consumed = 4;
        assert_eq!(r.compact_events(consumed), 4);
        assert_eq!(r.oldest_retained_event(), 4);
        assert_eq!(r.retained_events_from(4).unwrap().len(), 2);
        // Compacting behind the current base or past the head is safe.
        assert_eq!(r.compact_events(0), 0);
        assert_eq!(r.compact_events(usize::MAX), 2);
        assert!(r.retained_events_from(r.event_cursor()).unwrap().is_empty());
        assert_eq!(r.event_cursor(), 6);
    }

    #[test]
    fn unbounded_log_never_gaps() {
        let mut r = ServiceRegistry::new();
        for i in 0..100 {
            let id = r.register(svc(&format!("s{i}"), "d#F"));
            r.deregister(id);
        }
        assert_eq!(r.retained_events_from(0).unwrap().len(), 200);
    }

    // ---- compaction boundary audit ---------------------------------
    // The off-by-one class that bit `retry_after_ticks` in PR 7 lives
    // exactly at these edges: compaction *at* the live cursor, a
    // retention bound of zero, and reads one event either side of the
    // compaction edge.

    #[test]
    fn compaction_exactly_at_the_live_cursor_keeps_the_head_readable() {
        let mut r = ServiceRegistry::new();
        for i in 0..5 {
            r.register(svc(&format!("s{i}"), "d#F"));
        }
        let head = r.event_cursor();
        // Compacting at the head drops everything retained…
        assert_eq!(r.compact_events(head), 5);
        assert_eq!(r.oldest_retained_event(), head);
        assert_eq!(r.event_cursor(), head);
        // …a cursor at the head still reads an empty delta (no gap)…
        assert_eq!(r.retained_events_from(head).unwrap(), &[]);
        // …and the very next event is readable from that same cursor.
        let a = r.register(svc("late", "d#F"));
        assert_eq!(
            r.retained_events_from(head).unwrap(),
            &[RegistryEvent::Registered(a)]
        );
        // Compacting at the head twice is idempotent.
        let head = r.event_cursor();
        assert_eq!(r.compact_events(head), 1);
        assert_eq!(r.compact_events(head), 0);
    }

    #[test]
    fn zero_retention_compacts_every_event_immediately() {
        let mut r = ServiceRegistry::new();
        r.set_event_retention(0);
        let before = r.event_cursor();
        let a = r.register(svc("a", "d#F"));
        r.deregister(a);
        // The cursor still advances event by event…
        assert_eq!(r.event_cursor(), before + 2);
        assert_eq!(r.oldest_retained_event(), r.event_cursor());
        // …a head cursor reads empty, anything older is a gap of the
        // exact missed count.
        assert_eq!(r.retained_events_from(r.event_cursor()).unwrap(), &[]);
        let gap = r.retained_events_from(before).expect_err("all compacted");
        assert_eq!(gap.oldest_retained, r.event_cursor());
        assert_eq!(gap.missed, 2);
        // Setting zero retention on a populated log empties it too.
        let mut r2 = ServiceRegistry::new();
        r2.register(svc("x", "d#F"));
        r2.set_event_retention(0);
        assert_eq!(r2.oldest_retained_event(), r2.event_cursor());
    }

    #[test]
    fn events_at_the_compaction_edge_are_off_by_one_exact() {
        let mut r = ServiceRegistry::new();
        for i in 0..6 {
            r.register(svc(&format!("s{i}"), "d#F"));
        }
        r.compact_events(3);
        let edge = r.oldest_retained_event();
        assert_eq!(edge, 3);
        // At the edge: the full retained window, no gap.
        assert_eq!(r.retained_events_from(edge).unwrap().len(), 3);
        // One before the edge: a gap missing exactly one event.
        let gap = r.retained_events_from(edge - 1).expect_err("one short");
        assert_eq!(gap.oldest_retained, edge);
        assert_eq!(gap.missed, 1);
        // One after the edge: one fewer event, still no gap.
        assert_eq!(r.retained_events_from(edge + 1).unwrap().len(), 2);
    }
}
