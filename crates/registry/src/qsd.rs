//! QSD — the quality-based service description dialect.
//!
//! Providers advertise services as XML documents combining the functional
//! profile (capability concept, I/O concepts, hosting node) with QoS
//! values expressed against the shared [`QosModel`] vocabulary, in any
//! unit of the property's dimension:
//!
//! ```xml
//! <services>
//!   <service name="fnac-books" provider="fnac" function="shop#BuyBook"
//!            host="3" inputs="shop#Title" outputs="shop#Receipt">
//!     <qos property="ResponseTime" value="0.12" unit="s"/>
//!     <qos property="Availability" value="98" unit="%"/>
//!     <operation name="search" function="shop#Search">
//!       <qos property="ResponseTime" value="30" unit="ms"/>
//!     </operation>
//!   </service>
//! </services>
//! ```
//!
//! [`parse`] and [`print()`](fn@print) round-trip (values are canonicalised to the
//! property's canonical unit on the way in).

use std::fmt;

use qasom_analysis::{Analyzer, Diagnostic, OperationView, ServiceView};
use qasom_ontology::Ontology;
use qasom_qos::{QosModel, QosModelError, Unit};
use qasom_task::xml::{self, XmlElement, XmlError};

use crate::{Operation, ServiceDescription};

/// Errors raised while reading a QSD document.
#[derive(Debug, Clone, PartialEq)]
pub enum QsdError {
    /// Malformed XML.
    Xml(XmlError),
    /// Well-formed XML that is not valid QSD.
    Structure(String),
    /// A QoS property name unknown to the model, or a unit of the wrong
    /// dimension.
    Qos(String),
    /// The document parsed, but the static analyzer found error-level
    /// inconsistencies in the advertised QoS specifications.
    Rejected(Vec<Diagnostic>),
}

impl fmt::Display for QsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsdError::Xml(e) => write!(f, "{e}"),
            QsdError::Structure(m) => write!(f, "invalid QSD: {m}"),
            QsdError::Qos(m) => write!(f, "invalid QoS in QSD: {m}"),
            QsdError::Rejected(diags) => {
                write!(f, "QSD rejected by static analysis:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for QsdError {}

impl From<XmlError> for QsdError {
    fn from(e: XmlError) -> Self {
        QsdError::Xml(e)
    }
}

impl From<QosModelError> for QsdError {
    fn from(e: QosModelError) -> Self {
        QsdError::Qos(e.to_string())
    }
}

/// Parses a QSD document into service descriptions.
///
/// # Errors
///
/// Returns a [`QsdError`] on malformed XML, missing attributes, unknown
/// QoS properties or dimension-mismatched units.
pub fn parse(input: &str, model: &QosModel) -> Result<Vec<ServiceDescription>, QsdError> {
    let root = xml::parse(input)?;
    if root.name != "services" {
        return Err(QsdError::Structure(format!(
            "root element must be <services>, found <{}>",
            root.name
        )));
    }
    root.children
        .iter()
        .map(|el| parse_service(el, model))
        .collect()
}

/// Parses a QSD document and runs the static analyzer over every
/// advertised service (QoS values against the property's feasible range,
/// self-reported reputation, and — when `ontology` is given — function
/// IRIs against the domain vocabulary).
///
/// Providers publishing *inconsistent* specs (error-level diagnostics)
/// are rejected wholesale with [`QsdError::Rejected`] instead of being
/// admitted and silently mis-ranked; warning-level diagnostics are
/// returned alongside the accepted descriptions.
///
/// # Errors
///
/// Everything [`parse`] rejects, plus [`QsdError::Rejected`] carrying
/// the analyzer's error diagnostics.
pub fn parse_with_diagnostics(
    input: &str,
    model: &QosModel,
    ontology: Option<&Ontology>,
) -> Result<(Vec<ServiceDescription>, Vec<Diagnostic>), QsdError> {
    let services = parse(input, model)?;
    let mut analyzer = Analyzer::new(model);
    if let Some(onto) = ontology {
        analyzer = analyzer.with_ontology(onto);
    }
    let mut diagnostics = Vec::new();
    for desc in &services {
        diagnostics.extend(analyzer.check_service(&service_view(desc)));
    }
    let (errors, warnings) = qasom_analysis::partition(diagnostics);
    if errors.is_empty() {
        Ok((services, warnings))
    } else {
        Err(QsdError::Rejected(errors))
    }
}

/// The analyzer's view of a parsed service description.
fn service_view(desc: &ServiceDescription) -> ServiceView<'_> {
    ServiceView {
        name: desc.name(),
        function: desc.function(),
        qos: desc.qos(),
        operations: desc
            .operations()
            .iter()
            .map(|op| OperationView {
                name: op.name(),
                function: op.function(),
                qos: op.qos(),
            })
            .collect(),
    }
}

fn parse_service(el: &XmlElement, model: &QosModel) -> Result<ServiceDescription, QsdError> {
    if el.name != "service" {
        return Err(QsdError::Structure(format!(
            "<services> may only contain <service>, found <{}>",
            el.name
        )));
    }
    let name = required(el, "name")?;
    let function = required(el, "function")?;
    let mut desc = ServiceDescription::try_new(name, function)
        .map_err(|e| QsdError::Structure(format!("bad function IRI: {e}")))?;
    if let Some(provider) = el.attr("provider") {
        desc = desc.with_provider(provider);
    }
    if let Some(host) = el.attr("host") {
        let host: u64 = host
            .parse()
            .map_err(|_| QsdError::Structure(format!("bad host id {host:?}")))?;
        desc = desc.with_host(host);
    }
    for (attr, is_input) in [("inputs", true), ("outputs", false)] {
        if let Some(list) = el.attr(attr) {
            for item in list.split_whitespace() {
                if item.parse::<qasom_ontology::Iri>().is_err() {
                    return Err(QsdError::Structure(format!("bad {attr} IRI {item:?}")));
                }
                desc = if is_input {
                    desc.with_input(item)
                } else {
                    desc.with_output(item)
                };
            }
        }
    }
    for child in &el.children {
        match child.name.as_str() {
            "qos" => {
                let (p, v) = parse_qos(child, model)?;
                desc = desc.with_qos(p, v);
            }
            "operation" => {
                let op_name = required(child, "name")?;
                let op_function = required(child, "function")?;
                let mut op = Operation::new(op_name, op_function);
                for q in child.children_named("qos") {
                    let (p, v) = parse_qos(q, model)?;
                    op = op.with_qos(p, v);
                }
                desc = desc.with_operation(op);
            }
            other => {
                return Err(QsdError::Structure(format!(
                    "unknown element <{other}> in <service>"
                )))
            }
        }
    }
    Ok(desc)
}

fn parse_qos(el: &XmlElement, model: &QosModel) -> Result<(qasom_qos::PropertyId, f64), QsdError> {
    let name = required(el, "property")?;
    let raw = required(el, "value")?;
    let value: f64 = raw
        .parse()
        .map_err(|_| QsdError::Qos(format!("bad value {raw:?} for {name}")))?;
    if !value.is_finite() {
        return Err(QsdError::Qos(format!(
            "non-finite value {raw:?} for {name}"
        )));
    }
    let id = model.require(name)?;
    let canonical = model.def(id).unit();
    let value = match el.attr("unit") {
        Some(sym) => {
            let unit: Unit = sym
                .parse()
                .map_err(|e| QsdError::Qos(format!("{e} for {name}")))?;
            unit.convert(value, canonical)
                .map_err(|e| QsdError::Qos(e.to_string()))?
        }
        None => value,
    };
    Ok((id, value))
}

fn required<'a>(el: &'a XmlElement, attr: &str) -> Result<&'a str, QsdError> {
    el.attr(attr)
        .ok_or_else(|| QsdError::Structure(format!("<{}> requires a {attr} attribute", el.name)))
}

/// Prints service descriptions as a QSD document (values in canonical
/// units).
pub fn print(services: &[ServiceDescription], model: &QosModel) -> String {
    let mut root = XmlElement::new("services");
    for desc in services {
        root.children.push(print_service(desc, model));
    }
    root.to_xml()
}

fn print_service(desc: &ServiceDescription, model: &QosModel) -> XmlElement {
    let mut el = XmlElement::new("service")
        .with_attr("name", desc.name())
        .with_attr("function", desc.function().to_string());
    if !desc.provider().is_empty() {
        el = el.with_attr("provider", desc.provider());
    }
    if let Some(host) = desc.host() {
        el = el.with_attr("host", host.to_string());
    }
    if !desc.inputs().is_empty() {
        el = el.with_attr("inputs", iri_list(desc.inputs()));
    }
    if !desc.outputs().is_empty() {
        el = el.with_attr("outputs", iri_list(desc.outputs()));
    }
    for (p, v) in desc.qos().iter() {
        el.children.push(qos_element(model, p, v));
    }
    for op in desc.operations() {
        let mut op_el = XmlElement::new("operation")
            .with_attr("name", op.name())
            .with_attr("function", op.function().to_string());
        for (p, v) in op.qos().iter() {
            op_el.children.push(qos_element(model, p, v));
        }
        el.children.push(op_el);
    }
    el
}

fn qos_element(model: &QosModel, p: qasom_qos::PropertyId, v: f64) -> XmlElement {
    let def = model.def(p);
    let mut el = XmlElement::new("qos")
        .with_attr("property", def.name())
        .with_attr("value", format!("{v}"));
    if def.unit() != Unit::Dimensionless {
        el = el.with_attr("unit", def.unit().to_string());
    }
    el
}

fn iri_list(iris: &[qasom_ontology::Iri]) -> String {
    iris.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
        <services>
          <service name="fnac-books" provider="fnac" function="shop#BuyBook"
                   host="3" inputs="shop#Title" outputs="shop#Receipt">
            <qos property="ResponseTime" value="0.12" unit="s"/>
            <qos property="Availability" value="98" unit="%"/>
            <operation name="search" function="shop#Search">
              <qos property="ResponseTime" value="30" unit="ms"/>
            </operation>
          </service>
          <service name="till" function="shop#Pay">
            <qos property="Price" value="0"/>
          </service>
        </services>"#;

    #[test]
    fn parses_services_with_unit_conversion() {
        let model = QosModel::standard();
        let services = parse(DOC, &model).unwrap();
        assert_eq!(services.len(), 2);
        let rt = model.property("ResponseTime").unwrap();
        let av = model.property("Availability").unwrap();
        let fnac = &services[0];
        assert_eq!(fnac.qos().get(rt), Some(120.0)); // 0.12 s → ms
        let availability = fnac.qos().get(av).unwrap();
        assert!((availability - 0.98).abs() < 1e-12); // 98 % → ratio
        assert_eq!(fnac.host(), Some(3));
        assert_eq!(fnac.operations().len(), 1);
        assert_eq!(fnac.operations()[0].qos().get(rt), Some(30.0));
    }

    #[test]
    fn round_trips_through_print() {
        let model = QosModel::standard();
        let services = parse(DOC, &model).unwrap();
        let printed = print(&services, &model);
        let reparsed = parse(&printed, &model).unwrap();
        // Compare everything except float formatting artefacts.
        assert_eq!(services.len(), reparsed.len());
        for (a, b) in services.iter().zip(&reparsed) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.function(), b.function());
            assert_eq!(a.host(), b.host());
            for (p, v) in a.qos().iter() {
                let rv = b.qos().get(p).unwrap();
                assert!((v - rv).abs() < 1e-9, "{p}: {v} vs {rv}");
            }
        }
    }

    #[test]
    fn rejects_unknown_property() {
        let model = QosModel::standard();
        let doc = r#"<services><service name="s" function="d#F">
                       <qos property="Karma" value="1"/>
                     </service></services>"#;
        assert!(matches!(parse(doc, &model), Err(QsdError::Qos(_))));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let model = QosModel::standard();
        let doc = r#"<services><service name="s" function="d#F">
                       <qos property="ResponseTime" value="1" unit="EUR"/>
                     </service></services>"#;
        assert!(matches!(parse(doc, &model), Err(QsdError::Qos(_))));
    }

    #[test]
    fn rejects_missing_attributes() {
        let model = QosModel::standard();
        let doc = r#"<services><service name="s"/></services>"#;
        let err = parse(doc, &model).unwrap_err();
        assert!(err.to_string().contains("function"));
    }

    #[test]
    fn rejects_wrong_root() {
        let model = QosModel::standard();
        assert!(matches!(
            parse("<service/>", &model),
            Err(QsdError::Structure(_))
        ));
    }

    #[test]
    fn empty_document_yields_no_services() {
        let model = QosModel::standard();
        assert!(parse("<services/>", &model).unwrap().is_empty());
    }
}
