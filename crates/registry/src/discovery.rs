//! QoS-aware semantic service discovery.

use qasom_ontology::{Iri, MatchDegree, Ontology};
use qasom_qos::{ConstraintSet, QosModel};
use qasom_task::Activity;

use crate::{ServiceId, ServiceRegistry};

/// A discovered candidate service for an abstract activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The matched service.
    pub service: ServiceId,
    /// How well its capability matches the required function.
    pub degree: MatchDegree,
}

/// QoS-aware service discovery over a domain [`Ontology`] and a
/// [`QosModel`].
///
/// Discovery is *semantic*: a service matches an activity when its
/// capability concept matches the required function with at least
/// [`MatchDegree::PlugIn`] strength, its I/O signature is compatible, and
/// its advertised QoS passes the activity-level constraints (when given).
/// Function IRIs unknown to the ontology fall back to syntactic equality,
/// so purely syntactic environments still work (degraded recall).
#[derive(Debug, Clone, Copy)]
pub struct Discovery<'a> {
    ontology: &'a Ontology,
    model: &'a QosModel,
}

impl<'a> Discovery<'a> {
    /// Creates a discovery engine over a domain ontology and QoS model.
    pub fn new(ontology: &'a Ontology, model: &'a QosModel) -> Self {
        Discovery { ontology, model }
    }

    /// The QoS model used to interpret constraints.
    pub fn model(&self) -> &QosModel {
        self.model
    }

    /// Semantic match degree between a required and an offered function
    /// IRI. Unknown IRIs match syntactically (equal → exact).
    pub fn match_functions(&self, required: &Iri, offered: &Iri) -> MatchDegree {
        match (self.ontology.concept(required), self.ontology.concept(offered)) {
            (Some(r), Some(o)) => self.ontology.match_degree(r, o),
            _ => {
                if required == offered {
                    MatchDegree::Exact
                } else {
                    MatchDegree::Fail
                }
            }
        }
    }

    /// Whether `required` is satisfied by `offered` (exact or plug-in).
    fn satisfies(&self, required: &Iri, offered: &Iri) -> bool {
        self.match_functions(required, offered).is_usable()
    }

    /// I/O compatibility of a service with an activity:
    ///
    /// * every *output* the activity requires must be produced by the
    ///   service (semantically);
    /// * every *input* the service consumes must be provided by the
    ///   activity.
    ///
    /// Activities or services declaring no I/O impose no I/O constraint on
    /// that side.
    pub fn io_compatible(
        &self,
        activity: &Activity,
        service: &crate::ServiceDescription,
    ) -> bool {
        let outputs_ok = activity.outputs().iter().all(|req| {
            service
                .outputs()
                .iter()
                .any(|off| self.satisfies(req, off))
        });
        let inputs_ok = service.inputs().iter().all(|need| {
            activity
                .inputs()
                .iter()
                .any(|have| self.satisfies(need, have))
        });
        outputs_ok && inputs_ok
    }

    /// Functional matches for a required capability, best degrees first.
    pub fn functional_matches(
        &self,
        registry: &ServiceRegistry,
        required: &Iri,
        min_degree: MatchDegree,
    ) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = registry
            .iter()
            .filter_map(|(id, desc)| {
                let degree = self.match_functions(required, desc.function());
                (degree >= min_degree && degree != MatchDegree::Fail).then_some(Candidate {
                    service: id,
                    degree,
                })
            })
            .collect();
        out.sort_by(|a, b| b.degree.cmp(&a.degree).then(a.service.cmp(&b.service)));
        out
    }

    /// The candidate set `S_i` for an abstract activity: usable functional
    /// matches with a compatible I/O signature.
    pub fn candidates(&self, registry: &ServiceRegistry, activity: &Activity) -> Vec<Candidate> {
        self.functional_matches(registry, activity.function(), MatchDegree::PlugIn)
            .into_iter()
            .filter(|c| {
                registry
                    .get(c.service)
                    .is_some_and(|d| self.io_compatible(activity, d))
            })
            .collect()
    }

    /// White-box discovery: like [`Discovery::candidates`], but services
    /// whose *profile* does not match may still qualify through one of
    /// their conversation [`Operation`](crate::Operation)s. The returned
    /// QoS vector is what selection should reason on: the service-level
    /// advertisement, overridden by the matched operation's per-operation
    /// QoS when the match came from an operation.
    pub fn deep_candidates(
        &self,
        registry: &ServiceRegistry,
        activity: &Activity,
    ) -> Vec<(Candidate, qasom_qos::QosVector)> {
        let mut out = Vec::new();
        for (id, desc) in registry.iter() {
            if !self.io_compatible(activity, desc) {
                continue;
            }
            let profile_degree = self.match_functions(activity.function(), desc.function());
            if profile_degree.is_usable() {
                out.push((
                    Candidate {
                        service: id,
                        degree: profile_degree,
                    },
                    desc.qos().clone(),
                ));
                continue;
            }
            // Fall back to the conversation: the best usable operation.
            let best_op = desc
                .operations()
                .iter()
                .map(|op| (op, self.match_functions(activity.function(), op.function())))
                .filter(|(_, d)| d.is_usable())
                .max_by_key(|&(_, d)| d);
            if let Some((op, degree)) = best_op {
                let mut qos = desc.qos().clone();
                // Operation-level QoS overrides the black-box figures.
                qos.merge_with(op.qos(), |_, op_value| op_value);
                out.push((
                    Candidate {
                        service: id,
                        degree,
                    },
                    qos,
                ));
            }
        }
        out.sort_by(|a, b| {
            b.0.degree
                .cmp(&a.0.degree)
                .then(a.0.service.cmp(&b.0.service))
        });
        out
    }

    /// Like [`Discovery::candidates`] but additionally applies
    /// activity-level QoS constraints to the advertised QoS.
    pub fn qos_candidates(
        &self,
        registry: &ServiceRegistry,
        activity: &Activity,
        local_constraints: &ConstraintSet,
    ) -> Vec<Candidate> {
        self.candidates(registry, activity)
            .into_iter()
            .filter(|c| {
                registry
                    .get(c.service)
                    .is_some_and(|d| local_constraints.satisfied_by(d.qos()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceDescription;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::{Constraint, Tendency, Unit};

    fn domain() -> Ontology {
        let mut b = OntologyBuilder::new("shop");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.subconcept("PayCash", pay);
        b.concept("Browse");
        b.build().unwrap()
    }

    fn setup() -> (Ontology, QosModel) {
        (domain(), QosModel::standard())
    }

    #[test]
    fn plugin_matches_are_discovered() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        r.register(ServiceDescription::new("cash", "shop#PayCash"));
        r.register(ServiceDescription::new("browse", "shop#Browse"));
        let a = Activity::new("pay", "shop#Pay");
        assert_eq!(d.candidates(&r, &a).len(), 2);
    }

    #[test]
    fn exact_sorts_before_plugin() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        let card = r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        let generic = r.register(ServiceDescription::new("till", "shop#Pay"));
        let req: Iri = "shop#Pay".parse().unwrap();
        let matches = d.functional_matches(&r, &req, MatchDegree::PlugIn);
        assert_eq!(matches[0].service, generic);
        assert_eq!(matches[0].degree, MatchDegree::Exact);
        assert_eq!(matches[1].service, card);
        assert_eq!(matches[1].degree, MatchDegree::PlugIn);
    }

    #[test]
    fn unknown_iris_match_syntactically() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("x", "other#Thing"));
        let a = Activity::new("t", "other#Thing");
        assert_eq!(d.candidates(&r, &a).len(), 1);
        let b = Activity::new("t", "other#Different");
        assert_eq!(d.candidates(&r, &b).len(), 0);
    }

    #[test]
    fn io_incompatible_services_are_filtered() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        // Needs data the activity cannot provide.
        r.register(
            ServiceDescription::new("greedy", "shop#Pay").with_input("shop#LoyaltyCard"),
        );
        let a = Activity::new("pay", "shop#Pay");
        assert_eq!(d.candidates(&r, &a).len(), 0);

        // Activity provides the needed input.
        let a = Activity::new("pay", "shop#Pay").with_input("shop#LoyaltyCard");
        assert_eq!(d.candidates(&r, &a).len(), 1);
    }

    #[test]
    fn required_outputs_must_be_produced() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("s", "shop#Pay"));
        let a = Activity::new("pay", "shop#Pay").with_output("shop#Receipt");
        assert_eq!(d.candidates(&r, &a).len(), 0);

        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("s", "shop#Pay").with_output("shop#Receipt"));
        assert_eq!(d.candidates(&r, &a).len(), 1);
    }

    #[test]
    fn qos_constraints_filter_candidates() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("fast", "shop#Pay").with_qos(rt, 50.0));
        r.register(ServiceDescription::new("slow", "shop#Pay").with_qos(rt, 500.0));
        let a = Activity::new("pay", "shop#Pay");
        let cs: ConstraintSet = [Constraint::new(rt, Tendency::LowerBetter, 100.0)]
            .into_iter()
            .collect();
        let hits = d.qos_candidates(&r, &a, &cs);
        assert_eq!(hits.len(), 1);
        assert_eq!(r.get(hits[0].service).unwrap().name(), "fast");
    }

    #[test]
    fn departed_services_are_not_discovered() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        let id = r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        r.deregister(id);
        let a = Activity::new("pay", "shop#Pay");
        assert!(d.candidates(&r, &a).is_empty());
    }

    #[test]
    fn deep_candidates_match_through_operations() {
        use crate::Operation;
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let mut r = ServiceRegistry::new();
        // A multi-function kiosk: profile is a generic concept unknown to
        // the ontology, but one operation implements payment with its own
        // (faster) QoS.
        let kiosk = ServiceDescription::new("kiosk", "misc#MultiService")
            .with_qos(rt, 500.0)
            .with_qos(av, 0.95)
            .with_operation(Operation::new("pay-op", "shop#PayByCard").with_qos(rt, 80.0));
        let id = r.register(kiosk);

        let a = Activity::new("pay", "shop#Pay");
        // Black-box discovery misses it…
        assert!(d.candidates(&r, &a).is_empty());
        // …white-box discovery finds the operation and merges its QoS.
        let deep = d.deep_candidates(&r, &a);
        assert_eq!(deep.len(), 1);
        assert_eq!(deep[0].0.service, id);
        assert_eq!(deep[0].1.get(rt), Some(80.0)); // operation overrides
        assert_eq!(deep[0].1.get(av), Some(0.95)); // service-level kept
    }

    #[test]
    fn deep_candidates_prefer_profile_matches() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let mut r = ServiceRegistry::new();
        let direct = r.register(ServiceDescription::new("till", "shop#Pay").with_qos(rt, 100.0));
        let a = Activity::new("pay", "shop#Pay");
        let deep = d.deep_candidates(&r, &a);
        assert_eq!(deep.len(), 1);
        assert_eq!(deep[0].0.service, direct);
        assert_eq!(deep[0].1.get(rt), Some(100.0));
    }

    #[test]
    fn constraint_via_model_units() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("s", "shop#Pay").with_qos(rt, 1500.0));
        let a = Activity::new("pay", "shop#Pay");
        // 2 seconds => 2000 ms: satisfied.
        let cs: ConstraintSet = [m.constraint("ResponseTime", 2.0, Unit::Seconds).unwrap()]
            .into_iter()
            .collect();
        assert_eq!(d.qos_candidates(&r, &a, &cs).len(), 1);
    }
}
