//! QoS-aware semantic service discovery.
//!
//! The entry point is [`Discovery::discover`] with a [`DiscoveryQuery`]:
//! one call covers black-box discovery, white-box (per-operation)
//! discovery and QoS-requirement filtering, returning
//! [`DiscoveredCandidate`]s that carry everything selection needs.
//!
//! Two execution paths produce byte-identical results:
//!
//! * an **indexed** path, used when the registry has the query's
//!   ontology [bound](crate::ServiceRegistry::bind_ontology): the
//!   required concept is resolved to its posting list in the registry's
//!   inverted capability index, so only plausibly-matching services are
//!   evaluated;
//! * a **linear** path scanning every live service — the fallback for
//!   unbound registries and for relaxed queries asking for degrees below
//!   [`MatchDegree::PlugIn`], and the oracle the parity tests compare
//!   against ([`DiscoveryQuery::linear_scan`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use qasom_obs::{keys, Recorder};
use qasom_ontology::{Iri, MatchDegree, Ontology};
use qasom_qos::{ConstraintSet, QosModel, QosVector};
use qasom_task::Activity;

use crate::registry::VIA_PROFILE;
use crate::{ServiceDescription, ServiceId, ServiceRegistry};

/// How a discovered service qualified for the requested function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchedVia {
    /// The service's profile (its advertised capability concept) matched.
    Profile,
    /// The profile did not qualify, but the conversation operation at
    /// this index into [`ServiceDescription::operations`] did.
    Operation(usize),
}

/// A discovered candidate service for an abstract activity.
///
/// `effective_qos` is what selection should reason on: the service-level
/// advertisement for profile matches, or the advertisement overridden by
/// the matched operation's per-operation QoS for white-box matches.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredCandidate {
    /// The matched service.
    pub service: ServiceId,
    /// How well its capability matches the required function.
    pub degree: MatchDegree,
    /// Which part of the description produced the match.
    pub matched_via: MatchedVia,
    /// The QoS vector the match is advertised with.
    pub effective_qos: QosVector,
}

/// A discovery request: the activity to serve plus matching options.
///
/// Built fluently and passed to [`Discovery::discover`]:
///
/// ```
/// use qasom_ontology::OntologyBuilder;
/// use qasom_qos::QosModel;
/// use qasom_registry::{Discovery, DiscoveryQuery, ServiceDescription, ServiceRegistry};
/// use qasom_task::Activity;
///
/// let mut onto = OntologyBuilder::new("shop");
/// let pay = onto.concept("Pay");
/// onto.subconcept("PayByCard", pay);
/// let onto = onto.build().unwrap();
/// let model = QosModel::standard();
///
/// let mut registry = ServiceRegistry::new();
/// registry.register(ServiceDescription::new("visa", "shop#PayByCard"));
///
/// let discovery = Discovery::new(&onto, &model);
/// let activity = Activity::new("pay", "shop#Pay");
/// let found = discovery.discover(&registry, &DiscoveryQuery::new(&activity).white_box(true));
/// assert_eq!(found.len(), 1); // PayByCard plugs into Pay
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryQuery<'a> {
    activity: &'a Activity,
    min_degree: MatchDegree,
    white_box: bool,
    constraints: Option<&'a ConstraintSet>,
    force_linear: bool,
}

impl<'a> DiscoveryQuery<'a> {
    /// A black-box query for `activity` with the default minimum degree
    /// ([`MatchDegree::PlugIn`]) and no QoS requirements.
    pub fn new(activity: &'a Activity) -> Self {
        DiscoveryQuery {
            activity,
            min_degree: MatchDegree::PlugIn,
            white_box: false,
            constraints: None,
            force_linear: false,
        }
    }

    /// Requires at least `degree`. Degrees below
    /// [`MatchDegree::PlugIn`] (i.e. [`MatchDegree::Subsumes`] and
    /// [`MatchDegree::Intersection`]) admit services the capability
    /// index cannot enumerate, so such queries always scan linearly.
    pub fn min_degree(mut self, degree: MatchDegree) -> Self {
        self.min_degree = degree;
        self
    }

    /// Enables white-box matching: a service whose profile does not
    /// qualify may still match through one of its conversation
    /// operations, advertising the operation's merged QoS.
    pub fn white_box(mut self, enabled: bool) -> Self {
        self.white_box = enabled;
        self
    }

    /// Keeps only candidates whose *effective* QoS satisfies
    /// `constraints`.
    pub fn require_qos(mut self, constraints: &'a ConstraintSet) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Forces the linear full-scan path even when the capability index is
    /// available — the oracle used by parity tests and benchmarks. The
    /// results are identical either way; only the work differs.
    pub fn linear_scan(mut self, force: bool) -> Self {
        self.force_linear = force;
        self
    }

    /// The queried activity.
    pub fn activity(&self) -> &Activity {
        self.activity
    }
}

/// A concurrent memo of semantic match-degree lookups keyed by
/// `(required, offered)` IRI pair.
///
/// Built once and shared across [`Discovery`] instances (the environment
/// owns one per middleware instance). The cache remembers which ontology
/// ([`Ontology::stamp`]) its entries were computed under and silently
/// flushes when consulted under a different one, so stale degrees can
/// never leak across an ontology swap.
///
/// Internally the memo is split into [`CACHE_SHARDS`] lock-sharded maps
/// keyed by an FNV-1a hash of the *required* IRI (stable across runs, so
/// shard assignment is deterministic), which keeps concurrent sessions
/// composing under the serving layer's read lock from serialising on a
/// single cache lock.
///
/// IRIs are interned to dense `u32` ids at this boundary: the degree
/// maps key on `(u32, u32)` pairs, so a memo probe hashes eight bytes
/// instead of two namespace+name strings, and repeated queries over the
/// recurring vocabulary of a task stop re-hashing IRI text. The intern
/// table survives ontology swaps (an IRI's identity is textual); only
/// the memoised degrees flush.
#[derive(Debug, Default)]
pub struct MatchCache {
    shards: [RwLock<MatchCacheState>; CACHE_SHARDS],
    interner: RwLock<HashMap<Iri, u32>>,
    hits: AtomicU64,
    misses: AtomicU64,
    interned: AtomicU64,
}

/// Number of independent lock shards in a [`MatchCache`].
pub const CACHE_SHARDS: usize = 8;

/// Deterministic FNV-1a over the IRI's rendered bytes. Deliberately not
/// `std`'s `RandomState`, whose per-process random keys would make shard
/// assignment (and any contention pattern) nondeterministic.
fn shard_of(iri: &Iri) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    };
    for byte in iri.namespace().bytes() {
        step(byte);
    }
    step(b'#');
    for byte in iri.local_name().bytes() {
        step(byte);
    }
    (hash % CACHE_SHARDS as u64) as usize
}

/// Lifetime hit/miss totals of a [`MatchCache`] (monotone; totals are
/// order-independent, so they stay deterministic under the parallel
/// discovery fan-out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to compute (including stamp-mismatch flushes).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, 0 when the cache was never asked.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct MatchCacheState {
    stamp: u64,
    degrees: HashMap<(u32, u32), MatchDegree>,
}

impl MatchCache {
    /// An empty cache.
    pub fn new() -> Self {
        MatchCache::default()
    }

    /// Entries currently memoised (diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.read().unwrap_or_else(|p| p.into_inner());
                state.degrees.len()
            })
            .sum()
    }

    /// Whether the cache holds no entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss totals (the basis of the report's
    /// `cache_hit_ratio`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Distinct IRIs interned since construction — an exact count (not
    /// a racing snapshot): the id allocator bumps it under the intern
    /// table's write lock, so the report can surface it verbatim.
    pub fn interned_iris(&self) -> u64 {
        self.interned.load(Ordering::Relaxed)
    }

    fn get(&self, stamp: u64, required: &Iri, offered: &Iri) -> Option<MatchDegree> {
        let found = self.lookup(stamp, required, offered);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn lookup(&self, stamp: u64, required: &Iri, offered: &Iri) -> Option<MatchDegree> {
        // An IRI the interner has never seen cannot have a memo entry.
        let key = {
            let interner = self.interner.read().unwrap_or_else(|p| p.into_inner());
            (*interner.get(required)?, *interner.get(offered)?)
        };
        let state = self.shards[shard_of(required)]
            .read()
            .unwrap_or_else(|p| p.into_inner());
        if state.stamp == stamp {
            state.degrees.get(&key).copied()
        } else {
            None
        }
    }

    fn put(&self, stamp: u64, required: &Iri, offered: &Iri, degree: MatchDegree) {
        let key = (self.intern(required), self.intern(offered));
        let mut state = self.shards[shard_of(required)]
            .write()
            .unwrap_or_else(|p| p.into_inner());
        if state.stamp != stamp {
            // Computed under a different ontology than the cached
            // entries: flush this shard and adopt the new stamp (each
            // shard tracks its own stamp, so the others flush lazily the
            // next time they are written under the new ontology).
            state.degrees.clear();
            state.stamp = stamp;
        }
        state.degrees.insert(key, degree);
    }

    /// The dense id of `iri`, allocating one on first sight.
    fn intern(&self, iri: &Iri) -> u32 {
        if let Some(&id) = self
            .interner
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(iri)
        {
            return id;
        }
        let mut interner = self.interner.write().unwrap_or_else(|p| p.into_inner());
        if let Some(&id) = interner.get(iri) {
            return id; // raced: another thread interned it first
        }
        // Ids are the insertion index; a vocabulary cannot realistically
        // approach the id width, but keep the bound loud.
        assert!(
            u32::try_from(interner.len()).is_ok(),
            "more than u32::MAX interned IRIs"
        );
        let id = interner.len() as u32;
        interner.insert(iri.clone(), id);
        self.interned.fetch_add(1, Ordering::Relaxed);
        id
    }
}

/// QoS-aware service discovery over a domain [`Ontology`] and a
/// [`QosModel`].
///
/// Discovery is *semantic*: a service matches an activity when its
/// capability concept matches the required function with at least the
/// query's minimum degree, its I/O signature is compatible, and its
/// effective QoS passes the query's constraints (when given). Function
/// IRIs unknown to the ontology fall back to syntactic equality, so
/// purely syntactic environments still work (degraded recall).
#[derive(Debug, Clone, Copy)]
pub struct Discovery<'a> {
    ontology: &'a Ontology,
    model: &'a QosModel,
    cache: Option<&'a MatchCache>,
    recorder: Option<&'a dyn Recorder>,
}

impl<'a> Discovery<'a> {
    /// Creates a discovery engine over a domain ontology and QoS model.
    pub fn new(ontology: &'a Ontology, model: &'a QosModel) -> Self {
        Discovery {
            ontology,
            model,
            cache: None,
            recorder: None,
        }
    }

    /// Like [`Discovery::new`], memoising match-degree lookups in
    /// `cache`. Worth it when the same engine (or several engines over
    /// the same ontology) serves many queries against recurring IRIs.
    pub fn with_cache(ontology: &'a Ontology, model: &'a QosModel, cache: &'a MatchCache) -> Self {
        Discovery {
            ontology,
            model,
            cache: Some(cache),
            recorder: None,
        }
    }

    /// Routes per-query counters (indexed-vs-linear path taken, services
    /// evaluated, candidates produced) through `recorder`. Observation
    /// only: results are identical with or without one.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The QoS model used to interpret constraints.
    pub fn model(&self) -> &QosModel {
        self.model
    }

    /// Semantic match degree between a required and an offered function
    /// IRI. Unknown IRIs match syntactically (equal → exact). Memoised
    /// when the engine was built [with a cache](Discovery::with_cache).
    pub fn match_functions(&self, required: &Iri, offered: &Iri) -> MatchDegree {
        if let Some(cache) = self.cache {
            let stamp = self.ontology.stamp();
            if let Some(hit) = cache.get(stamp, required, offered) {
                return hit;
            }
            let degree = self.compute_match(required, offered);
            cache.put(stamp, required, offered, degree);
            return degree;
        }
        self.compute_match(required, offered)
    }

    fn compute_match(&self, required: &Iri, offered: &Iri) -> MatchDegree {
        match (
            self.ontology.concept(required),
            self.ontology.concept(offered),
        ) {
            (Some(r), Some(o)) => self.ontology.match_degree(r, o),
            _ => {
                if required == offered {
                    MatchDegree::Exact
                } else {
                    MatchDegree::Fail
                }
            }
        }
    }

    /// Whether `required` is satisfied by `offered` (exact or plug-in).
    fn satisfies(&self, required: &Iri, offered: &Iri) -> bool {
        self.match_functions(required, offered).is_usable()
    }

    /// I/O compatibility of a service with an activity:
    ///
    /// * every *output* the activity requires must be produced by the
    ///   service (semantically);
    /// * every *input* the service consumes must be provided by the
    ///   activity.
    ///
    /// Activities or services declaring no I/O impose no I/O constraint on
    /// that side.
    pub fn io_compatible(&self, activity: &Activity, service: &crate::ServiceDescription) -> bool {
        let outputs_ok = activity
            .outputs()
            .iter()
            .all(|req| service.outputs().iter().any(|off| self.satisfies(req, off)));
        let inputs_ok = service.inputs().iter().all(|need| {
            activity
                .inputs()
                .iter()
                .any(|have| self.satisfies(need, have))
        });
        outputs_ok && inputs_ok
    }

    /// Functional matches for a required capability (profile matching
    /// only, no I/O or QoS filtering), best degrees first. Uses the
    /// capability index for usable degrees when available, scanning
    /// linearly otherwise.
    pub fn functional_matches(
        &self,
        registry: &ServiceRegistry,
        required: &Iri,
        min_degree: MatchDegree,
    ) -> Vec<(ServiceId, MatchDegree)> {
        let mut out: Vec<(ServiceId, MatchDegree)> = if min_degree >= MatchDegree::PlugIn
            && self.index_usable(registry)
        {
            self.profile_posting(registry, required)
                .into_iter()
                .filter_map(|id| {
                    let desc = registry.get(id)?;
                    let degree = self.match_functions(required, desc.function());
                    (degree >= min_degree && degree != MatchDegree::Fail).then_some((id, degree))
                })
                .collect()
        } else {
            registry
                .iter()
                .filter_map(|(id, desc)| {
                    let degree = self.match_functions(required, desc.function());
                    (degree >= min_degree && degree != MatchDegree::Fail).then_some((id, degree))
                })
                .collect()
        };
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// QoS-aware discovery: the candidate set `S_i` for an abstract
    /// activity under the given query. See [`DiscoveryQuery`] for the
    /// knobs; results are sorted by match degree (best first), ties by
    /// ascending service id — a total order, so the indexed and linear
    /// paths return identical vectors.
    pub fn discover(
        &self,
        registry: &ServiceRegistry,
        query: &DiscoveryQuery<'_>,
    ) -> Vec<DiscoveredCandidate> {
        let indexed = !query.force_linear
            && query.min_degree >= MatchDegree::PlugIn
            && self.index_usable(registry);
        let ids = if indexed {
            self.candidate_ids(registry, query.activity.function())
        } else {
            registry.iter().map(|(id, _)| id).collect()
        };
        let evaluated = ids.len() as u64;
        let mut out = self.evaluate_ids(registry, query, ids);
        out.sort_by(|a, b| b.degree.cmp(&a.degree).then(a.service.cmp(&b.service)));
        if let Some(rec) = self.recorder {
            rec.incr(
                if indexed {
                    keys::DISCOVERY_INDEXED
                } else {
                    keys::DISCOVERY_LINEAR
                },
                1,
            );
            rec.incr(keys::DISCOVERY_EVALUATED, evaluated);
            rec.incr(keys::DISCOVERY_CANDIDATES, out.len() as u64);
        }
        out
    }

    /// Whether the registry's capability index covers this engine's
    /// ontology (same [`Ontology::stamp`]).
    fn index_usable(&self, registry: &ServiceRegistry) -> bool {
        registry
            .ontology()
            .is_some_and(|bound| bound.stamp() == self.ontology.stamp())
    }

    /// Index probe for profile-only matching: ids (ascending) whose
    /// profile plausibly matches `required` with usable strength.
    fn profile_posting(&self, registry: &ServiceRegistry, required: &Iri) -> Vec<ServiceId> {
        let posting = match self.ontology.concept(required) {
            Some(concept) => registry.usable_for_concept(self.ontology.canon(concept)),
            None => registry.usable_for_unknown_iri(required),
        };
        posting
            .map(|bucket| {
                bucket
                    .iter()
                    .filter(|&(_, bits)| bits & VIA_PROFILE != 0)
                    .map(|(&id, _)| id)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Index probe for full discovery: ids (ascending) that can qualify
    /// for `required` through their profile or, for white-box queries,
    /// any operation. Completeness: a service accepted by the linear
    /// scan with a usable degree offers a capability concept having
    /// `required` among its ancestors (hence is in the concept posting
    /// list) or advertises the identical unknown IRI (hence is in the
    /// syntactic bucket) — there is no third way to reach `Exact` or
    /// `PlugIn`.
    fn candidate_ids(&self, registry: &ServiceRegistry, required: &Iri) -> Vec<ServiceId> {
        let posting = match self.ontology.concept(required) {
            Some(concept) => registry.usable_for_concept(self.ontology.canon(concept)),
            None => registry.usable_for_unknown_iri(required),
        };
        posting
            .map(|bucket| bucket.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Evaluates candidate ids (ascending) against the query. The
    /// per-service logic is shared verbatim by the indexed and linear
    /// paths, so they can only differ in which ids they consider.
    fn evaluate_ids(
        &self,
        registry: &ServiceRegistry,
        query: &DiscoveryQuery<'_>,
        ids: Vec<ServiceId>,
    ) -> Vec<DiscoveredCandidate> {
        ids.into_iter()
            .filter_map(|id| {
                let desc = registry.get(id)?;
                self.evaluate_service(query, id, desc)
            })
            .collect()
    }

    /// Evaluates one live service against the query.
    fn evaluate_service(
        &self,
        query: &DiscoveryQuery<'_>,
        id: ServiceId,
        desc: &ServiceDescription,
    ) -> Option<DiscoveredCandidate> {
        let activity = query.activity;
        if !self.io_compatible(activity, desc) {
            return None;
        }
        let accepts =
            |degree: MatchDegree| degree >= query.min_degree && degree != MatchDegree::Fail;

        let profile_degree = self.match_functions(activity.function(), desc.function());
        let candidate = if accepts(profile_degree) {
            DiscoveredCandidate {
                service: id,
                degree: profile_degree,
                matched_via: MatchedVia::Profile,
                effective_qos: desc.qos().clone(),
            }
        } else if query.white_box {
            // Fall back to the conversation: the best qualifying
            // operation (ties resolved towards the last declared, the
            // behaviour of `Iterator::max_by_key`).
            let (op_index, op, degree) = desc
                .operations()
                .iter()
                .enumerate()
                .map(|(i, op)| {
                    (
                        i,
                        op,
                        self.match_functions(activity.function(), op.function()),
                    )
                })
                .filter(|&(_, _, d)| accepts(d))
                .max_by_key(|&(_, _, d)| d)?;
            let mut qos = desc.qos().clone();
            // Operation-level QoS overrides the black-box figures.
            qos.merge_with(op.qos(), |_, op_value| op_value);
            DiscoveredCandidate {
                service: id,
                degree,
                matched_via: MatchedVia::Operation(op_index),
                effective_qos: qos,
            }
        } else {
            return None;
        };

        if let Some(constraints) = query.constraints {
            if !constraints.satisfied_by(&candidate.effective_qos) {
                return None;
            }
        }
        Some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceDescription;
    use qasom_ontology::OntologyBuilder;
    use qasom_qos::{Constraint, Tendency, Unit};
    use std::sync::Arc;

    fn domain() -> Ontology {
        let mut b = OntologyBuilder::new("shop");
        let pay = b.concept("Pay");
        b.subconcept("PayByCard", pay);
        b.subconcept("PayCash", pay);
        b.concept("Browse");
        b.build().unwrap()
    }

    fn setup() -> (Ontology, QosModel) {
        (domain(), QosModel::standard())
    }

    #[test]
    fn plugin_matches_are_discovered() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        r.register(ServiceDescription::new("cash", "shop#PayCash"));
        r.register(ServiceDescription::new("browse", "shop#Browse"));
        let a = Activity::new("pay", "shop#Pay");
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&a)).len(), 2);
    }

    #[test]
    fn exact_sorts_before_plugin() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        let card = r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        let generic = r.register(ServiceDescription::new("till", "shop#Pay"));
        let req: Iri = "shop#Pay".parse().unwrap();
        let matches = d.functional_matches(&r, &req, MatchDegree::PlugIn);
        assert_eq!(matches[0], (generic, MatchDegree::Exact));
        assert_eq!(matches[1], (card, MatchDegree::PlugIn));
    }

    #[test]
    fn unknown_iris_match_syntactically() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("x", "other#Thing"));
        let a = Activity::new("t", "other#Thing");
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&a)).len(), 1);
        let b = Activity::new("t", "other#Different");
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&b)).len(), 0);
    }

    #[test]
    fn io_incompatible_services_are_filtered() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        // Needs data the activity cannot provide.
        r.register(ServiceDescription::new("greedy", "shop#Pay").with_input("shop#LoyaltyCard"));
        let a = Activity::new("pay", "shop#Pay");
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&a)).len(), 0);

        // Activity provides the needed input.
        let a = Activity::new("pay", "shop#Pay").with_input("shop#LoyaltyCard");
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&a)).len(), 1);
    }

    #[test]
    fn required_outputs_must_be_produced() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("s", "shop#Pay"));
        let a = Activity::new("pay", "shop#Pay").with_output("shop#Receipt");
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&a)).len(), 0);

        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("s", "shop#Pay").with_output("shop#Receipt"));
        assert_eq!(d.discover(&r, &DiscoveryQuery::new(&a)).len(), 1);
    }

    #[test]
    fn qos_constraints_filter_candidates() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("fast", "shop#Pay").with_qos(rt, 50.0));
        r.register(ServiceDescription::new("slow", "shop#Pay").with_qos(rt, 500.0));
        let a = Activity::new("pay", "shop#Pay");
        let cs: ConstraintSet = [Constraint::new(rt, Tendency::LowerBetter, 100.0)]
            .into_iter()
            .collect();
        let hits = d.discover(&r, &DiscoveryQuery::new(&a).require_qos(&cs));
        assert_eq!(hits.len(), 1);
        assert_eq!(r.get(hits[0].service).unwrap().name(), "fast");
    }

    #[test]
    fn departed_services_are_not_discovered() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::new();
        let id = r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        r.deregister(id);
        let a = Activity::new("pay", "shop#Pay");
        assert!(d.discover(&r, &DiscoveryQuery::new(&a)).is_empty());
    }

    #[test]
    fn white_box_matches_through_operations() {
        use crate::Operation;
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let av = m.property("Availability").unwrap();
        let mut r = ServiceRegistry::new();
        // A multi-function kiosk: profile is a generic concept unknown to
        // the ontology, but one operation implements payment with its own
        // (faster) QoS.
        let kiosk = ServiceDescription::new("kiosk", "misc#MultiService")
            .with_qos(rt, 500.0)
            .with_qos(av, 0.95)
            .with_operation(Operation::new("pay-op", "shop#PayByCard").with_qos(rt, 80.0));
        let id = r.register(kiosk);

        let a = Activity::new("pay", "shop#Pay");
        // Black-box discovery misses it…
        assert!(d.discover(&r, &DiscoveryQuery::new(&a)).is_empty());
        // …white-box discovery finds the operation and merges its QoS.
        let deep = d.discover(&r, &DiscoveryQuery::new(&a).white_box(true));
        assert_eq!(deep.len(), 1);
        assert_eq!(deep[0].service, id);
        assert_eq!(deep[0].matched_via, MatchedVia::Operation(0));
        assert_eq!(deep[0].effective_qos.get(rt), Some(80.0)); // operation overrides
        assert_eq!(deep[0].effective_qos.get(av), Some(0.95)); // service-level kept
    }

    #[test]
    fn white_box_prefers_profile_matches() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let mut r = ServiceRegistry::new();
        let direct = r.register(ServiceDescription::new("till", "shop#Pay").with_qos(rt, 100.0));
        let a = Activity::new("pay", "shop#Pay");
        let deep = d.discover(&r, &DiscoveryQuery::new(&a).white_box(true));
        assert_eq!(deep.len(), 1);
        assert_eq!(deep[0].service, direct);
        assert_eq!(deep[0].matched_via, MatchedVia::Profile);
        assert_eq!(deep[0].effective_qos.get(rt), Some(100.0));
    }

    #[test]
    fn constraint_via_model_units() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let rt = m.property("ResponseTime").unwrap();
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescription::new("s", "shop#Pay").with_qos(rt, 1500.0));
        let a = Activity::new("pay", "shop#Pay");
        // 2 seconds => 2000 ms: satisfied.
        let cs: ConstraintSet = [m.constraint("ResponseTime", 2.0, Unit::Seconds).unwrap()]
            .into_iter()
            .collect();
        assert_eq!(
            d.discover(&r, &DiscoveryQuery::new(&a).require_qos(&cs))
                .len(),
            1
        );
    }

    #[test]
    fn relaxed_degrees_admit_subsumes_and_force_linear() {
        let (o, m) = setup();
        let d = Discovery::new(&o, &m);
        let mut r = ServiceRegistry::with_ontology(Arc::new(domain()));
        r.register(ServiceDescription::new("generic", "shop#Pay"));
        // Requesting the *sub*concept: the generic service only subsumes.
        let a = Activity::new("pay", "shop#PayByCard");
        assert!(d.discover(&r, &DiscoveryQuery::new(&a)).is_empty());
        let relaxed = d.discover(
            &r,
            &DiscoveryQuery::new(&a).min_degree(MatchDegree::Subsumes),
        );
        assert_eq!(relaxed.len(), 1);
        assert_eq!(relaxed[0].degree, MatchDegree::Subsumes);
    }

    #[test]
    fn indexed_and_linear_paths_agree() {
        use crate::Operation;
        let (o, m) = setup();
        let onto = Arc::new(o);
        let d = Discovery::new(&onto, &m);
        let mut r = ServiceRegistry::with_ontology(Arc::clone(&onto));
        let rt = m.property("ResponseTime").unwrap();
        for i in 0..40 {
            let function = match i % 5 {
                0 => "shop#Pay",
                1 => "shop#PayByCard",
                2 => "shop#PayCash",
                3 => "shop#Browse",
                _ => "misc#Unknown",
            };
            let mut desc =
                ServiceDescription::new(format!("s{i}"), function).with_qos(rt, 40.0 + i as f64);
            if i % 7 == 0 {
                desc = desc.with_operation(Operation::new("op", "shop#PayCash").with_qos(rt, 10.0));
            }
            r.register(desc);
        }
        // Churn a few to exercise index removal.
        for id in d
            .discover(&r, &DiscoveryQuery::new(&Activity::new("x", "shop#Browse")))
            .iter()
            .map(|c| c.service)
            .collect::<Vec<_>>()
        {
            r.deregister(id);
        }
        assert!(r.index_matches_rebuild());

        let cs: ConstraintSet = [Constraint::new(rt, Tendency::LowerBetter, 70.0)]
            .into_iter()
            .collect();
        for activity in [
            Activity::new("a", "shop#Pay"),
            Activity::new("b", "shop#PayCash"),
            Activity::new("c", "misc#Unknown"),
            Activity::new("d", "misc#Never"),
        ] {
            for white_box in [false, true] {
                let query = DiscoveryQuery::new(&activity).white_box(white_box);
                let indexed = d.discover(&r, &query);
                let linear = d.discover(&r, &query.linear_scan(true));
                assert_eq!(indexed, linear, "activity {}", activity.name());
                let constrained = d.discover(&r, &query.require_qos(&cs));
                let constrained_linear = d.discover(&r, &query.require_qos(&cs).linear_scan(true));
                assert_eq!(constrained, constrained_linear);
            }
        }
    }

    #[test]
    fn match_cache_hits_and_invalidates() {
        let (o, m) = setup();
        let cache = MatchCache::new();
        let d = Discovery::with_cache(&o, &m, &cache);
        let req: Iri = "shop#Pay".parse().unwrap();
        let off: Iri = "shop#PayByCard".parse().unwrap();
        assert_eq!(d.match_functions(&req, &off), MatchDegree::PlugIn);
        assert_eq!(cache.len(), 1);
        assert_eq!(d.match_functions(&req, &off), MatchDegree::PlugIn);
        assert_eq!(cache.len(), 1);

        // A *different* ontology (fresh stamp) under the same cache: the
        // stale entry must not answer, even though the IRIs collide.
        let mut b = OntologyBuilder::new("shop");
        b.concept("Pay");
        b.concept("PayByCard"); // siblings now: no subsumption
        let other = b.build().unwrap();
        let d2 = Discovery::with_cache(&other, &m, &cache);
        assert_eq!(d2.match_functions(&req, &off), MatchDegree::Fail);
        // And the flush means the first engine recomputes correctly too.
        assert_eq!(d.match_functions(&req, &off), MatchDegree::PlugIn);
    }

    #[test]
    fn match_cache_tracks_hits_and_misses() {
        let (o, m) = setup();
        let cache = MatchCache::new();
        let d = Discovery::with_cache(&o, &m, &cache);
        let req: Iri = "shop#Pay".parse().unwrap();
        let off: Iri = "shop#PayByCard".parse().unwrap();
        assert_eq!(cache.stats(), CacheStats::default());
        d.match_functions(&req, &off); // cold: miss + compute + put
        d.match_functions(&req, &off); // warm: hit
        d.match_functions(&req, &off); // warm: hit
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 2, misses: 1 });
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recorder_counts_paths_without_changing_results() {
        use qasom_obs::MemoryRecorder;
        let (o, m) = setup();
        let onto = Arc::new(o);
        let mut r = ServiceRegistry::with_ontology(Arc::clone(&onto));
        r.register(ServiceDescription::new("visa", "shop#PayByCard"));
        r.register(ServiceDescription::new("cash", "shop#PayCash"));
        r.register(ServiceDescription::new("browse", "shop#Browse"));
        let a = Activity::new("pay", "shop#Pay");
        let plain = Discovery::new(&onto, &m);
        let rec = MemoryRecorder::new();
        let observed = plain.with_recorder(&rec);

        let query = DiscoveryQuery::new(&a);
        assert_eq!(observed.discover(&r, &query), plain.discover(&r, &query));
        observed.discover(&r, &query.linear_scan(true));

        let snap = rec.snapshot().expect("memory recorder snapshots");
        assert_eq!(snap.counter(keys::DISCOVERY_INDEXED), 1);
        assert_eq!(snap.counter(keys::DISCOVERY_LINEAR), 1);
        // Indexed path touched only the 2 Pay descendants; linear
        // scanned all 3 live services.
        assert_eq!(snap.counter(keys::DISCOVERY_EVALUATED), 2 + 3);
        assert_eq!(snap.counter(keys::DISCOVERY_CANDIDATES), 2 + 2);
    }
}
