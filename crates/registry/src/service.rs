//! Service descriptions (quality-based service description, QSD).

use std::fmt;

use qasom_ontology::Iri;
use qasom_qos::{PropertyId, QosVector};

/// One operation of a *white-box* service description: an elementary part
/// of the service's conversation with its own QoS.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    name: String,
    function: Iri,
    qos: QosVector,
}

impl Operation {
    /// Creates an operation implementing `function`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed function IRI.
    pub fn new(name: impl Into<String>, function: &str) -> Self {
        Operation {
            name: name.into(),
            function: function
                .parse()
                .unwrap_or_else(|e| panic!("malformed operation IRI {function:?}: {e}")),
            qos: QosVector::new(),
        }
    }

    /// Reassembles an operation from decoded parts (persistence codec).
    pub(crate) fn from_parts(name: String, function: Iri, qos: QosVector) -> Self {
        Operation {
            name,
            function,
            qos,
        }
    }

    /// Attaches a QoS value (canonical unit) to the operation.
    pub fn with_qos(mut self, property: PropertyId, value: f64) -> Self {
        self.qos.set(property, value);
        self
    }

    /// Operation name (unique within its service).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The capability concept the operation implements.
    pub fn function(&self) -> &Iri {
        &self.function
    }

    /// Operation-level QoS.
    pub fn qos(&self) -> &QosVector {
        &self.qos
    }
}

/// A provider's service advertisement.
///
/// The *black-box* part is the profile: capability concept, consumed and
/// produced data concepts, and service-level advertised QoS. White-box
/// descriptions additionally list [`Operation`]s with per-operation QoS.
///
/// # Examples
///
/// ```
/// use qasom_qos::QosModel;
/// use qasom_registry::ServiceDescription;
///
/// let model = QosModel::standard();
/// let rt = model.property("ResponseTime").unwrap();
///
/// let svc = ServiceDescription::new("fnac-books", "shop#BuyBook")
///     .with_provider("fnac")
///     .with_input("shop#BookTitle")
///     .with_output("shop#Receipt")
///     .with_qos(rt, 120.0)
///     .with_host(3);
/// assert_eq!(svc.host(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDescription {
    name: String,
    provider: String,
    function: Iri,
    inputs: Vec<Iri>,
    outputs: Vec<Iri>,
    qos: QosVector,
    operations: Vec<Operation>,
    host: Option<u64>,
}

impl ServiceDescription {
    /// Creates a description for a service implementing `function`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed function IRI; use
    /// [`ServiceDescription::try_new`] for fallible construction.
    pub fn new(name: impl Into<String>, function: &str) -> Self {
        ServiceDescription::try_new(name, function)
            .unwrap_or_else(|e| panic!("malformed function IRI {function:?}: {e}"))
    }

    /// Fallible counterpart of [`ServiceDescription::new`].
    ///
    /// # Errors
    ///
    /// Returns the IRI parse error when `function` is malformed.
    pub fn try_new(
        name: impl Into<String>,
        function: &str,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        Ok(ServiceDescription {
            name: name.into(),
            provider: String::new(),
            function: function.parse()?,
            inputs: Vec::new(),
            outputs: Vec::new(),
            qos: QosVector::new(),
            operations: Vec::new(),
            host: None,
        })
    }

    /// Reassembles a description from decoded parts (persistence codec).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        provider: String,
        function: Iri,
        inputs: Vec<Iri>,
        outputs: Vec<Iri>,
        qos: QosVector,
        operations: Vec<Operation>,
        host: Option<u64>,
    ) -> Self {
        ServiceDescription {
            name,
            provider,
            function,
            inputs,
            outputs,
            qos,
            operations,
            host,
        }
    }

    /// Sets the provider name.
    pub fn with_provider(mut self, provider: impl Into<String>) -> Self {
        self.provider = provider.into();
        self
    }

    /// Adds a consumed data concept.
    ///
    /// # Panics
    ///
    /// Panics on a malformed IRI.
    pub fn with_input(mut self, input: &str) -> Self {
        self.inputs.push(
            input
                .parse()
                .unwrap_or_else(|e| panic!("malformed input IRI {input:?}: {e}")),
        );
        self
    }

    /// Adds a produced data concept.
    ///
    /// # Panics
    ///
    /// Panics on a malformed IRI.
    pub fn with_output(mut self, output: &str) -> Self {
        self.outputs.push(
            output
                .parse()
                .unwrap_or_else(|e| panic!("malformed output IRI {output:?}: {e}")),
        );
        self
    }

    /// Advertises a QoS value (canonical unit).
    pub fn with_qos(mut self, property: PropertyId, value: f64) -> Self {
        self.qos.set(property, value);
        self
    }

    /// Replaces the whole advertised QoS vector.
    pub fn with_qos_vector(mut self, qos: QosVector) -> Self {
        self.qos = qos;
        self
    }

    /// Adds a white-box operation.
    pub fn with_operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }

    /// Binds the service to a hosting node (used by the network
    /// simulation and the end-to-end QoS computation).
    pub fn with_host(mut self, node: u64) -> Self {
        self.host = Some(node);
        self
    }

    /// Service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Provider name (may be empty).
    pub fn provider(&self) -> &str {
        &self.provider
    }

    /// The capability concept the service implements.
    pub fn function(&self) -> &Iri {
        &self.function
    }

    /// Consumed data concepts.
    pub fn inputs(&self) -> &[Iri] {
        &self.inputs
    }

    /// Produced data concepts.
    pub fn outputs(&self) -> &[Iri] {
        &self.outputs
    }

    /// Advertised service-level QoS.
    pub fn qos(&self) -> &QosVector {
        &self.qos
    }

    /// Mutable access to the advertised QoS (providers re-advertise as
    /// conditions change).
    pub fn qos_mut(&mut self) -> &mut QosVector {
        &mut self.qos
    }

    /// White-box operations (empty for black-box descriptions).
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Whether the description is white-box (has per-operation QoS).
    pub fn is_white_box(&self) -> bool {
        !self.operations.is_empty()
    }

    /// The hosting node, if declared.
    pub fn host(&self) -> Option<u64> {
        self.host
    }
}

impl fmt::Display for ServiceDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.name, self.function, self.qos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::QosModel;

    #[test]
    fn builder_accumulates_fields() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let s = ServiceDescription::new("s", "d#F")
            .with_provider("p")
            .with_input("d#In")
            .with_output("d#Out")
            .with_qos(rt, 10.0)
            .with_host(7);
        assert_eq!(s.provider(), "p");
        assert_eq!(s.inputs().len(), 1);
        assert_eq!(s.outputs().len(), 1);
        assert_eq!(s.qos().get(rt), Some(10.0));
        assert_eq!(s.host(), Some(7));
        assert!(!s.is_white_box());
    }

    #[test]
    fn white_box_services_carry_operations() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let s = ServiceDescription::new("s", "d#F")
            .with_operation(Operation::new("op1", "d#F1").with_qos(rt, 5.0))
            .with_operation(Operation::new("op2", "d#F2").with_qos(rt, 9.0));
        assert!(s.is_white_box());
        assert_eq!(s.operations()[1].qos().get(rt), Some(9.0));
        assert_eq!(s.operations()[0].function().to_string(), "d#F1");
    }

    #[test]
    fn try_new_rejects_bad_iri() {
        assert!(ServiceDescription::try_new("s", "nope").is_err());
    }

    #[test]
    fn qos_mut_allows_readvertising() {
        let m = QosModel::standard();
        let rt = m.property("ResponseTime").unwrap();
        let mut s = ServiceDescription::new("s", "d#F").with_qos(rt, 10.0);
        s.qos_mut().set(rt, 50.0);
        assert_eq!(s.qos().get(rt), Some(50.0));
    }
}
