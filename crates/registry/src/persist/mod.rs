//! Registry persistence & crash recovery: CRC-framed write-ahead log
//! plus snapshot checkpoints behind a [`Persistence`] trait.
//!
//! The paper assumes an always-on registry; a deployable middleware
//! cannot. This module makes the service directory durable without
//! touching its in-memory representation:
//!
//! * every registration/departure is journaled as a [`WalRecord`]
//!   (`crate::persist::wal`) framed `[len][crc32][payload]` and appended
//!   to a write-ahead log through a [`Persistence`] backend;
//! * at the existing compaction-cursor boundary a full
//!   [snapshot](wal::encode_snapshot) of the slot vector is checkpointed
//!   and the WAL truncated ([`RegistryJournal::checkpoint`]);
//! * on boot, replay = latest valid snapshot + WAL tail
//!   ([`RegistryJournal::open`]). A torn tail — short header, short
//!   payload or CRC mismatch — is detected, counted and discarded
//!   whole; valid records before it are kept, bytes after it are never
//!   replayed partially (the same discipline as the cluster layer's
//!   stale-delta rejection).
//!
//! Two backends ship: [`MemoryBackend`] (tests and the
//! `persist-stress` kill-and-replay harness — [`MemoryBackend::fork`]
//! is the crash image) and [`FileBackend`] (a data directory holding
//! `registry.wal` and `registry.snap`, used by `qasomd --data-dir`).

pub mod codec;
mod journal;
pub mod wal;

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

pub use journal::{
    encode_state, PersistConfig, PersistStats, PersistentRegistry, RecoveryReport, RegistryJournal,
};
pub use wal::WalRecord;

/// Failure of a persistence operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The storage layer failed (filesystem error, rendered as text so
    /// the error stays `Clone`/`PartialEq` for tests).
    Io(String),
    /// Stored bytes do not decode to a consistent registry history:
    /// bad magic/version, a codec underrun inside a CRC-valid frame, a
    /// replay sequence gap or a replayed id mismatch. Torn *tails* are
    /// not errors — they are discarded and reported instead.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt(e) => write!(f, "persistent registry state corrupt: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    fn io(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

/// Storage abstraction the registry journal writes through.
///
/// A backend owns two byte streams: an append-only WAL and a
/// single-slot snapshot. Implementations must make `write_snapshot`
/// atomic (readers see the old snapshot or the new one, never a mix);
/// the journal orders operations so that a crash between
/// `write_snapshot` and `truncate_wal` is recoverable (stale WAL
/// records are skipped by sequence number on replay).
pub trait Persistence {
    /// Appends raw bytes (one or more complete frames) to the WAL.
    fn append_wal(&mut self, bytes: &[u8]) -> Result<(), PersistError>;

    /// Reads the entire WAL back, including any torn tail.
    fn wal_bytes(&self) -> Result<Vec<u8>, PersistError>;

    /// Empties the WAL (after a durable snapshot).
    fn truncate_wal(&mut self) -> Result<(), PersistError>;

    /// Atomically replaces the snapshot.
    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), PersistError>;

    /// Reads the current snapshot, `None` when none was ever written.
    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, PersistError>;
}

#[derive(Debug, Default)]
struct MemoryState {
    wal: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

/// In-memory [`Persistence`] backend for tests and the kill-and-replay
/// stress harness.
///
/// `Clone` shares the underlying storage (like two handles on the same
/// data directory); [`MemoryBackend::fork`] deep-copies it, which is
/// how the harness captures a crash image at an arbitrary churn point.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    state: Arc<Mutex<MemoryState>>,
}

impl MemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        MemoryBackend::default()
    }

    /// Deep-copies the stored bytes into an independent backend: the
    /// durable state an abrupt crash at this instant would leave behind.
    pub fn fork(&self) -> Self {
        let state = self.lock();
        MemoryBackend {
            state: Arc::new(Mutex::new(MemoryState {
                wal: state.wal.clone(),
                snapshot: state.snapshot.clone(),
            })),
        }
    }

    /// Replaces the raw WAL bytes — corruption injection for torn-tail
    /// tests (bit flips, truncation at arbitrary byte offsets).
    pub fn set_wal(&self, bytes: Vec<u8>) {
        self.lock().wal = bytes;
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> usize {
        self.lock().wal.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryState> {
        // A panic mid-append leaves whole frames (appends are single
        // extends), so a poisoned lock is still readable state.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Persistence for MemoryBackend {
    fn append_wal(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.lock().wal.extend_from_slice(bytes);
        Ok(())
    }

    fn wal_bytes(&self) -> Result<Vec<u8>, PersistError> {
        Ok(self.lock().wal.clone())
    }

    fn truncate_wal(&mut self) -> Result<(), PersistError> {
        self.lock().wal.clear();
        Ok(())
    }

    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), PersistError> {
        self.lock().snapshot = Some(blob.to_vec());
        Ok(())
    }

    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, PersistError> {
        Ok(self.lock().snapshot.clone())
    }
}

/// File-system [`Persistence`] backend: a data directory holding
/// `registry.wal` (append-only) and `registry.snap` (replaced via
/// write-to-temporary + rename, so a crash mid-checkpoint leaves the
/// previous snapshot intact).
///
/// WAL appends are flushed but not fsynced per record (group commit is
/// the checkpoint: `write_snapshot` syncs). A power loss can therefore
/// tear the WAL tail — exactly the case recovery discards cleanly.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    wal: fs::File,
}

impl FileBackend {
    /// Opens (creating if needed) the data directory `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] when the directory or WAL file
    /// cannot be created or opened.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(PersistError::io)?;
        let wal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("registry.wal"))
            .map_err(PersistError::io)?;
        Ok(FileBackend { dir, wal })
    }

    /// The data directory this backend stores into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snap_path(&self) -> PathBuf {
        self.dir.join("registry.snap")
    }
}

impl Persistence for FileBackend {
    fn append_wal(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.wal.write_all(bytes).map_err(PersistError::io)?;
        self.wal.flush().map_err(PersistError::io)
    }

    fn wal_bytes(&self) -> Result<Vec<u8>, PersistError> {
        fs::read(self.dir.join("registry.wal")).map_err(PersistError::io)
    }

    fn truncate_wal(&mut self) -> Result<(), PersistError> {
        // The handle is in append mode, so later writes land back at
        // offset zero after the truncation.
        self.wal.set_len(0).map_err(PersistError::io)?;
        self.wal.sync_all().map_err(PersistError::io)
    }

    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), PersistError> {
        let tmp = self.dir.join("registry.snap.tmp");
        let mut file = fs::File::create(&tmp).map_err(PersistError::io)?;
        file.write_all(blob).map_err(PersistError::io)?;
        file.sync_all().map_err(PersistError::io)?;
        drop(file);
        fs::rename(&tmp, self.snap_path()).map_err(PersistError::io)
    }

    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, PersistError> {
        match fs::read(self.snap_path()) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PersistError::io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_clone_shares_fork_copies() {
        let mut a = MemoryBackend::new();
        a.append_wal(b"abc").unwrap();
        let mut shared = a.clone();
        shared.append_wal(b"def").unwrap();
        assert_eq!(a.wal_bytes().unwrap(), b"abcdef");

        let crash = a.fork();
        a.truncate_wal().unwrap();
        assert_eq!(crash.wal_bytes().unwrap(), b"abcdef");
        assert!(a.wal_bytes().unwrap().is_empty());
    }

    #[test]
    fn file_backend_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("qasom-persist-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.snapshot_bytes().unwrap(), None);
        b.append_wal(b"one").unwrap();
        b.append_wal(b"two").unwrap();
        assert_eq!(b.wal_bytes().unwrap(), b"onetwo");
        b.write_snapshot(b"snap").unwrap();
        assert_eq!(b.snapshot_bytes().unwrap().as_deref(), Some(&b"snap"[..]));
        b.truncate_wal().unwrap();
        assert!(b.wal_bytes().unwrap().is_empty());
        b.append_wal(b"three").unwrap();
        // Reopen: appends continue where the file left off.
        drop(b);
        let mut b = FileBackend::open(&dir).unwrap();
        b.append_wal(b"!").unwrap();
        assert_eq!(b.wal_bytes().unwrap(), b"three!");
        let _ = fs::remove_dir_all(&dir);
    }
}
