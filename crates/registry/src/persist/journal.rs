//! The registry journal: WAL appends, snapshot checkpoints and boot
//! replay.
//!
//! # Recovery state machine
//!
//! ```text
//!          ┌───────────────┐ no snapshot ┌────────────────┐
//! boot ──▶ │ load snapshot │ ───────────▶│ empty registry │
//!          └──────┬────────┘             └───────┬────────┘
//!                 │ restore slots @cursor        │
//!                 ▼                              ▼
//!          ┌──────────────────────────────────────────┐
//!          │ split WAL frames; torn tail? discard it, │
//!          │ rewrite WAL to the valid prefix          │
//!          └──────┬───────────────────────────────────┘
//!                 ▼
//!          ┌──────────────────────────────────────────┐
//!          │ replay records: seq < cursor → skip      │
//!          │ (stale, crash between snapshot & WAL     │
//!          │ truncate); seq = cursor → apply; gap or  │
//!          │ id mismatch → Corrupt                    │
//!          └──────┬───────────────────────────────────┘
//!                 ▼
//!          rebuilt index verified lazily via
//!          `ServiceRegistry::index_matches_rebuild`
//! ```

use std::sync::Arc;

use qasom_ontology::Ontology;

use crate::registry::{ServiceId, ServiceRegistry};
use crate::service::ServiceDescription;

use super::wal::{self, WalRecord};
use super::{PersistError, Persistence};

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// Checkpoint (snapshot + WAL truncate + event-log compaction)
    /// automatically after this many journaled events; `0` disables
    /// automatic checkpoints (callers checkpoint explicitly).
    pub checkpoint_every: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            checkpoint_every: 1024,
        }
    }
}

/// Counters the journal maintains; surfaced as the `persistence.*`
/// observability family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// WAL records appended.
    pub appends: u64,
    /// WAL bytes written (frames included).
    pub wal_bytes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Events replayed from the WAL tail on boot.
    pub replayed_events: u64,
    /// Torn tails detected and discarded on boot.
    pub torn_tails: u64,
    /// Snapshots loaded on boot.
    pub snapshot_loads: u64,
}

/// What boot replay found and did; returned by
/// [`RegistryJournal::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Event cursor of the loaded snapshot (0 when none).
    pub snapshot_cursor: u64,
    /// WAL records applied on top of the snapshot.
    pub wal_events_applied: u64,
    /// Stale WAL records skipped (crash between snapshot write and WAL
    /// truncation leaves records the snapshot already covers).
    pub wal_events_skipped: u64,
    /// Whether a torn tail was discarded.
    pub torn_tail: bool,
    /// Bytes the torn tail spanned (0 when none).
    pub torn_tail_bytes: u64,
}

impl RecoveryReport {
    /// Whether recovery found any durable state at all.
    pub fn recovered_anything(&self) -> bool {
        self.snapshot_loaded || self.wal_events_applied > 0
    }
}

/// Journals registry mutations through a [`Persistence`] backend.
///
/// The journal does not own the registry (the environment keeps it
/// behind an `Arc` for copy-on-write sharing); callers pair each
/// registry mutation with the matching `record_*` call, and the
/// sequence numbers self-check: events must be journaled in registry
/// event order, with no mutation left unjournaled.
pub struct RegistryJournal {
    backend: Box<dyn Persistence + Send + Sync>,
    config: PersistConfig,
    stats: PersistStats,
    /// Sequence number the next journaled event must carry — equals the
    /// paired registry's event cursor, and is the natural
    /// `ReplicaCursor` position of the WAL.
    next_seq: u64,
    since_checkpoint: usize,
}

impl std::fmt::Debug for RegistryJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryJournal")
            .field("next_seq", &self.next_seq)
            .field("since_checkpoint", &self.since_checkpoint)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl RegistryJournal {
    /// Recovers a registry from `backend` (snapshot + WAL tail) and
    /// returns it with the journal that continues writing to the same
    /// backend.
    ///
    /// The rebuilt registry is bound to `ontology` (pass the
    /// environment's own `Arc` — ontology stamps are per-instance, so a
    /// structurally equal rebuild would not match the capability
    /// index).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] from the backend;
    /// [`PersistError::Corrupt`] when a *CRC-valid* record fails to
    /// decode, replays onto an unexpected id, or leaves a sequence gap.
    /// A torn tail is not an error: it is discarded, counted in the
    /// [`RecoveryReport`] and trimmed from the stored WAL.
    pub fn open(
        backend: impl Persistence + Send + Sync + 'static,
        config: PersistConfig,
        ontology: Option<Arc<Ontology>>,
    ) -> Result<(ServiceRegistry, RegistryJournal, RecoveryReport), PersistError> {
        let mut backend: Box<dyn Persistence + Send + Sync> = Box::new(backend);
        let mut stats = PersistStats::default();
        let mut report = RecoveryReport::default();

        let mut registry = match backend.snapshot_bytes()? {
            Some(blob) => {
                let snap = wal::decode_snapshot(&blob)?;
                stats.snapshot_loads = 1;
                report.snapshot_loaded = true;
                report.snapshot_cursor = snap.cursor;
                ServiceRegistry::restore(snap.slots, snap.cursor as usize, ontology)
            }
            None => match ontology {
                Some(onto) => ServiceRegistry::with_ontology(onto),
                None => ServiceRegistry::new(),
            },
        };

        let wal_bytes = backend.wal_bytes()?;
        let (frames, torn) = wal::split_frames(&wal_bytes);
        if let Some(tear) = torn {
            stats.torn_tails = 1;
            report.torn_tail = true;
            report.torn_tail_bytes = (wal_bytes.len() - tear.offset) as u64;
            // Trim the stored WAL to the valid prefix so later appends
            // continue on a clean frame boundary.
            backend.truncate_wal()?;
            backend.append_wal(&wal_bytes[..tear.offset])?;
        }

        let mut expected = registry.event_cursor() as u64;
        let mut applied_any = false;
        for payload in frames {
            let record = WalRecord::decode(payload)?;
            let seq = record.seq();
            if seq < expected {
                if applied_any {
                    return Err(PersistError::Corrupt(format!(
                        "WAL sequence went backwards: {seq} after {expected}"
                    )));
                }
                // Stale: the snapshot already covers this record (the
                // crash hit between snapshot write and WAL truncation).
                report.wal_events_skipped += 1;
                continue;
            }
            if seq > expected {
                return Err(PersistError::Corrupt(format!(
                    "WAL sequence gap: expected {expected}, found {seq}"
                )));
            }
            match record {
                WalRecord::Register {
                    id, description, ..
                } => {
                    let got = registry.register(*description);
                    if got != id {
                        return Err(PersistError::Corrupt(format!(
                            "replayed registration allocated {got}, WAL recorded {id}"
                        )));
                    }
                }
                WalRecord::Deregister { id, .. } => {
                    if registry.deregister(id).is_none() {
                        return Err(PersistError::Corrupt(format!(
                            "replayed departure of {id}, which is not live"
                        )));
                    }
                }
            }
            applied_any = true;
            expected += 1;
            report.wal_events_applied += 1;
        }
        stats.replayed_events = report.wal_events_applied;

        let journal = RegistryJournal {
            backend,
            config,
            stats,
            next_seq: expected,
            since_checkpoint: report.wal_events_applied as usize,
        };
        Ok((registry, journal, report))
    }

    /// Journals a registration. `id` is the id the registry allocated;
    /// the paired registry's cursor must now be one past the journal's.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the backend append fails; the journal
    /// and registry have then diverged and the caller should treat the
    /// store as lost (stop journaling or crash).
    pub fn record_registered(
        &mut self,
        id: ServiceId,
        description: &ServiceDescription,
    ) -> Result<(), PersistError> {
        let record = WalRecord::Register {
            seq: self.next_seq,
            id,
            description: Box::new(description.clone()),
        };
        self.append(&record)
    }

    /// Journals a departure.
    ///
    /// # Errors
    ///
    /// As for [`RegistryJournal::record_registered`].
    pub fn record_deregistered(&mut self, id: ServiceId) -> Result<(), PersistError> {
        let record = WalRecord::Deregister {
            seq: self.next_seq,
            id,
        };
        self.append(&record)
    }

    fn append(&mut self, record: &WalRecord) -> Result<(), PersistError> {
        let frame = wal::encode_frame(&record.encode());
        self.backend.append_wal(&frame)?;
        self.stats.appends += 1;
        self.stats.wal_bytes += frame.len() as u64;
        self.next_seq += 1;
        self.since_checkpoint += 1;
        Ok(())
    }

    /// Whether enough events accumulated for an automatic checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.config.checkpoint_every > 0 && self.since_checkpoint >= self.config.checkpoint_every
    }

    /// Takes a checkpoint: snapshots the registry at its current event
    /// head, truncates the WAL, and compacts the in-memory event log to
    /// the same boundary (so the retained log after recovery matches a
    /// never-crashed registry that compacted here).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] from the backend; the previous snapshot
    /// stays in place when writing the new one fails.
    pub fn checkpoint(&mut self, registry: &mut ServiceRegistry) -> Result<(), PersistError> {
        let head = registry.event_cursor();
        debug_assert_eq!(head as u64, self.next_seq, "unjournaled registry mutation");
        let blob = wal::encode_snapshot(head as u64, registry.slots());
        self.backend.write_snapshot(&blob)?;
        self.backend.truncate_wal()?;
        registry.compact_events(head);
        self.stats.checkpoints += 1;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// [`checkpoint`](RegistryJournal::checkpoint)s when
    /// [`should_checkpoint`](RegistryJournal::should_checkpoint);
    /// returns whether one was taken.
    ///
    /// # Errors
    ///
    /// As for [`RegistryJournal::checkpoint`].
    pub fn maybe_checkpoint(
        &mut self,
        registry: &mut ServiceRegistry,
    ) -> Result<bool, PersistError> {
        if self.should_checkpoint() {
            self.checkpoint(registry)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// The sequence number the next journaled event will carry — the
    /// WAL's natural `ReplicaCursor` position.
    pub fn wal_cursor(&self) -> u64 {
        self.next_seq
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }
}

/// Canonical byte encoding of a registry's durable state (cursor + full
/// slot vector) — the oracle the kill-and-replay harness compares with:
/// recovered and never-crashed registries must encode identically.
pub fn encode_state(registry: &ServiceRegistry) -> Vec<u8> {
    wal::encode_snapshot(registry.event_cursor() as u64, registry.slots())
}

/// A registry paired with its journal: every mutation is journaled and
/// automatic checkpoints fire per [`PersistConfig`]. Used by tests, the
/// `persist-stress` harness and anywhere the copy-on-write `Arc`
/// sharing of the environment is not needed.
#[derive(Debug)]
pub struct PersistentRegistry {
    registry: ServiceRegistry,
    journal: RegistryJournal,
}

impl PersistentRegistry {
    /// Recovers (or freshly creates) a persistent registry from
    /// `backend`.
    ///
    /// # Errors
    ///
    /// As for [`RegistryJournal::open`].
    pub fn open(
        backend: impl Persistence + Send + Sync + 'static,
        config: PersistConfig,
        ontology: Option<Arc<Ontology>>,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (registry, journal, report) = RegistryJournal::open(backend, config, ontology)?;
        Ok((PersistentRegistry { registry, journal }, report))
    }

    /// Registers a service, journaling the event.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when journaling or checkpointing fails.
    pub fn register(&mut self, description: ServiceDescription) -> Result<ServiceId, PersistError> {
        let id = self.registry.register(description);
        if let Some(desc) = self.registry.get(id) {
            self.journal.record_registered(id, desc)?;
        }
        self.journal.maybe_checkpoint(&mut self.registry)?;
        Ok(id)
    }

    /// Deregisters a service, journaling the event when it was live.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when journaling or checkpointing fails.
    pub fn deregister(
        &mut self,
        id: ServiceId,
    ) -> Result<Option<ServiceDescription>, PersistError> {
        let removed = self.registry.deregister(id);
        if removed.is_some() {
            self.journal.record_deregistered(id)?;
            self.journal.maybe_checkpoint(&mut self.registry)?;
        }
        Ok(removed)
    }

    /// Takes an explicit checkpoint.
    ///
    /// # Errors
    ///
    /// As for [`RegistryJournal::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        self.journal.checkpoint(&mut self.registry)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// The journal (stats, WAL cursor).
    pub fn journal(&self) -> &RegistryJournal {
        &self.journal
    }

    /// Splits into the registry and its journal (environment adoption).
    pub fn into_parts(self) -> (ServiceRegistry, RegistryJournal) {
        (self.registry, self.journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::MemoryBackend;

    fn desc(i: usize) -> ServiceDescription {
        ServiceDescription::new(format!("s{i}"), "d#F").with_provider("p")
    }

    fn open_mem(backend: &MemoryBackend, every: usize) -> (PersistentRegistry, RecoveryReport) {
        PersistentRegistry::open(
            backend.clone(),
            PersistConfig {
                checkpoint_every: every,
            },
            None,
        )
        .unwrap()
    }

    #[test]
    fn fresh_open_is_empty() {
        let backend = MemoryBackend::new();
        let (pr, report) = open_mem(&backend, 0);
        assert!(pr.registry().is_empty());
        assert_eq!(report, RecoveryReport::default());
        assert!(!report.recovered_anything());
    }

    #[test]
    fn wal_only_recovery_rebuilds_ids_and_cursor() {
        let backend = MemoryBackend::new();
        let (mut pr, _) = open_mem(&backend, 0);
        let a = pr.register(desc(0)).unwrap();
        let b = pr.register(desc(1)).unwrap();
        pr.deregister(a).unwrap();
        let oracle = encode_state(pr.registry());

        let (recovered, report) = open_mem(&backend, 0);
        assert_eq!(report.wal_events_applied, 3);
        assert!(!report.snapshot_loaded);
        assert_eq!(encode_state(recovered.registry()), oracle);
        assert!(recovered.registry().get(a).is_none());
        assert!(recovered.registry().get(b).is_some());
        // A post-recovery registration continues the id sequence.
        let (mut recovered, _) = open_mem(&backend, 0);
        let c = recovered.register(desc(2)).unwrap();
        assert_eq!(c.index(), 2);
    }

    #[test]
    fn checkpoint_truncates_wal_and_compacts_log() {
        let backend = MemoryBackend::new();
        let (mut pr, _) = open_mem(&backend, 2);
        pr.register(desc(0)).unwrap();
        assert!(backend.wal_len() > 0);
        pr.register(desc(1)).unwrap(); // auto checkpoint at 2 events
        assert_eq!(backend.wal_len(), 0);
        assert_eq!(pr.journal().stats().checkpoints, 1);
        assert_eq!(pr.registry().oldest_retained_event(), 2);

        pr.register(desc(2)).unwrap();
        let oracle = encode_state(pr.registry());
        let (recovered, report) = open_mem(&backend, 2);
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_cursor, 2);
        assert_eq!(report.wal_events_applied, 1);
        assert_eq!(encode_state(recovered.registry()), oracle);
        assert!(recovered.registry().index_eq(pr.registry()));
        // Retained logs agree too: both start at the checkpoint.
        assert_eq!(
            recovered.registry().oldest_retained_event(),
            pr.registry().oldest_retained_event()
        );
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_stale_records() {
        let backend = MemoryBackend::new();
        let (mut pr, _) = open_mem(&backend, 0);
        pr.register(desc(0)).unwrap();
        pr.register(desc(1)).unwrap();
        // Simulate the torn checkpoint: snapshot written, WAL not yet
        // truncated.
        let blob = wal::encode_snapshot(pr.registry().event_cursor() as u64, pr.registry().slots());
        let mut handle = backend.clone();
        handle.write_snapshot(&blob).unwrap();
        let oracle = encode_state(pr.registry());

        let (recovered, report) = open_mem(&backend, 0);
        assert!(report.snapshot_loaded);
        assert_eq!(report.wal_events_skipped, 2);
        assert_eq!(report.wal_events_applied, 0);
        assert_eq!(encode_state(recovered.registry()), oracle);
    }

    #[test]
    fn torn_tail_is_discarded_counted_and_trimmed() {
        let backend = MemoryBackend::new();
        let (mut pr, _) = open_mem(&backend, 0);
        pr.register(desc(0)).unwrap();
        let keep = backend.wal_len();
        pr.register(desc(1)).unwrap();
        let mut bytes = backend.clone().wal_bytes().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        backend.set_wal(bytes);

        let (recovered, report) = open_mem(&backend, 0);
        assert!(report.torn_tail);
        assert!(report.torn_tail_bytes > 0);
        assert_eq!(report.wal_events_applied, 1);
        assert_eq!(recovered.journal().stats().torn_tails, 1);
        assert_eq!(recovered.registry().len(), 1);
        // The stored WAL was trimmed to the valid prefix.
        assert_eq!(backend.wal_len(), keep);
        // Reopening again is clean: no torn tail the second time.
        let (_, report2) = open_mem(&backend, 0);
        assert!(!report2.torn_tail);
        assert_eq!(report2.wal_events_applied, 1);
    }

    #[test]
    fn sequence_gap_is_corrupt_not_partial() {
        let backend = MemoryBackend::new();
        let mut handle = backend.clone();
        let record = WalRecord::Register {
            seq: 5,
            id: ServiceId::from_raw(0),
            description: Box::new(desc(0)),
        };
        handle
            .append_wal(&wal::encode_frame(&record.encode()))
            .unwrap();
        let err = PersistentRegistry::open(backend, PersistConfig::default(), None)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn wal_cursor_tracks_event_cursor() {
        let backend = MemoryBackend::new();
        let (mut pr, _) = open_mem(&backend, 0);
        pr.register(desc(0)).unwrap();
        pr.register(desc(1)).unwrap();
        assert_eq!(
            pr.journal().wal_cursor(),
            pr.registry().event_cursor() as u64
        );
    }
}
