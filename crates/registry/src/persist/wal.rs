//! WAL record framing and snapshot blob format.
//!
//! # Record framing
//!
//! ```text
//! ┌────────────┬────────────┬─────────────────┐
//! │ len  u32LE │ crc32 u32LE│ payload (len B) │
//! └────────────┴────────────┴─────────────────┘
//! ```
//!
//! `crc32` covers the payload only. A tail that ends in a short header,
//! a short payload (`len` exceeds the remaining bytes) or a CRC
//! mismatch is *torn*: [`split_frames`] stops there and reports the
//! tear, and recovery discards everything from the tear onward — no
//! partial replay.
//!
//! # Snapshot blob
//!
//! `QSNP` magic, a version byte, then one frame whose payload is the
//! event cursor followed by the **full slot vector** — `None`
//! tombstones included — so replayed registrations after recovery
//! allocate exactly the ids they did before the crash.

use crate::registry::ServiceId;
use crate::service::ServiceDescription;

use super::codec::{self, ByteReader};
use super::PersistError;

/// Bytes of a frame header: length + CRC.
pub const FRAME_HEADER: usize = 8;

/// Magic prefix of a snapshot blob.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"QSNP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Wraps a payload in a `[len][crc32][payload]` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    codec::put_u32(&mut out, payload.len() as u32);
    codec::put_u32(&mut out, codec::crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Why a WAL tail failed to parse as a complete frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`FRAME_HEADER`] bytes remained.
    ShortHeader,
    /// The declared length exceeds the remaining bytes.
    ShortPayload,
    /// The payload checksum does not match its header.
    BadCrc,
}

/// A detected torn tail: everything from `offset` on is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first unusable byte (= length of the valid
    /// prefix).
    pub offset: usize,
    /// What made the tail unusable.
    pub reason: TornReason,
}

/// Splits a WAL byte stream into complete, checksum-valid frame
/// payloads plus an optional torn tail.
///
/// Never fails: corruption anywhere truncates the result at the last
/// frame boundary before it.
pub fn split_frames(bytes: &[u8]) -> (Vec<&[u8]>, Option<TornTail>) {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER {
            return (
                frames,
                Some(TornTail {
                    offset: pos,
                    reason: TornReason::ShortHeader,
                }),
            );
        }
        let mut len_arr = [0u8; 4];
        len_arr.copy_from_slice(&bytes[pos..pos + 4]);
        let len = u32::from_le_bytes(len_arr) as usize;
        let mut crc_arr = [0u8; 4];
        crc_arr.copy_from_slice(&bytes[pos + 4..pos + 8]);
        let crc = u32::from_le_bytes(crc_arr);
        let body_start = pos + FRAME_HEADER;
        if bytes.len() - body_start < len {
            return (
                frames,
                Some(TornTail {
                    offset: pos,
                    reason: TornReason::ShortPayload,
                }),
            );
        }
        let payload = &bytes[body_start..body_start + len];
        if codec::crc32(payload) != crc {
            return (
                frames,
                Some(TornTail {
                    offset: pos,
                    reason: TornReason::BadCrc,
                }),
            );
        }
        frames.push(payload);
        pos = body_start + len;
    }
    (frames, None)
}

const TAG_REGISTER: u8 = 1;
const TAG_DEREGISTER: u8 = 2;

/// One journaled registry mutation.
///
/// `seq` is the registry event cursor *before* the mutation — the
/// record's global sequence number. Replay applies records whose `seq`
/// equals the recovering registry's cursor and skips smaller ones
/// (left behind when a crash hit between snapshot write and WAL
/// truncation); a gap is corruption.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A provider published a service; the full description is
    /// journaled because registry events carry ids only. Boxed so the
    /// enum stays small next to `Deregister`.
    Register {
        /// Global event sequence number.
        seq: u64,
        /// Id the registration allocated (checked on replay).
        id: ServiceId,
        /// The advertised description.
        description: Box<ServiceDescription>,
    },
    /// A provider (or churn) removed a service.
    Deregister {
        /// Global event sequence number.
        seq: u64,
        /// Id that was removed.
        id: ServiceId,
    },
}

impl WalRecord {
    /// The record's global event sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Register { seq, .. } | WalRecord::Deregister { seq, .. } => *seq,
        }
    }

    /// Serialises the record payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Register {
                seq,
                id,
                description,
            } => {
                out.push(TAG_REGISTER);
                codec::put_u64(&mut out, *seq);
                codec::put_u32(&mut out, id.raw());
                codec::put_description(&mut out, description);
            }
            WalRecord::Deregister { seq, id } => {
                out.push(TAG_DEREGISTER);
                codec::put_u64(&mut out, *seq);
                codec::put_u32(&mut out, id.raw());
            }
        }
        out
    }

    /// Decodes a record payload written by [`WalRecord::encode`].
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on an unknown tag, underrun, or
    /// trailing bytes — a CRC-valid frame must decode exactly.
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(payload);
        let record = match r.get_u8()? {
            TAG_REGISTER => {
                let seq = r.get_u64()?;
                let id = ServiceId::from_raw(r.get_u32()?);
                let description = Box::new(codec::get_description(&mut r)?);
                WalRecord::Register {
                    seq,
                    id,
                    description,
                }
            }
            TAG_DEREGISTER => {
                let seq = r.get_u64()?;
                let id = ServiceId::from_raw(r.get_u32()?);
                WalRecord::Deregister { seq, id }
            }
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "unknown WAL record tag {tag}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after WAL record",
                r.remaining()
            )));
        }
        Ok(record)
    }
}

const SLOT_EMPTY: u8 = 0;
const SLOT_LIVE: u8 = 1;

/// Serialises a snapshot blob: magic, version, then one frame whose
/// payload is `cursor` plus the full slot vector (tombstones included).
pub fn encode_snapshot(cursor: u64, slots: &[Option<ServiceDescription>]) -> Vec<u8> {
    let mut payload = Vec::new();
    codec::put_u64(&mut payload, cursor);
    codec::put_u32(&mut payload, slots.len() as u32);
    for slot in slots {
        match slot {
            None => payload.push(SLOT_EMPTY),
            Some(desc) => {
                payload.push(SLOT_LIVE);
                codec::put_description(&mut payload, desc);
            }
        }
    }
    let mut out = Vec::with_capacity(5 + FRAME_HEADER + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&encode_frame(&payload));
    out
}

/// A decoded snapshot: the event cursor and the full slot vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedSnapshot {
    /// Event cursor the snapshot was taken at.
    pub cursor: u64,
    /// Slot vector, `None` for tombstoned ids.
    pub slots: Vec<Option<ServiceDescription>>,
}

/// Decodes a snapshot blob written by [`encode_snapshot`].
///
/// # Errors
///
/// [`PersistError::Corrupt`] on bad magic/version, a torn or
/// checksum-failing frame, underrun, or trailing bytes. Unlike the WAL
/// a snapshot has no salvageable prefix — it is valid whole or not at
/// all (the file backend's rename keeps the previous one on crash).
pub fn decode_snapshot(bytes: &[u8]) -> Result<DecodedSnapshot, PersistError> {
    if bytes.len() < 5 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("snapshot magic mismatch".into()));
    }
    if bytes[4] != SNAPSHOT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "unsupported snapshot version {}",
            bytes[4]
        )));
    }
    let (frames, torn) = split_frames(&bytes[5..]);
    if torn.is_some() || frames.len() != 1 {
        return Err(PersistError::Corrupt(
            "snapshot body is not exactly one valid frame".into(),
        ));
    }
    let mut r = ByteReader::new(frames[0]);
    let cursor = r.get_u64()?;
    let n_slots = r.get_u32()?;
    let mut slots = Vec::with_capacity(n_slots.min(65_536) as usize);
    for _ in 0..n_slots {
        match r.get_u8()? {
            SLOT_EMPTY => slots.push(None),
            SLOT_LIVE => slots.push(Some(codec::get_description(&mut r)?)),
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "bad snapshot slot tag {tag}"
                )))
            }
        }
    }
    if !r.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after snapshot slots",
            r.remaining()
        )));
    }
    Ok(DecodedSnapshot { cursor, slots })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(name: &str) -> ServiceDescription {
        ServiceDescription::new(name, "d#F").with_provider("p")
    }

    #[test]
    fn frames_round_trip() {
        let mut wal = Vec::new();
        wal.extend_from_slice(&encode_frame(b"alpha"));
        wal.extend_from_slice(&encode_frame(b""));
        wal.extend_from_slice(&encode_frame(b"beta"));
        let (frames, torn) = split_frames(&wal);
        assert_eq!(torn, None);
        assert_eq!(frames, vec![&b"alpha"[..], &b""[..], &b"beta"[..]]);
    }

    #[test]
    fn every_truncation_point_is_a_clean_tear() {
        let mut wal = encode_frame(b"first");
        let keep = wal.len();
        wal.extend_from_slice(&encode_frame(b"second record"));
        for cut in keep + 1..wal.len() {
            let (frames, torn) = split_frames(&wal[..cut]);
            assert_eq!(frames.len(), 1, "cut at {cut}");
            let tear = torn.unwrap();
            assert_eq!(tear.offset, keep, "cut at {cut}");
            assert!(
                matches!(
                    tear.reason,
                    TornReason::ShortHeader | TornReason::ShortPayload
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_bit_flip_in_last_record_is_detected() {
        let mut wal = encode_frame(b"first");
        let keep = wal.len();
        wal.extend_from_slice(&encode_frame(b"second"));
        for byte in keep..wal.len() {
            let mut bad = wal.clone();
            bad[byte] ^= 0x40;
            let (frames, torn) = split_frames(&bad);
            // A flip in the length field may also present as a short
            // payload; either way the first record survives and the
            // tail is discarded at its boundary.
            assert_eq!(frames.len(), 1, "flip at {byte}");
            assert_eq!(torn.unwrap().offset, keep, "flip at {byte}");
        }
    }

    #[test]
    fn wal_records_round_trip() {
        let reg = WalRecord::Register {
            seq: 41,
            id: ServiceId::from_raw(7),
            description: Box::new(desc("s7")),
        };
        let dereg = WalRecord::Deregister {
            seq: 42,
            id: ServiceId::from_raw(7),
        };
        for record in [reg, dereg] {
            let payload = record.encode();
            assert_eq!(WalRecord::decode(&payload).unwrap(), record);
        }
    }

    #[test]
    fn record_decode_rejects_trailing_bytes_and_bad_tags() {
        let mut payload = WalRecord::Deregister {
            seq: 1,
            id: ServiceId::from_raw(0),
        }
        .encode();
        payload.push(0xFF);
        assert!(matches!(
            WalRecord::decode(&payload),
            Err(PersistError::Corrupt(_))
        ));
        assert!(matches!(
            WalRecord::decode(&[9, 0, 0]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_round_trips_with_tombstones() {
        let slots = vec![Some(desc("a")), None, Some(desc("c"))];
        let blob = encode_snapshot(17, &slots);
        let back = decode_snapshot(&blob).unwrap();
        assert_eq!(back.cursor, 17);
        assert_eq!(back.slots, slots);
    }

    #[test]
    fn snapshot_rejects_corruption_whole() {
        let blob = encode_snapshot(3, &[Some(desc("a"))]);
        assert!(decode_snapshot(&[]).is_err());
        assert!(decode_snapshot(b"QSNPx").is_err());
        let mut wrong_version = blob.clone();
        wrong_version[4] = 9;
        assert!(decode_snapshot(&wrong_version).is_err());
        let mut flipped = blob.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(decode_snapshot(&flipped).is_err());
        assert!(decode_snapshot(&blob[..blob.len() - 1]).is_err());
    }
}
