//! Binary codec primitives for the persistence layer.
//!
//! Little-endian, length-prefixed, no external dependencies. Every
//! decode is bounds-checked and returns
//! [`PersistError::Corrupt`](super::PersistError::Corrupt) on underrun
//! or malformed content — the registry must never panic on stored
//! bytes.

use qasom_ontology::Iri;
use qasom_qos::{PropertyId, QosVector};

use crate::service::{Operation, ServiceDescription};

use super::PersistError;

/// CRC32 (IEEE, reflected polynomial `0xEDB88320`) lookup table,
/// computed at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `bytes` — the checksum used by WAL record framing
/// and snapshot blobs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an IRI in its canonical `ns#local` text form.
pub fn put_iri(out: &mut Vec<u8>, iri: &Iri) {
    put_str(out, &iri.to_string());
}

/// Appends a QoS vector as `count · (property index, value)` pairs in
/// ascending property order (the vector's own iteration order), so the
/// encoding is canonical.
pub fn put_qos(out: &mut Vec<u8>, qos: &QosVector) {
    put_u32(out, qos.len() as u32);
    for (property, value) in qos.iter() {
        put_u32(out, property.index() as u32);
        put_f64(out, value);
    }
}

/// Bounds-checked cursor over stored bytes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt(format!(
                "short read: {what} needs {n} bytes, {} remain at offset {}",
                self.remaining(),
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun (as for all `get_*`).
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let raw = self.take(4, "u32")?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(raw);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let raw = self.take(8, "u64")?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len, "string body")?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| PersistError::Corrupt(format!("stored string is not UTF-8: {e}")))
    }

    /// Reads a length-prefixed IRI in `ns#local` text form.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun or a malformed IRI.
    pub fn get_iri(&mut self) -> Result<Iri, PersistError> {
        let text = self.get_str()?;
        text.parse()
            .map_err(|e| PersistError::Corrupt(format!("stored IRI {text:?} malformed: {e}")))
    }

    /// Reads a QoS vector written by [`put_qos`].
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on underrun.
    pub fn get_qos(&mut self) -> Result<QosVector, PersistError> {
        let count = self.get_u32()?;
        let mut qos = QosVector::new();
        for _ in 0..count {
            let index = self.get_u32()? as usize;
            let value = self.get_f64()?;
            qos.set(PropertyId::from_index(index), value);
        }
        Ok(qos)
    }
}

fn put_operation(out: &mut Vec<u8>, op: &Operation) {
    put_str(out, op.name());
    put_iri(out, op.function());
    put_qos(out, op.qos());
}

fn get_operation(r: &mut ByteReader<'_>) -> Result<Operation, PersistError> {
    let name = r.get_str()?;
    let function = r.get_iri()?;
    let qos = r.get_qos()?;
    Ok(Operation::from_parts(name, function, qos))
}

/// Serialises a full service description (black-box profile plus any
/// white-box operations and host binding).
pub fn put_description(out: &mut Vec<u8>, desc: &ServiceDescription) {
    put_str(out, desc.name());
    put_str(out, desc.provider());
    put_iri(out, desc.function());
    put_u32(out, desc.inputs().len() as u32);
    for iri in desc.inputs() {
        put_iri(out, iri);
    }
    put_u32(out, desc.outputs().len() as u32);
    for iri in desc.outputs() {
        put_iri(out, iri);
    }
    put_qos(out, desc.qos());
    put_u32(out, desc.operations().len() as u32);
    for op in desc.operations() {
        put_operation(out, op);
    }
    match desc.host() {
        Some(node) => {
            out.push(1);
            put_u64(out, node);
        }
        None => out.push(0),
    }
}

/// Decodes a service description written by [`put_description`].
///
/// # Errors
///
/// [`PersistError::Corrupt`] on underrun, invalid UTF-8 or a malformed
/// stored IRI.
pub fn get_description(r: &mut ByteReader<'_>) -> Result<ServiceDescription, PersistError> {
    let name = r.get_str()?;
    let provider = r.get_str()?;
    let function = r.get_iri()?;
    let n_inputs = r.get_u32()?;
    let mut inputs = Vec::with_capacity(n_inputs.min(1024) as usize);
    for _ in 0..n_inputs {
        inputs.push(r.get_iri()?);
    }
    let n_outputs = r.get_u32()?;
    let mut outputs = Vec::with_capacity(n_outputs.min(1024) as usize);
    for _ in 0..n_outputs {
        outputs.push(r.get_iri()?);
    }
    let qos = r.get_qos()?;
    let n_ops = r.get_u32()?;
    let mut operations = Vec::with_capacity(n_ops.min(1024) as usize);
    for _ in 0..n_ops {
        operations.push(get_operation(r)?);
    }
    let host = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()?),
        tag => {
            return Err(PersistError::Corrupt(format!(
                "bad host tag {tag} in stored description"
            )))
        }
    };
    Ok(ServiceDescription::from_parts(
        name, provider, function, inputs, outputs, qos, operations, host,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qasom_qos::QosModel;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX - 3);
        put_f64(&mut out, -1.5);
        put_str(&mut out, "héllo");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn underrun_is_a_typed_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn description_round_trips_with_all_fields() {
        let model = QosModel::standard();
        let rt = model.property("ResponseTime").unwrap();
        let desc = ServiceDescription::new("books", "shop#BuyBook")
            .with_provider("fnac")
            .with_input("shop#BookTitle")
            .with_output("shop#Receipt")
            .with_qos(rt, 120.0)
            .with_operation(Operation::new("pay", "shop#Pay").with_qos(rt, 30.0))
            .with_host(3);
        let mut out = Vec::new();
        put_description(&mut out, &desc);
        let mut r = ByteReader::new(&out);
        let back = get_description(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, desc);
    }

    #[test]
    fn minimal_description_round_trips() {
        let desc = ServiceDescription::new("s", "d#F");
        let mut out = Vec::new();
        put_description(&mut out, &desc);
        let back = get_description(&mut ByteReader::new(&out)).unwrap();
        assert_eq!(back, desc);
    }
}
