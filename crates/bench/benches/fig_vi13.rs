//! Criterion counterpart of Fig. VI.13: abstract-BPEL parsing +
//! behavioural-graph construction time vs. task size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_bench::synthetic_bpel;
use qasom_task::{bpel, BehaviouralGraph};

fn bpel_to_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_vi13_bpel_to_graph");
    for n in [5usize, 20, 100] {
        let doc = synthetic_bpel(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let task = bpel::parse(&doc).expect("valid BPEL");
                BehaviouralGraph::from_task(&task)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bpel_to_graph);
criterion_main!(benches);
