//! Criterion counterpart of the Ch. V evaluation: behavioural-adaptation
//! (extended subgraph homeomorphism) cost vs. task size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_adaptation::BehaviouralAdapter;
use qasom_bench::adaptation_pair;
use qasom_ontology::OntologyBuilder;

fn resume_mapping(c: &mut Criterion) {
    let mut onto = OntologyBuilder::new("ad");
    for i in 0..64 {
        onto.concept(&format!("F{i}"));
    }
    let onto = onto.build().expect("valid ontology");
    let adapter = BehaviouralAdapter::new(&onto);

    let mut group = c.benchmark_group("fig_v_homeomorphism");
    group.sample_size(20);
    for n in [4usize, 12, 24] {
        let (current, alternative) = adaptation_pair(n);
        let executed: Vec<String> = (0..n / 2).map(|i| format!("c{i}")).collect();
        let refs: Vec<&str> = executed.iter().map(String::as_str).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                adapter
                    .resume_mapping(&current, &alternative, &refs)
                    .expect("mapping exists")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, resume_mapping);
criterion_main!(benches);
