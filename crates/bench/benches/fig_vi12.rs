//! Criterion counterpart of Fig. VI.12: wall-clock cost of running the
//! distributed-QASSA protocol simulation at several fleet sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_qos::QosModel;
use qasom_selection::distributed::{DistributedQassa, DistributedSetup};
use qasom_selection::workload::WorkloadSpec;

fn distributed_protocol(c: &mut Criterion) {
    let model = QosModel::standard();
    let w = WorkloadSpec::evaluation_default()
        .services_per_activity(50)
        .build(&model, 42);
    let driver = DistributedQassa::new(&model);
    let mut group = c.benchmark_group("fig_vi12_distributed");
    group.sample_size(10);
    for providers in [2usize, 10, 50] {
        let setup = DistributedSetup {
            providers,
            ..DistributedSetup::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(providers),
            &providers,
            |b, _| {
                b.iter(|| driver.run(&w, &setup, 42).expect("protocol completes"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, distributed_protocol);
criterion_main!(benches);
