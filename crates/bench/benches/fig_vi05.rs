//! Criterion counterpart of Fig. VI.5: QASSA selection time vs. services
//! per activity and vs. number of constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_qos::QosModel;
use qasom_selection::workload::WorkloadSpec;
use qasom_selection::Qassa;

fn selection_vs_services(c: &mut Criterion) {
    let model = QosModel::standard();
    let mut group = c.benchmark_group("fig_vi5a_services");
    group.sample_size(20);
    for n in [10usize, 100, 300] {
        let w = WorkloadSpec::evaluation_default()
            .services_per_activity(n)
            .build(&model, 42);
        let problem = w.problem();
        let qassa = Qassa::new(&model);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qassa.select(&problem).expect("well-formed"));
        });
    }
    group.finish();
}

fn selection_vs_constraints(c: &mut Criterion) {
    let model = QosModel::standard();
    let mut group = c.benchmark_group("fig_vi5b_constraints");
    group.sample_size(20);
    for k in [1usize, 4, 8] {
        let w = WorkloadSpec::evaluation_default()
            .property_count(k)
            .build(&model, 42);
        let problem = w.problem();
        let qassa = Qassa::new(&model);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| qassa.select(&problem).expect("well-formed"));
        });
    }
    group.finish();
}

criterion_group!(benches, selection_vs_services, selection_vs_constraints);
criterion_main!(benches);
