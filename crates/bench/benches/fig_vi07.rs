//! Criterion counterpart of Fig. VI.7: selection time under the three
//! aggregation approaches on choice- and loop-bearing tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_qos::QosModel;
use qasom_selection::workload::{TaskShape, WorkloadSpec};
use qasom_selection::{AggregationApproach, Qassa};

fn selection_per_approach(c: &mut Criterion) {
    let model = QosModel::standard();
    let mut group = c.benchmark_group("fig_vi7_aggregation");
    group.sample_size(20);
    for (approach, label) in [
        (AggregationApproach::Pessimistic, "pessimistic"),
        (AggregationApproach::Optimistic, "optimistic"),
        (AggregationApproach::MeanValue, "mean_value"),
    ] {
        let w = WorkloadSpec::evaluation_default()
            .shape(TaskShape::Full)
            .approach(approach)
            .services_per_activity(100)
            .build(&model, 42);
        let problem = w.problem();
        let qassa = Qassa::new(&model);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| qassa.select(&problem).expect("well-formed"));
        });
    }
    group.finish();
}

criterion_group!(benches, selection_per_approach);
criterion_main!(benches);
