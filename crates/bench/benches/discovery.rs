//! Discovery latency at registry scale: the indexed pipeline (capability
//! index + memoised match degrees) against the linear full-scan oracle
//! over thousands of advertisements. Both paths return identical
//! candidate vectors; only the work differs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::{Discovery, DiscoveryQuery, MatchCache, ServiceDescription, ServiceRegistry};
use qasom_task::Activity;

fn discovery_at_scale(c: &mut Criterion) {
    let mut b = OntologyBuilder::new("d");
    let root = b.concept("Capability");
    for i in 0..32 {
        let mid = b.subconcept(&format!("Cat{i}"), root);
        for j in 0..4 {
            b.subconcept(&format!("Cat{i}Leaf{j}"), mid);
        }
    }
    let onto = Arc::new(b.build().expect("valid"));
    let model = QosModel::standard();

    let mut group = c.benchmark_group("discovery_scale");
    group.sample_size(20);
    for n in [1_000usize, 5_000, 20_000] {
        let mut registry = ServiceRegistry::with_ontology(Arc::clone(&onto));
        for s in 0..n {
            registry.register(ServiceDescription::new(
                format!("svc{s}"),
                &format!("d#Cat{}Leaf{}", s % 32, s % 4),
            ));
        }
        let cache = MatchCache::new();
        let indexed = Discovery::with_cache(&onto, &model, &cache);
        let linear = Discovery::new(&onto, &model);
        // A category-level request plugs in 4 leaves × n/128 services.
        let activity = Activity::new("a", "d#Cat7");

        let expected = indexed.discover(&registry, &DiscoveryQuery::new(&activity));
        assert!(!expected.is_empty());
        assert_eq!(
            expected,
            linear.discover(&registry, &DiscoveryQuery::new(&activity).linear_scan(true)),
            "indexed and linear paths must agree before timing them"
        );

        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |bch, _| {
            bch.iter(|| {
                let found = indexed.discover(&registry, &DiscoveryQuery::new(&activity));
                assert!(!found.is_empty());
                found
            });
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |bch, _| {
            bch.iter(|| {
                let found =
                    linear.discover(&registry, &DiscoveryQuery::new(&activity).linear_scan(true));
                assert!(!found.is_empty());
                found
            });
        });
    }
    group.finish();
}

criterion_group!(benches, discovery_at_scale);
criterion_main!(benches);
