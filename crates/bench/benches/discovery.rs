//! Discovery latency at registry scale: semantic matching over thousands
//! of advertisements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qasom_ontology::OntologyBuilder;
use qasom_qos::QosModel;
use qasom_registry::{Discovery, ServiceDescription, ServiceRegistry};
use qasom_task::Activity;

fn discovery_at_scale(c: &mut Criterion) {
    let mut b = OntologyBuilder::new("d");
    let root = b.concept("Capability");
    for i in 0..32 {
        let mid = b.subconcept(&format!("Cat{i}"), root);
        for j in 0..4 {
            b.subconcept(&format!("Cat{i}Leaf{j}"), mid);
        }
    }
    let onto = b.build().expect("valid");
    let model = QosModel::standard();

    let mut group = c.benchmark_group("discovery_scale");
    group.sample_size(20);
    for n in [1_000usize, 5_000, 20_000] {
        let mut registry = ServiceRegistry::new();
        for s in 0..n {
            registry.register(ServiceDescription::new(
                format!("svc{s}"),
                &format!("d#Cat{}Leaf{}", s % 32, s % 4),
            ));
        }
        let discovery = Discovery::new(&onto, &model);
        // A category-level request plugs in 4 leaves × n/128 services.
        let activity = Activity::new("a", "d#Cat7");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let found = discovery.candidates(&registry, &activity);
                assert!(!found.is_empty());
                found
            });
        });
    }
    group.finish();
}

criterion_group!(benches, discovery_at_scale);
criterion_main!(benches);
